"""Exception hierarchy shared across the repro packages.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly."""


class NetworkError(ReproError):
    """A message could not be delivered (partition, drop, unknown host)."""


class RpcTimeout(NetworkError):
    """An RPC did not receive a response within its deadline."""


class StorageError(ReproError):
    """Schema violation or illegal access in the storage engine."""


class UnknownTableError(StorageError):
    """A table name was not found in a shard's catalog."""


class DuplicateKeyError(StorageError):
    """Insert attempted with a primary key that already exists."""


class MissingRowError(StorageError):
    """Read/update referenced a primary key that does not exist."""


class TransactionError(ReproError):
    """Violation of the stored-procedure transaction model."""


class CyclicDependencyError(TransactionError):
    """A transaction declared cyclic cross-shard value dependencies."""


class TransactionAborted(TransactionError):
    """Raised through to clients when a transaction aborts.

    ``reason`` distinguishes conditional (user-level) aborts from
    system-induced aborts (conflicts in deferred-update systems, failovers).
    """

    def __init__(self, txn_id: str, reason: str):
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class ProtocolError(ReproError):
    """A protocol implementation reached a state it never should."""


class ConfigError(ReproError):
    """An experiment or topology configuration is invalid."""
