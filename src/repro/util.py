"""Small shared utilities."""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["Stats"]


class Stats:
    """A named counter bag used by nodes and systems for telemetry.

    Historically this was the only metrics surface; it now doubles as a
    **compatibility shim** over the observability layer: once bound to a
    :class:`repro.obs.registry.MetricsRegistry` (via ``bind``), every
    increment is mirrored into a registry counter named
    ``<prefix><name>``.  Unbound, it behaves exactly as before — a plain
    dict with no extra work on the hot path beyond one ``is None`` check.
    """

    __slots__ = ("counters", "_registry", "_prefix")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self._registry = None
        self._prefix = ""

    def bind(self, registry, prefix: str = "") -> None:
        """Mirror all future (and already-recorded) counts into ``registry``."""
        self._registry = registry
        self._prefix = prefix
        for name, value in self.counters.items():
            if value:
                registry.counter(prefix + name).inc(value)

    def unbind(self) -> None:
        self._registry = None
        self._prefix = ""

    @property
    def bound(self) -> bool:
        return self._registry is not None

    def inc(self, name: str, by: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by
        if self._registry is not None:
            self._registry.counter(self._prefix + name).inc(by)

    def get(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    def merge(self, other: "Stats") -> None:
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value

    def __repr__(self) -> str:
        return f"Stats({self.counters})"
