"""Small shared utilities."""

from __future__ import annotations

from typing import Dict

__all__ = ["Stats"]


class Stats:
    """A named counter bag used by nodes and systems for telemetry."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}

    def inc(self, name: str, by: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by

    def get(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    def merge(self, other: "Stats") -> None:
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value

    def __repr__(self) -> str:
        return f"Stats({self.counters})"
