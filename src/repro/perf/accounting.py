"""Kernel-level hot-callback accounting (opt-in).

The :class:`repro.sim.kernel.Simulator` run loop calls
:meth:`KernelAccounting.record` once per executed event while an accounting
object is attached.  The counters are pure virtual-side facts — callsites,
queue provenance, clock advancement — so attaching the accountant cannot
perturb virtual-time results; it only slows the wall clock.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

__all__ = ["KernelAccounting"]


class KernelAccounting:
    """Per-event counters for one (or more) :meth:`Simulator.run` calls."""

    __slots__ = (
        "events_total",
        "ready_events",
        "heap_events",
        "same_instant_events",
        "heap_peak",
        "by_callsite",
    )

    def __init__(self) -> None:
        self.events_total = 0
        # Events drained from the same-instant FIFO deque vs popped off the
        # time-ordered heap.
        self.ready_events = 0
        self.heap_events = 0
        # Events that fired without advancing the virtual clock (every ready
        # event plus heap entries due at the current instant).
        self.same_instant_events = 0
        self.heap_peak = 0
        self.by_callsite: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def record(self, fn: Callable, from_ready: bool, advanced: bool) -> None:
        """Called by the kernel for every executed event (hot in profile
        mode): ``fn`` is the callback, ``from_ready`` its queue provenance,
        ``advanced`` whether executing it moved the virtual clock."""
        self.events_total += 1
        if from_ready:
            self.ready_events += 1
        else:
            self.heap_events += 1
        if not advanced:
            self.same_instant_events += 1
        key = getattr(fn, "__qualname__", None) or repr(fn)
        try:
            self.by_callsite[key] += 1
        except KeyError:
            self.by_callsite[key] = 1

    # ------------------------------------------------------------------
    @property
    def same_instant_ratio(self) -> float:
        """Fraction of events that fired without advancing the clock."""
        return self.same_instant_events / self.events_total if self.events_total else 0.0

    @property
    def heap_churn_ratio(self) -> float:
        """Fraction of events that went through the heap (lower is better:
        same-instant work should ride the O(1) ready deque)."""
        return self.heap_events / self.events_total if self.events_total else 0.0

    def top_callsites(self, n: int = 15) -> List[Tuple[str, int]]:
        """The ``n`` busiest callbacks, by (count desc, name asc)."""
        return sorted(self.by_callsite.items(), key=lambda kv: (-kv[1], kv[0]))[:n]

    def to_dict(self) -> Dict:
        return {
            "events_total": self.events_total,
            "ready_events": self.ready_events,
            "heap_events": self.heap_events,
            "same_instant_events": self.same_instant_events,
            "same_instant_ratio": round(self.same_instant_ratio, 4),
            "heap_churn_ratio": round(self.heap_churn_ratio, 4),
            "heap_peak": self.heap_peak,
            "by_callsite": dict(self.by_callsite),
        }
