"""Profiling and hot-path accounting for the simulation core.

Two layers, both opt-in and zero-cost when unused:

* :class:`KernelAccounting` — per-event counters the kernel updates while an
  accounting object is attached (``Simulator.attach_accounting``): events by
  callsite, same-instant vs clock-advancing events, ready-deque vs heap
  traffic, and the peak heap size.  The kernel never reads a wall clock;
  rates are computed by the profiler layer outside ``repro.sim``.
* :func:`profile_spec` / :class:`ProfileReport` — run any
  :class:`repro.fleet.TrialSpec` under :mod:`cProfile` with kernel
  accounting attached, and render a combined hot-callback report
  (``repro profile`` on the CLI).
"""

from repro.perf.accounting import KernelAccounting
from repro.perf.profiler import ProfileReport, profile_spec

__all__ = ["KernelAccounting", "ProfileReport", "profile_spec"]
