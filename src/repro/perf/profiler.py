"""``repro profile``: cProfile + kernel accounting over any TrialSpec.

The profiler reruns a spec in-process with

* :mod:`cProfile` capturing the Python-level cost of every function, and
* a :class:`repro.perf.KernelAccounting` attached to the simulator capturing
  kernel-level event counters (callbacks by callsite, same-instant and
  heap-churn ratios).

Wall-clock measurement lives here — never inside ``repro.sim`` — so the
derived rates (events/s, virtual-ms-per-wall-s) stay out of the
deterministic core.  Profiling does not perturb virtual-time results: the
accounting hooks only count, and the determinism guard in the test suite
pins that down.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["ProfileReport", "profile_spec"]


@dataclass
class ProfileReport:
    """Everything one profiling run produced, renderable as text or JSON."""

    label: str
    wall_clock_s: float
    virtual_ms: float
    events_total: int
    ready_events: int
    heap_events: int
    same_instant_ratio: float
    heap_churn_ratio: float
    heap_peak: int
    events_per_s: float
    virtual_ms_per_wall_s: float
    callsites: List[Tuple[str, int]] = field(default_factory=list)
    functions: List[Dict] = field(default_factory=list)
    row: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "label": self.label,
            "wall_clock_s": self.wall_clock_s,
            "virtual_ms": self.virtual_ms,
            "events_total": self.events_total,
            "ready_events": self.ready_events,
            "heap_events": self.heap_events,
            "same_instant_ratio": self.same_instant_ratio,
            "heap_churn_ratio": self.heap_churn_ratio,
            "heap_peak": self.heap_peak,
            "events_per_s": self.events_per_s,
            "virtual_ms_per_wall_s": self.virtual_ms_per_wall_s,
            "callsites": [list(pair) for pair in self.callsites],
            "functions": self.functions,
            "row": self.row,
        }

    def to_text(self) -> str:
        lines = [
            f"profile: {self.label}",
            f"  wall clock        {self.wall_clock_s:10.2f} s",
            f"  virtual time      {self.virtual_ms:10.1f} ms "
            f"({self.virtual_ms_per_wall_s:,.0f} virtual-ms/wall-s)",
            f"  kernel events     {self.events_total:10,d} "
            f"({self.events_per_s:,.0f}/s)",
            f"  ready-deque       {self.ready_events:10,d} "
            f"(heap {self.heap_events:,d}; churn ratio {self.heap_churn_ratio:.3f})",
            f"  same-instant      {self.same_instant_ratio:10.3f} of events",
            f"  heap peak         {self.heap_peak:10,d} entries",
            "",
            "hot callbacks (kernel events by callsite):",
        ]
        width = max((len(name) for name, _ in self.callsites), default=10)
        for name, count in self.callsites:
            lines.append(f"  {name:<{width}}  {count:>10,d}")
        lines.append("")
        lines.append("hot functions (cProfile):")
        lines.append(
            f"  {'ncalls':>10}  {'tottime':>8}  {'cumtime':>8}  function")
        for fn in self.functions:
            lines.append(
                f"  {fn['ncalls']:>10,d}  {fn['tottime']:>8.3f}  "
                f"{fn['cumtime']:>8.3f}  {fn['where']}")
        if self.row:
            lines.append("")
            tps = self.row.get("throughput_tps")
            if tps is not None:
                lines.append(f"trial row: {tps} tps, "
                             f"{self.row.get('msgs_total', 0):,} msgs")
        return "\n".join(lines) + "\n"


def _top_functions(profile: cProfile.Profile, sort: str, top: int) -> List[Dict]:
    stats = pstats.Stats(profile)
    key = {"tottime": 2, "cumtime": 3}[sort]
    rows = sorted(
        stats.stats.items(), key=lambda item: item[1][key], reverse=True)  # type: ignore[attr-defined]
    out = []
    for (filename, lineno, func), (_cc, ncalls, tottime, cumtime, _callers) in rows[:top]:
        if filename == "~":
            where = func  # builtins
        else:
            short = "/".join(filename.split("/")[-2:])
            where = f"{short}:{lineno}({func})"
        out.append({
            "ncalls": ncalls,
            "tottime": round(tottime, 4),
            "cumtime": round(cumtime, 4),
            "where": where,
        })
    return out


def profile_spec(
    spec,
    sort: str = "tottime",
    top: int = 20,
    callsites: int = 15,
    hooks: Optional[object] = None,
) -> ProfileReport:
    """Run ``spec`` under cProfile with kernel accounting attached."""
    from repro.bench.harness import run_trial
    from repro.perf.accounting import KernelAccounting

    if sort not in ("tottime", "cumtime"):
        raise ValueError(f"sort must be 'tottime' or 'cumtime', got {sort!r}")
    trial = spec.to_trial()
    acct = KernelAccounting()
    state: Dict = {}

    def install(system, recorder):
        system.sim.attach_accounting(acct)
        state["system"] = system
        if hooks is not None:
            hooks(system, recorder)  # type: ignore[operator]

    profile = cProfile.Profile()
    start = time.perf_counter()
    profile.enable()
    result = run_trial(trial, hooks=install)
    profile.disable()
    wall = time.perf_counter() - start
    system = state["system"]
    system.sim.detach_accounting()
    virtual_ms = system.sim.now
    return ProfileReport(
        label=spec.display_label(),
        wall_clock_s=round(wall, 3),
        virtual_ms=virtual_ms,
        events_total=acct.events_total,
        ready_events=acct.ready_events,
        heap_events=acct.heap_events,
        same_instant_ratio=round(acct.same_instant_ratio, 4),
        heap_churn_ratio=round(acct.heap_churn_ratio, 4),
        heap_peak=acct.heap_peak,
        events_per_s=round(acct.events_total / wall, 1) if wall else 0.0,
        virtual_ms_per_wall_s=round(virtual_ms / wall, 1) if wall else 0.0,
        callsites=acct.top_callsites(callsites),
        functions=_top_functions(profile, sort, top),
        row=result.summary.as_row(),
    )
