"""Heterogeneous-edge presets: cloud RTT matrices and CPU service tiers.

The paper's evaluation (and every trial so far) uses one uniform
cross-region RTT and one uniform per-message service time.  Real edge
deployments are nothing like that: inter-site latencies span 60-260 ms on
public-cloud backbones and edge boxes range from server-class to
Raspberry-Pi-class CPUs.  This module names a few deterministic presets:

* :data:`RTT_PROFILES` — symmetric inter-site RTT matrices (milliseconds)
  sampled from published cloud inter-region measurements.  Regions are
  mapped onto profile sites round-robin by index, so any region count
  works with any profile.
* :data:`SERVICE_PROFILES` — per-region CPU service-time multipliers
  (1.0 = the configured baseline), assigned round-robin the same way.

Both are *profiles of the deterministic config*, not random draws: the
same trial spec always yields the same matrix, so fingerprint-addressed
caching and byte-identical replay hold.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Union

from repro.errors import ConfigError

__all__ = [
    "RTT_PROFILES",
    "SERVICE_PROFILES",
    "apply_rtt_profile",
    "apply_service_multipliers",
    "resolve_service_multipliers",
]

# Symmetric inter-site RTT matrices in milliseconds.  "aws-like" uses five
# sites shaped on us-east-1 / us-west-2 / eu-west-1 / ap-northeast-1 /
# ap-southeast-2 public measurements; "metro-edge" models dense same-metro
# edge sites (fast) with one far cloud site (slow).
RTT_PROFILES: Dict[str, List[List[float]]] = {
    "aws-like": [
        [0.0, 70.0, 80.0, 160.0, 200.0],
        [70.0, 0.0, 130.0, 100.0, 140.0],
        [80.0, 130.0, 0.0, 220.0, 260.0],
        [160.0, 100.0, 220.0, 0.0, 110.0],
        [200.0, 140.0, 260.0, 110.0, 0.0],
    ],
    "metro-edge": [
        [0.0, 18.0, 24.0, 120.0],
        [18.0, 0.0, 16.0, 110.0],
        [24.0, 16.0, 0.0, 130.0],
        [120.0, 110.0, 130.0, 0.0],
    ],
}

# Per-region CPU service-time multipliers (1.0 = configured baseline).
# "edge-tiers" mixes server-class (1.0x) with constrained edge boxes
# (up to 2.5x slower per message).
SERVICE_PROFILES: Dict[str, List[float]] = {
    "edge-tiers": [1.0, 1.75, 2.5, 1.25, 2.0],
    "uniform-slow": [1.5],
}


def apply_rtt_profile(network, regions: Sequence[str], name: str) -> Dict[str, float]:
    """Install ``name``'s matrix as pairwise cross-region RTT overrides.

    Regions map onto profile sites by index modulo the matrix size.
    Returns the applied ``{"r1|r2": rtt}`` mapping (sorted keys) for
    reporting.  Intra-region RTT is untouched.
    """
    matrix = RTT_PROFILES.get(name)
    if matrix is None:
        raise ConfigError(f"unknown RTT profile {name!r}; known: {sorted(RTT_PROFILES)}")
    sites = len(matrix)
    applied: Dict[str, float] = {}
    ordered = sorted(regions)
    for i, r1 in enumerate(ordered):
        for j in range(i + 1, len(ordered)):
            r2 = ordered[j]
            rtt = matrix[i % sites][j % sites]
            if rtt <= 0.0:
                # Two regions folded onto one site: keep them close but
                # distinct (half the smallest off-diagonal entry).
                rtt = min(v for row in matrix for v in row if v > 0.0) / 2.0
            network.set_cross_region_rtt(rtt, r1, r2)
            applied[f"{r1}|{r2}"] = rtt
    return applied


def resolve_service_multipliers(
    spec: Union[str, Mapping[str, float]], regions: Sequence[str],
) -> Dict[str, float]:
    """Normalize a profile name or explicit mapping to ``{region: factor}``."""
    if isinstance(spec, str):
        tiers = SERVICE_PROFILES.get(spec)
        if tiers is None:
            raise ConfigError(
                f"unknown service profile {spec!r}; known: {sorted(SERVICE_PROFILES)}")
        return {region: tiers[i % len(tiers)]
                for i, region in enumerate(sorted(regions))}
    mapping = {str(region): float(factor) for region, factor in spec.items()}
    for region, factor in mapping.items():
        if factor <= 0:
            raise ConfigError(f"service multiplier for {region} must be > 0, got {factor}")
    return mapping


def apply_service_multipliers(system, multipliers: Mapping[str, float]) -> int:
    """Scale every node/manager endpoint service time by its region's factor.

    Returns how many endpoints were touched.  Idempotence is the caller's
    concern (the harness applies this once, right after construction).
    """
    touched = 0
    groups = [getattr(system, "nodes", {}).values(),
              getattr(system, "managers", {}).values(),
              getattr(system, "standby_managers", {}).values()]
    for group in groups:
        for member in group:
            factor = multipliers.get(getattr(member, "region", None))
            if factor is None or factor == 1.0:
                continue
            member.endpoint.service_time *= factor
            touched += 1
    return touched
