"""Compile topology plans onto a running system and judge the outcome.

:class:`TopoRunner` mirrors :class:`repro.chaos.runner.ChaosRunner` with one
structural difference: **instant** events (RTT re-profile, service-tier
change, client migration) fire as kernel timers exactly like chaos faults,
while **structural** events (shard moves, region join/leave, node churn)
are executed *sequentially* by one driver coroutine.  A structural event
whose scheduled time arrives while the previous reconfiguration is still
draining simply starts late — overlapping view changes are impossible by
construction, which matches the paper's one-reconfiguration-at-a-time
manager and keeps the serializability obligations of Algorithms 3/4 intact.

Every applied event is counted into the system's ``stats`` bag
(``topo_events`` plus a per-kind counter), emitted as a ``topo`` trace
event when a tracer is attached, and recorded on :attr:`TopoRunner.applied`.

:func:`run_topo_trial` is the push-button oracle used by the churn fuzzer:
build an open-loop DAST trial with a spare region, install a plan, run,
drain, then audit — one-copy serializability over the merged (live +
retired) logs, replica digest agreement, and no conflict-driven aborts —
folded into a :class:`TopoReport` whose text rendering is deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.topo.plan import STRUCTURAL_KINDS, TopoEvent, TopologyPlan
from repro.topo.profiles import apply_rtt_profile, apply_service_multipliers

__all__ = ["TopoRunner", "TopoReport", "run_topo_trial"]


class TopoRunner:
    """Installs one :class:`TopologyPlan` onto a system's simulator."""

    def __init__(self, system, plan: TopologyPlan, engine=None,
                 origin: Optional[float] = None):
        plan.validate()
        self.system = system
        self.plan = plan
        # The open-loop engine, when present, receives client migrations.
        self.engine = engine
        # Event times are relative to the origin instant (default: now).
        self.origin = system.sim.now if origin is None else origin
        self.applied: List[Tuple[float, TopoEvent, object]] = []
        self.installed = False

    # ------------------------------------------------------------------
    def install(self) -> "TopoRunner":
        """Schedule the plan; exposes the runner as ``system.topo``."""
        if self.installed:
            raise ConfigError("topology plan already installed")
        self.installed = True
        self.system.topo = self
        for event in self.plan.events:
            if event.kind not in STRUCTURAL_KINDS:
                self.system.sim.schedule_at(
                    self.origin + event.time, self._apply_instant, event)
        structural = self.plan.structural()
        if structural:
            self.system.sim.spawn(self._drive(structural), name="topo.drive")
        return self

    # ------------------------------------------------------------------
    def _drive(self, events: List[TopoEvent]):
        """Sequential driver for structural reconfigurations."""
        sim = self.system.sim
        for event in events:
            due = self.origin + event.time
            if due > sim.now:
                yield sim.timeout(due - sim.now)
            result = yield from self._dispatch_structural(event)
            self._record(event, result)

    def _apply_instant(self, event: TopoEvent) -> None:
        self._record(event, self._dispatch_instant(event))

    def _record(self, event: TopoEvent, result) -> None:
        self.applied.append((self.system.sim.now, event, result))
        stats = getattr(self.system, "stats", None)
        if stats is not None and hasattr(stats, "inc"):
            stats.inc("topo_events")
            stats.inc(f"topo_{event.kind}")
        tracer = getattr(self.system, "tracer", None)
        if tracer is not None:
            tracer.emit(self.system.sim.now, "topo", "topo",
                        fault=event.kind, detail=dict(event.args))

    # ------------------------------------------------------------------
    def _dispatch_structural(self, event: TopoEvent):
        system, args, kind = self.system, event.args, event.kind
        if not hasattr(system, "reshard"):
            raise ConfigError(f"{system.name}: topology churn unsupported")
        if kind == "move_shard":
            moved = yield from system.reshard(args["shard"], args["dst"])
            return moved
        if kind == "region_join":
            stats = getattr(system, "stats", None)
            if stats is not None:
                stats.inc("topo_region_joins")
            moved = []
            for shard in args["shards"]:
                moved.append((yield from system.reshard(shard, args["region"])))
            return moved
        if kind == "region_leave":
            stats = getattr(system, "stats", None)
            if stats is not None:
                stats.inc("topo_region_leaves")
            src = args["region"]
            shards = sorted(system.catalog.shards_in_region(src))
            dst = args.get("dst") or self._leave_target(src)
            moved = []
            for shard in shards:
                moved.append((yield from system.reshard(shard, dst)))
            return moved
        if kind == "add_node":
            shard = args["shard"]
            region = system.catalog.region_of_shard(shard)
            host = args.get("host") or system.next_guest_host(region)
            proc = system.add_replica(region, host, shard)
            if proc is not None:
                yield proc
            return host
        if kind == "remove_node":
            host = args["host"]
            shards = system.catalog.shards_on_node(host)
            for shard in shards:
                if len(system.catalog.replicas_of(shard)) <= 1:
                    return None  # never remove a shard's last replica
            region = system.topology.region_of_node(host)
            manager = system.managers.get(region)
            if manager is None:
                return None
            yield system.sim.spawn(manager.remove_nodes([host]),
                                   name=f"topo.remove.{host}")
            return host
        raise ConfigError(f"unknown structural kind {kind!r}")  # unreachable

    def _leave_target(self, src: str) -> str:
        """Deterministic default destination: the occupied region with the
        fewest shards (ties broken by name) among regions other than src."""
        catalog = self.system.catalog
        candidates = [r for r in self.system.topology.regions
                      if r != src and catalog.shards_in_region(r)]
        if not candidates:
            raise ConfigError(f"region_leave {src}: no destination region")
        return min(candidates,
                   key=lambda r: (len(catalog.shards_in_region(r)), r))

    # ------------------------------------------------------------------
    def _dispatch_instant(self, event: TopoEvent):
        system, args, kind = self.system, event.args, event.kind
        if kind == "set_rtt_profile":
            return apply_rtt_profile(
                system.network, system.topology.regions, args["profile"])
        if kind == "set_service_multiplier":
            return apply_service_multipliers(
                system, {args["region"]: args["factor"]})
        if kind == "migrate_clients":
            if self.engine is None:
                return 0  # closed-loop trial: nothing to migrate
            return self.engine.migrate_users(
                args["src"], args["dst"], args["fraction"])
        raise ConfigError(f"unknown instant kind {kind!r}")  # unreachable


class TopoReport:
    """Everything one churn run produced, rendered deterministically."""

    def __init__(self, plan: TopologyPlan, system_name: str, audit,
                 replica_mismatches: List[str], committed: int, aborted: int,
                 conflict_aborts: List[str], events_applied: int,
                 counters: Dict[str, int]):
        self.plan = plan
        self.system_name = system_name
        self.audit = audit  # AuditReport for DAST, None for baselines
        self.replica_mismatches = replica_mismatches
        self.committed = committed
        self.aborted = aborted
        self.conflict_aborts = conflict_aborts
        self.events_applied = events_applied
        self.counters = counters  # reshards / migrations / handoffs / ...

    @property
    def ok(self) -> bool:
        if self.audit is not None and not self.audit.ok:
            return False
        if self.events_applied < len(self.plan.events):
            return False  # an event never ran: drain window too short
        return not self.replica_mismatches and not self.conflict_aborts

    def to_text(self) -> str:
        lines = [self.plan.timeline(), ""]
        lines.append(
            f"system={self.system_name} events_applied={self.events_applied} "
            f"committed={self.committed} aborted={self.aborted}")
        lines.append("churn: " + " ".join(
            f"{key}={self.counters.get(key, 0)}"
            for key in ("reshards", "region_joins", "region_leaves",
                        "migrated_users", "handoff_txns", "parked_aborts")))
        if self.audit is not None:
            lines.append(f"audit: {self.audit!r}")
        if self.replica_mismatches:
            lines.append("replica mismatches: " + "; ".join(self.replica_mismatches))
        if self.conflict_aborts:
            lines.append("conflict aborts: " + "; ".join(self.conflict_aborts))
        lines.append("verdict: " + ("OK" if self.ok else "FAIL"))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"TopoReport({self.system_name}, {'ok' if self.ok else 'FAIL'})"


def run_topo_trial(
    plan: TopologyPlan,
    workload: str = "tpca",
    num_regions: int = 3,
    shards_per_region: int = 1,
    spare_regions: int = 1,
    users_per_region: int = 60,
    arrival_rate_tps: float = 40.0,
    duration_ms: float = 4000.0,
    drain_ms: float = 8000.0,
    seed: int = 1,
    crt_ratio: float = 0.1,
    obs: bool = False,
) -> TopoReport:
    """Run one churn-injected open-loop DAST trial end to end and audit it."""
    from repro.bench.auditor import audit_dast_run
    from repro.bench.harness import Trial, run_trial
    from repro.chaos.runner import BENIGN_ABORT_REASONS
    from repro.workloads.tpca import TpcaWorkload
    from repro.workloads.tpcc import PaymentOnlyWorkload, TpccWorkload

    factories = {
        "tpca": lambda topo: TpcaWorkload(topo, crt_ratio=crt_ratio),
        "tpcc": lambda topo: TpccWorkload(topo),
        "payment": lambda topo: PaymentOnlyWorkload(topo, crt_ratio=crt_ratio),
    }
    trial = Trial(
        "dast",
        factories[workload],
        num_regions=num_regions,
        shards_per_region=shards_per_region,
        replication=1,
        clients_per_region=2,
        duration_ms=duration_ms,
        seed=seed,
        obs=obs,
        topology_plan=plan,
        spare_regions=spare_regions,
        open_loop={
            "users_per_region": users_per_region,
            # The engine's per-region rate is users * txn_per_user_s / 1000.
            "txn_per_user_s": arrival_rate_tps / users_per_region,
            "keep_records": True,
        },
    )
    result = run_trial(trial)
    result.drain(extra_ms=drain_ms)

    audit = audit_dast_run(result.system)
    mismatches: List[str] = []
    for shard_id in result.system.catalog.all_shards():
        digests = set(result.system.replicas_digest(shard_id))
        if len(digests) > 1:
            mismatches.append(f"{shard_id}: replica digests diverge")

    # Open-loop trials with keep_records retain TxnResults on the recorder's
    # results list (the same shape run_chaos_trial consumes).
    results = getattr(result.recorder, "results", [])
    committed = sum(1 for r in results if r.committed)
    aborted = [r for r in results if not r.committed]
    conflicts = sorted(
        f"{r.txn_id}({'crt' if r.is_crt else 'irt'}): {r.abort_reason}"
        for r in aborted if r.abort_reason not in BENIGN_ABORT_REASONS
    )
    tc = result.system.topo_counters()
    counters = {
        "reshards": tc.get("topo_reshards", 0),
        "region_joins": tc.get("topo_region_joins", 0),
        "region_leaves": tc.get("topo_region_leaves", 0),
        "migrated_users": tc.get("topo_migrated_users", 0),
        "handoff_txns": tc.get("topo_handoff_txns", 0),
        "parked_aborts": tc.get("topo_parked_aborts", 0),
    }
    return TopoReport(
        plan,
        system_name="dast",
        audit=audit,
        replica_mismatches=mismatches,
        committed=committed,
        aborted=len(aborted),
        conflict_aborts=conflicts,
        events_applied=len(result.topo.applied) if result.topo else 0,
        counters=counters,
    )
