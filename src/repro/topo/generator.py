"""Seeded random churn-scenario generation.

``generate_topology_plan(seed, ...)`` draws a handful of churn *clauses* —
a spare region joining (pulling a shard in by elastic resharding), a region
leaving (pushing all its shards out), a single shard move, a client
migration wave, an RTT re-profile, a per-region service-tier change — and
lowers them into one time-sorted :class:`TopologyPlan`.  The same seed
always yields the same plan (the generator owns its own ``random.Random``).

Structural clauses are assigned *monotonically increasing* times: the
runner executes structural events sequentially anyway, so monotone times
keep the generator's shard-home bookkeeping aligned with execution order
(a move generated after a leave can then never be scheduled before it).

Scenarios are constrained to be auditable end-state: every referenced
shard exists at its event's time, a region leaves at most once, the spare
joins at most once, and client migrations stay between the original
(workload-bearing) regions — so DAST must come out of any generated plan
serializable with agreeing replicas.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.topo.plan import TopologyPlan

__all__ = ["TopoProfile", "generate_topology_plan"]


@dataclass
class TopoProfile:
    """Knobs bounding what a generated churn scenario may do."""

    min_clauses: int = 2
    max_clauses: int = 4
    max_structural: int = 3
    # Window for churn activity relative to plan start (virtual ms); the
    # tail past ``end`` is left for the system to settle before the audit.
    start: float = 600.0
    end: float = 3200.0
    min_gap: float = 250.0  # between consecutive structural events
    max_gap: float = 700.0
    min_migrate_fraction: float = 0.05
    max_migrate_fraction: float = 0.25
    min_service_factor: float = 1.2
    max_service_factor: float = 2.2
    rtt_profiles: tuple = ("aws-like", "metro-edge")


def generate_topology_plan(
    seed: int,
    num_regions: int = 3,
    shards_per_region: int = 1,
    spare_regions: int = 1,
    profile: Optional[TopoProfile] = None,
) -> TopologyPlan:
    """Generate one deterministic churn scenario."""
    profile = profile or TopoProfile()
    rng = random.Random((seed << 16) ^ 0x7090)
    workload_regions = [f"r{i}" for i in range(num_regions)]
    all_regions = [f"r{i}" for i in range(num_regions + spare_regions)]
    spares = all_regions[num_regions:]
    plan = TopologyPlan(name=f"topo-gen-{seed}", seed=seed)

    # Current shard home, updated as structural clauses are drawn; times are
    # monotone so this mirrors execution order exactly.
    homes: Dict[str, str] = {
        f"s{k}": workload_regions[k // shards_per_region]
        for k in range(num_regions * shards_per_region)
    }
    state = {"t": profile.start, "structural": 0, "joined": False}
    left_regions: set = set()

    def next_struct_time() -> Optional[float]:
        if state["structural"] >= profile.max_structural:
            return None
        t = round(state["t"] + rng.uniform(profile.min_gap, profile.max_gap), 1)
        if t > profile.end:
            return None
        state["t"] = t
        state["structural"] += 1
        return t

    def pick_instant_time() -> float:
        return round(rng.uniform(profile.start, profile.end), 1)

    def clause_region_join() -> None:
        candidates = [s for s in spares if s not in set(homes.values())]
        if state["joined"] or not candidates:
            return
        spare = rng.choice(candidates)
        movable = sorted(s for s, r in homes.items()
                         if r not in left_regions and r != spare)
        if not movable:
            return
        t = next_struct_time()
        if t is None:
            return
        shard = rng.choice(movable)
        plan.add(t, "region_join", region=spare, shards=[shard])
        homes[shard] = spare
        state["joined"] = True

    def clause_region_leave() -> None:
        occupied = sorted({r for r in homes.values() if r not in left_regions})
        if len(occupied) < 2:
            return  # never empty the whole deployment
        t = next_struct_time()
        if t is None:
            return
        src = rng.choice(occupied)
        dst = rng.choice([r for r in occupied if r != src])
        plan.add(t, "region_leave", region=src, dst=dst)
        for shard, region in homes.items():
            if region == src:
                homes[shard] = dst
        left_regions.add(src)

    def clause_move_shard() -> None:
        movable = sorted(s for s, r in homes.items() if r not in left_regions)
        if not movable:
            return
        t = next_struct_time()
        if t is None:
            return
        shard = rng.choice(movable)
        dst_candidates = [r for r in all_regions
                          if r != homes[shard] and r not in left_regions]
        if not dst_candidates:
            return
        dst = rng.choice(dst_candidates)
        plan.add(t, "move_shard", shard=shard, dst=dst)
        homes[shard] = dst

    def clause_migrate_clients() -> None:
        if len(workload_regions) < 2:
            return
        src, dst = rng.sample(workload_regions, 2)
        fraction = round(rng.uniform(profile.min_migrate_fraction,
                                     profile.max_migrate_fraction), 3)
        plan.add(pick_instant_time(), "migrate_clients",
                 src=src, dst=dst, fraction=fraction)

    def clause_rtt_profile() -> None:
        name = rng.choice(list(profile.rtt_profiles))
        plan.add(pick_instant_time(), "set_rtt_profile", profile=name)

    def clause_service_tier() -> None:
        region = rng.choice(all_regions)
        factor = round(rng.uniform(profile.min_service_factor,
                                   profile.max_service_factor), 2)
        plan.add(pick_instant_time(), "set_service_multiplier",
                 region=region, factor=factor)

    menu: List = [
        clause_region_join, clause_region_leave, clause_move_shard,
        clause_migrate_clients, clause_rtt_profile, clause_service_tier,
    ]
    n_clauses = rng.randint(profile.min_clauses, profile.max_clauses)
    for _ in range(n_clauses):
        rng.choice(menu)()
    return plan.validate()
