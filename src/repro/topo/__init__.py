"""Dynamic topology: seeded region churn, client mobility, heterogeneity.

The paper evaluates DAST on static region/node layouts; ``repro.topo``
makes the layout itself a first-class, fuzzable workload dimension:

* :class:`~repro.topo.plan.TopologyPlan` — a seeded, serializable schedule
  of mid-trial reconfiguration events (region join/leave with elastic
  resharding, node add/remove, RTT re-profiling, client migration),
* :class:`~repro.topo.runner.TopoRunner` — compiles a plan onto a running
  system's virtual-time kernel (structural events run sequentially through
  the Algorithm 3/4 machinery; instant events fire as timers),
* :mod:`~repro.topo.profiles` — named heterogeneous-edge presets
  (realistic cloud RTT matrices, per-region service-time multipliers),
* :mod:`~repro.topo.generator` — seeded, ddmin-shrinkable churn scenarios
  with the serializability auditor as oracle.

Every scenario keeps byte-identical replay: plans are deterministic
schedules, mobility draws from the trial's seeded RNG registry, and the
PDES gate falls back to the serial kernel (with a named reason) whenever
structural churn would cross a partition window.
"""

from repro.topo.generator import TopoProfile, generate_topology_plan
from repro.topo.plan import TOPO_KINDS, TopoEvent, TopologyPlan
from repro.topo.profiles import (
    RTT_PROFILES,
    SERVICE_PROFILES,
    apply_rtt_profile,
    apply_service_multipliers,
    resolve_service_multipliers,
)
from repro.topo.runner import TopoReport, TopoRunner, run_topo_trial

__all__ = [
    "TOPO_KINDS",
    "TopoEvent",
    "TopoProfile",
    "TopologyPlan",
    "generate_topology_plan",
    "RTT_PROFILES",
    "SERVICE_PROFILES",
    "apply_rtt_profile",
    "apply_service_multipliers",
    "resolve_service_multipliers",
    "TopoReport",
    "TopoRunner",
    "run_topo_trial",
]
