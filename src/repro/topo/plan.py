"""Declarative topology plans: seeded, serializable schedules of churn.

A :class:`TopologyPlan` mirrors :class:`repro.chaos.plan.FaultPlan` exactly
— an ordered list of :class:`TopoEvent` entries ``(time, kind, args)`` that
can be compiled onto a running system
(:class:`repro.topo.runner.TopoRunner`), generated from a seed
(:mod:`repro.topo.generator`), shrunk to a minimal reproducer (the chaos
ddmin shrinker duck-types plans, so :func:`repro.chaos.shrink.shrink_plan`
works unchanged), and serialized to canonical JSON for byte-identical
regression reproducers.

Two event classes exist:

* **structural** kinds (``move_shard``, ``region_join``, ``region_leave``,
  ``add_node``, ``remove_node``) reconfigure membership through the
  Algorithm 3/4 view-change machinery.  The runner executes them
  *sequentially* in one driver coroutine — overlapping view changes are
  impossible by construction, matching the paper's one-reconfiguration-
  at-a-time manager;
* **instant** kinds (``set_rtt_profile``, ``set_service_multiplier``,
  ``migrate_clients``) apply at their scheduled instant as kernel timers,
  exactly like chaos faults.

Event times are virtual milliseconds relative to plan installation
(usually t=0).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

__all__ = ["TopoEvent", "TopologyPlan", "TOPO_KINDS",
           "STRUCTURAL_KINDS", "INSTANT_KINDS"]

# kind -> required argument names; optional arguments in _OPTIONAL_ARGS.
TOPO_KINDS: Dict[str, Tuple[str, ...]] = {
    # Structural (sequential, via the view-change machinery)
    "move_shard": ("shard", "dst"),
    "region_join": ("region", "shards"),
    "region_leave": ("region",),
    "add_node": ("shard",),
    "remove_node": ("host",),
    # Instant (kernel timers)
    "set_rtt_profile": ("profile",),
    "set_service_multiplier": ("region", "factor"),
    "migrate_clients": ("src", "dst", "fraction"),
}

_OPTIONAL_ARGS: Dict[str, Tuple[str, ...]] = {
    "region_leave": ("dst",),
    "add_node": ("host",),
}

STRUCTURAL_KINDS = frozenset(
    {"move_shard", "region_join", "region_leave", "add_node", "remove_node"})
INSTANT_KINDS = frozenset(TOPO_KINDS) - STRUCTURAL_KINDS


class TopoEvent:
    """One timed reconfiguration: ``kind`` with ``args`` at virtual ``time``."""

    __slots__ = ("time", "kind", "args")

    def __init__(self, time: float, kind: str, args: Optional[Dict] = None):
        self.time = float(time)
        self.kind = kind
        self.args = dict(args or {})

    def to_dict(self) -> Dict:
        return {"time": self.time, "kind": self.kind, "args": dict(self.args)}

    @classmethod
    def from_dict(cls, data: Dict) -> "TopoEvent":
        return cls(data["time"], data["kind"], data.get("args", {}))

    def validate(self) -> None:
        if self.time < 0:
            raise ConfigError(f"topology event time must be >= 0, got {self.time}")
        required = TOPO_KINDS.get(self.kind)
        if required is None:
            raise ConfigError(
                f"unknown topology kind {self.kind!r}; known: {sorted(TOPO_KINDS)}"
            )
        missing = [a for a in required if a not in self.args]
        if missing:
            raise ConfigError(f"{self.kind}: missing args {missing}")
        allowed = set(required) | set(_OPTIONAL_ARGS.get(self.kind, ()))
        extra = [a for a in self.args if a not in allowed]
        if extra:
            raise ConfigError(f"{self.kind}: unexpected args {extra}")
        if self.kind == "migrate_clients":
            fraction = self.args["fraction"]
            if not (0.0 < fraction <= 1.0):
                raise ConfigError(
                    f"migrate_clients: fraction must be in (0, 1], got {fraction}")
            if self.args["src"] == self.args["dst"]:
                raise ConfigError("migrate_clients: src == dst")
        if self.kind == "set_service_multiplier" and self.args["factor"] <= 0:
            raise ConfigError(
                f"set_service_multiplier: factor must be > 0, got {self.args['factor']}")

    def __repr__(self) -> str:
        extra = " ".join(f"{k}={self.args[k]}" for k in sorted(self.args))
        return f"[{self.time:10.1f}] {self.kind:<24} {extra}".rstrip()


class TopologyPlan:
    """An ordered, serializable schedule of topology events."""

    def __init__(self, events: Iterable[TopoEvent] = (), name: str = "",
                 seed: Optional[int] = None):
        self.name = name
        self.seed = seed
        # Stable sort: same-instant events keep their authored order, which
        # matches the simulator's FIFO tie-break when compiled.
        self.events: List[TopoEvent] = sorted(events, key=lambda e: e.time)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, time: float, kind: str, **args) -> "TopologyPlan":
        """Append one event (chainable); keeps the schedule time-sorted."""
        event = TopoEvent(time, kind, args)
        event.validate()
        self.events.append(event)
        self.events.sort(key=lambda e: e.time)
        return self

    def validate(self) -> "TopologyPlan":
        for event in self.events:
            event.validate()
        return self

    def structural(self) -> List[TopoEvent]:
        return [e for e in self.events if e.kind in STRUCTURAL_KINDS]

    def instant(self) -> List[TopoEvent]:
        return [e for e in self.events if e.kind in INSTANT_KINDS]

    # ------------------------------------------------------------------
    # Serialization (canonical: identical plans -> identical bytes)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        out: Dict = {"name": self.name, "events": [e.to_dict() for e in self.events]}
        if self.seed is not None:
            out["seed"] = self.seed
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "TopologyPlan":
        return cls(
            (TopoEvent.from_dict(e) for e in data.get("events", [])),
            name=data.get("name", ""),
            seed=data.get("seed"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "TopologyPlan":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Shrinker support (duck-typed by repro.chaos.shrink.shrink_plan)
    # ------------------------------------------------------------------
    def subset(self, indices: Sequence[int]) -> "TopologyPlan":
        """A plan containing only the events at ``indices`` (order kept)."""
        keep = set(indices)
        events = [TopoEvent(e.time, e.kind, e.args)
                  for i, e in enumerate(self.events) if i in keep]
        return TopologyPlan(events, name=self.name, seed=self.seed)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def timeline(self) -> str:
        """Deterministic human-readable churn timeline."""
        header = f"topology plan {self.name or '(unnamed)'}"
        if self.seed is not None:
            header += f" seed={self.seed}"
        header += f" ({len(self.events)} events)"
        lines = [header]
        lines.extend(repr(e) for e in self.events)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"TopologyPlan({self.name or 'unnamed'}, {len(self.events)} events)"
