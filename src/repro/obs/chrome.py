"""Chrome trace-event JSON export for causal transaction traces.

Produces the ``chrome://tracing`` / Perfetto "JSON Array Format": one ``X``
(complete) event per transaction root on its client track, one ``X`` event
per hop's receiver-side work (queue + service) on the receiving host's
track, flow events (``s``/``f``) stitching each hop's send to its delivery
so the UI draws arrows across hosts, and ``i`` (instant) events for phase
marks.  Virtual milliseconds map to microseconds (``ts = ms * 1000``) —
chrome://tracing assumes microsecond timestamps.

Track layout: each simulated host becomes a *process* (named via metadata
events) with a single thread, so the timeline reads as one row per host.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from repro.obs.trace import TxnTrace

__all__ = ["chrome_events", "export_chrome"]


def _us(ms: float) -> int:
    return int(round(ms * 1000.0))


def chrome_events(traces: Iterable[TxnTrace],
                  limit: Optional[int] = None) -> List[Dict]:
    """Flatten traces into a list of trace-event dicts (stable host order)."""
    selected = list(traces)
    selected.sort(key=lambda t: (t.root.t0, t.root.trace_id))
    if limit is not None:
        selected = selected[:limit]
    hosts: List[str] = []

    def pid(host: str) -> int:
        if host not in hosts:
            hosts.append(host)
        return hosts.index(host) + 1

    events: List[Dict] = []
    for trace in selected:
        root = trace.root
        t1 = root.t1 if root.t1 is not None else max(
            [root.t0] + [h.dispatch for h in trace.hops if h.t_recv is not None])
        kind = "CRT" if root.is_crt else "IRT"
        events.append({
            "name": f"{root.trace_id} ({kind})",
            "cat": "txn",
            "ph": "X",
            "ts": _us(root.t0),
            "dur": max(_us(t1 - root.t0), 1),
            "pid": pid(root.client),
            "tid": 1,
            "args": {"trace_id": root.trace_id, "ok": root.ok,
                     "retries": root.retries, "complete": root.t1 is not None},
        })
        for h in trace.hops:
            if h.status == "batched":
                continue
            flow_id = f"{root.trace_id}.{h.span_id}"
            events.append({
                "name": h.method, "cat": "hop", "ph": "s",
                "ts": _us(h.t_send), "pid": pid(h.src), "tid": 1,
                "id": flow_id,
            })
            if h.t_recv is None:
                continue  # dropped in flight: the flow arrow dangles
            events.append({
                "name": h.method, "cat": "hop", "ph": "f", "bp": "e",
                "ts": _us(h.t_recv), "pid": pid(h.dst), "tid": 1,
                "id": flow_id,
            })
            busy = h.queue_ms + h.service_ms
            events.append({
                "name": h.method,
                "cat": "recv",
                "ph": "X",
                "ts": _us(h.t_recv),
                "dur": max(_us(busy), 1),
                "pid": pid(h.dst),
                "tid": 1,
                "args": {"trace_id": root.trace_id, "span": h.span_id,
                         "parent": h.parent_id, "src": h.src,
                         "queue_ms": h.queue_ms, "service_ms": h.service_ms,
                         "size": h.size},
            })
        for t, host, mark_kind in trace.marks:
            events.append({
                "name": mark_kind, "cat": "phase", "ph": "i", "s": "t",
                "ts": _us(t), "pid": pid(host), "tid": 1,
                "args": {"trace_id": root.trace_id},
            })
    meta = []
    for host in hosts:
        meta.append({"name": "process_name", "ph": "M", "pid": pid(host),
                     "tid": 1, "args": {"name": host}})
        meta.append({"name": "process_sort_index", "ph": "M", "pid": pid(host),
                     "tid": 1, "args": {"sort_index": pid(host)}})
    return meta + events


def export_chrome(traces: Iterable[TxnTrace], path: str,
                  limit: Optional[int] = None) -> int:
    """Write a chrome://tracing-loadable JSON array file; returns #events."""
    events = chrome_events(traces, limit=limit)
    with open(path, "w") as fh:
        json.dump(events, fh, separators=(",", ":"))
    return len(events)
