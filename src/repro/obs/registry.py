"""Virtual-time metrics registry: counters, gauges, histograms, time series.

All instruments are sampled in **virtual simulation time** (the kernel's
millisecond clock), never wall clock: a run is deterministic, so its
metrics are too.  The registry is the single sink the rest of the system
writes into; the ad-hoc :class:`repro.util.Stats` counter bags forward
into it through a compatibility shim (``Stats.bind``) so existing
telemetry call sites keep working unchanged.

Design notes:

* **Zero cost when absent** — instruments only exist once something calls
  :meth:`MetricsRegistry.counter` (etc.); protocol code guards on the
  registry/tracer being attached, so an un-instrumented run does no work.
* **Fixed log-scale histogram buckets** — latencies in this simulator span
  ~0.01 ms (loopback) to ~10 s (timeouts under faults); geometric buckets
  give constant relative error across that range and make two histograms
  mergeable without resampling.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "Series", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count (events, messages, retries)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, by: float = 1.0) -> None:
        if by < 0:
            raise ValueError(f"counter {self.name} cannot decrease (by={by})")
        self.value += by

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value:g})"


class Gauge:
    """A point-in-time value that can move both ways (queue depth, lag)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, by: float = 1.0) -> None:
        self.value += by

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value:g})"


class Histogram:
    """Fixed log-scale bucket histogram for latency-like distributions.

    Bucket ``i`` covers ``(bound[i-1], bound[i]]`` with
    ``bound[i] = start * growth**i``; one underflow bucket catches values
    at or below ``start`` and one overflow bucket everything past the last
    bound.  Quantiles are estimated by linear interpolation inside the
    bucket where the requested rank falls (the interpolated-percentile
    convention of :func:`repro.bench.metrics.percentile`).
    """

    __slots__ = ("name", "bounds", "counts", "n", "total", "vmin", "vmax")

    def __init__(self, name: str, start: float = 0.05, growth: float = 1.4,
                 buckets: int = 48):
        if start <= 0 or growth <= 1.0 or buckets < 1:
            raise ValueError("histogram needs start > 0, growth > 1, buckets >= 1")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(start * growth ** i for i in range(buckets))
        self.counts: List[int] = [0] * (buckets + 1)  # + overflow
        self.n = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def observe(self, value: float) -> None:
        self.n += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bound >= value (bisect_left on bounds)
            mid = (lo + hi) // 2
            if self.bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def quantile(self, p: float) -> float:
        """Interpolated quantile estimate from bucket counts (0 if empty)."""
        if self.n == 0:
            return 0.0
        rank = (p / 100.0) * (self.n - 1)  # numpy 'linear' convention
        cum = 0
        for i, count in enumerate(self.counts):
            if count == 0:
                continue
            if rank < cum + count:
                lo = self.bounds[i - 1] if i > 0 else min(self.vmin, self.bounds[0])
                hi = self.bounds[i] if i < len(self.bounds) else self.vmax
                lo = max(lo, self.vmin)
                hi = min(hi, self.vmax)
                if hi <= lo:
                    return lo
                # Position of the rank inside this bucket's count mass.
                frac = min(1.0, max(0.0, (rank - cum) / count))
                return lo + frac * (hi - lo)
            cum += count
        return self.vmax

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.n}, mean={self.mean:.2f})"


class Series:
    """A time series of ``(virtual_time_ms, value)`` samples (probe output)."""

    __slots__ = ("name", "points")

    def __init__(self, name: str):
        self.name = name
        self.points: List[Tuple[float, float]] = []

    def append(self, t: float, value: float) -> None:
        self.points.append((t, float(value)))

    def times(self) -> List[float]:
        return [t for t, _ in self.points]

    def values(self) -> List[float]:
        return [v for _, v in self.points]

    def last(self) -> Optional[float]:
        return self.points[-1][1] if self.points else None

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:
        return f"Series({self.name}: {len(self.points)} pts)"


class MetricsRegistry:
    """Named instrument factory + container.

    ``now_fn`` supplies virtual time for convenience helpers; instruments
    themselves are timestamp-free except :class:`Series`.
    """

    def __init__(self, now_fn: Optional[Callable[[], float]] = None):
        self.now_fn = now_fn or (lambda: 0.0)
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.series: Dict[str, Series] = {}

    # -- get-or-create factories ---------------------------------------
    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str, **kwargs) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = Histogram(name, **kwargs)
        return inst

    def timeseries(self, name: str) -> Series:
        inst = self.series.get(name)
        if inst is None:
            inst = self.series[name] = Series(name)
        return inst

    # -- recording helpers ---------------------------------------------
    def sample(self, name: str, value: float) -> None:
        """Append ``value`` to series ``name`` at the current virtual time."""
        self.timeseries(name).append(self.now_fn(), value)

    # -- snapshot --------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """A plain-dict view of everything, for reports and exporters."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: {"n": h.n, "mean": h.mean, "p50": h.quantile(50),
                    "p99": h.quantile(99), "min": (h.vmin if h.n else 0.0),
                    "max": (h.vmax if h.n else 0.0)}
                for n, h in sorted(self.histograms.items())
            },
            "series": {n: list(s.points) for n, s in sorted(self.series.items())},
        }
