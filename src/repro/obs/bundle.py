"""Attachment plumbing: wire tracer + registry + probes onto any system.

Every system under test (DAST and the three baselines) exposes ``nodes``
(and DAST additionally ``managers``/``standby_managers``); these helpers
attach the observability instruments uniformly, so the harness and CLI do
not care which system they are looking at.  Nothing here runs unless
explicitly attached — an unobserved trial does strictly zero extra work.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.probes import ProbeRunner, standard_probes
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import PhaseSpan, assemble_spans, phase_breakdown

__all__ = ["ObsBundle", "attach_tracer", "attach_registry", "attach_probes", "attach_obs"]


def _observables(system) -> List:
    """Every component that can hold a ``tracer``/``stats`` reference."""
    out = list(getattr(system, "nodes", {}).values())
    out.extend(getattr(system, "managers", {}).values())
    out.extend(getattr(system, "standby_managers", {}).values())
    return out


def attach_tracer(system, kinds=None, hosts=None, capacity: int = 200_000,
                  causal: bool = False):
    """Attach one shared :class:`~repro.sim.trace.Tracer` system-wide.

    With ``causal=True`` a :class:`repro.obs.trace.CausalTracer` is attached
    instead and hooked into the network's RPC layer, so every message hop is
    recorded into per-transaction span trees (see ``docs/TRACING.md``).
    """
    if causal:
        from repro.obs.trace import CausalTracer

        tracer = CausalTracer(kinds=kinds, hosts=hosts, capacity=capacity)
        system.network.causal = tracer
    else:
        from repro.sim.trace import Tracer

        tracer = Tracer(kinds=kinds, hosts=hosts, capacity=capacity)
    for component in _observables(system):
        if hasattr(component, "tracer"):
            component.tracer = tracer
    system.tracer = tracer
    return tracer


def attach_registry(system, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Attach a metrics registry and bind every ``Stats`` bag into it.

    The per-component counter bags keep their local dicts (back-compat)
    but mirror increments into registry counters named
    ``<host>.<counter>`` from the moment of attachment.
    """
    if registry is None:
        registry = MetricsRegistry(now_fn=lambda: system.sim.now)
    for component in _observables(system):
        stats = getattr(component, "stats", None)
        if stats is not None and hasattr(stats, "bind"):
            host = getattr(component, "host", component.__class__.__name__)
            stats.bind(registry, prefix=f"{host}.")
    system_stats = getattr(system, "stats", None)
    if system_stats is not None and hasattr(system_stats, "bind"):
        system_stats.bind(registry, prefix="system.")
    system.registry = registry
    return registry


def attach_probes(system, interval: float = 50.0,
                  registry: Optional[MetricsRegistry] = None) -> ProbeRunner:
    """Start the periodic probe sampler (creates a registry if needed)."""
    registry = registry or getattr(system, "registry", None)
    if registry is None:
        registry = attach_registry(system)
    runner = ProbeRunner(system.sim, registry, interval=interval)
    for name, fn in standard_probes(system):
        runner.add(name, fn)
    runner.start()
    system.probes = runner
    return runner


class ObsBundle:
    """Everything one observed trial produced, with lazy span assembly."""

    def __init__(self, system, tracer, registry: MetricsRegistry,
                 probes: Optional[ProbeRunner] = None):
        self.system = system
        self.tracer = tracer
        self.registry = registry
        self.probes = probes
        self._spans: Optional[List[PhaseSpan]] = None
        self._traces = None

    def spans(self, refresh: bool = False,
              include_partial: bool = False) -> List[PhaseSpan]:
        if self._spans is None or refresh:
            self._spans = assemble_spans(self.tracer, include_partial=True)
        if include_partial:
            return self._spans
        return [s for s in self._spans if not s.partial]

    def partial_count(self) -> int:
        """Transactions surfaced as partial spans (truncated or in flight)."""
        return sum(1 for s in self.spans(include_partial=True) if s.partial)

    @property
    def causal(self) -> bool:
        return bool(getattr(self.tracer, "causal", False))

    def traces(self, refresh: bool = False):
        """Per-transaction causal trees (causal attachment only)."""
        if not self.causal:
            return {}
        if self._traces is None or refresh:
            from repro.obs.trace import build_traces

            self._traces = build_traces(self.tracer)
        return self._traces

    def breakdown(self, crt: Optional[bool] = None) -> List[Dict]:
        return phase_breakdown(self.spans(), crt=crt)

    def stop(self) -> None:
        if self.probes is not None:
            self.probes.stop()


def attach_obs(system, kinds=None, hosts=None, capacity: int = 200_000,
               probe_interval: float = 50.0, causal: bool = False) -> ObsBundle:
    """One-call full attachment: tracer + registry + probes."""
    tracer = getattr(system, "tracer", None)
    if tracer is None:
        tracer = attach_tracer(system, kinds=kinds, hosts=hosts,
                               capacity=capacity, causal=causal)
    registry = attach_registry(system)
    probes = attach_probes(system, interval=probe_interval, registry=registry)
    bundle = ObsBundle(system, tracer, registry, probes)
    system.obs = bundle
    return bundle
