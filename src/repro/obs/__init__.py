"""Unified observability layer: metrics, phase spans, probes, exporters.

See ``docs/OBSERVABILITY.md`` for the full tour.  Quick start::

    from repro.obs import attach_obs, render_report

    bundle = attach_obs(system)      # tracer + registry + probes
    ... run the trial ...
    print(render_report(bundle))     # phase breakdowns + probe sparklines
"""

from repro.obs.bundle import (
    ObsBundle,
    attach_obs,
    attach_probes,
    attach_registry,
    attach_tracer,
)
from repro.obs.chrome import chrome_events, export_chrome
from repro.obs.critical_path import (
    PathResult,
    Segment,
    attribution,
    critical_path,
    render_attribution,
    render_exemplar,
    slowest,
)
from repro.obs.export import export_csv, export_jsonl, render_report, sparkline
from repro.obs.trace import CausalTracer, HopSpan, RootSpan, TxnTrace, build_traces
from repro.obs.probes import ProbeRunner, standard_probes
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry, Series
from repro.obs.spans import (
    CRT_PHASES,
    IRT_PHASES,
    PhaseSpan,
    assemble_spans,
    phase_breakdown,
)

__all__ = [
    "ObsBundle",
    "attach_obs",
    "attach_probes",
    "attach_registry",
    "attach_tracer",
    "export_csv",
    "export_jsonl",
    "render_report",
    "sparkline",
    "ProbeRunner",
    "standard_probes",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Series",
    "CRT_PHASES",
    "IRT_PHASES",
    "PhaseSpan",
    "assemble_spans",
    "phase_breakdown",
    "CausalTracer",
    "HopSpan",
    "RootSpan",
    "TxnTrace",
    "build_traces",
    "PathResult",
    "Segment",
    "attribution",
    "critical_path",
    "render_attribution",
    "render_exemplar",
    "slowest",
    "chrome_events",
    "export_chrome",
]
