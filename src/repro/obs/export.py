"""Exporters for observability bundles: JSONL, CSV, and a text report.

JSONL is the machine interchange format (one self-describing record per
line, ``type`` in {``meta``, ``counter``, ``gauge``, ``histogram``,
``span``, ``probe``}); CSV splits the same data into ``spans.csv``,
``probes.csv``, and ``counters.csv`` for spreadsheet work.  The text
report is what ``repro obs`` / ``repro run --trace-out`` print: the
CRT/IRT per-phase breakdown tables plus a one-line unicode sparkline per
probe series.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Dict, List, Optional

from repro.bench.report import format_table
from repro.obs.bundle import ObsBundle

__all__ = ["export_jsonl", "export_csv", "render_report", "sparkline"]

_SPARK_TICKS = "▁▂▃▄▅▆▇█"


def sparkline(values: List[float], width: int = 40) -> str:
    """Compress a series into a fixed-width unicode sparkline."""
    if not values:
        return ""
    if len(values) > width:
        # Average adjacent samples into ``width`` cells.
        step = len(values) / width
        values = [
            sum(values[int(i * step):max(int(i * step) + 1, int((i + 1) * step))])
            / max(1, len(values[int(i * step):max(int(i * step) + 1, int((i + 1) * step))]))
            for i in range(width)
        ]
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_TICKS[0] * len(values)
    scale = (len(_SPARK_TICKS) - 1) / (hi - lo)
    return "".join(_SPARK_TICKS[int((v - lo) * scale)] for v in values)


def export_jsonl(bundle: ObsBundle, path: str) -> int:
    """Write the bundle as JSON lines; returns the number of records."""
    snapshot = bundle.registry.snapshot()
    records = 0
    with open(path, "w", encoding="utf-8") as fh:
        def emit(record: Dict) -> None:
            nonlocal records
            fh.write(json.dumps(record, default=str) + "\n")
            records += 1

        tracer = bundle.tracer
        emit({
            "type": "meta",
            "system": getattr(bundle.system, "name", "unknown"),
            "virtual_now_ms": bundle.system.sim.now,
            "trace_events": len(tracer.events) if tracer is not None else 0,
            "trace_dropped": getattr(tracer, "dropped", 0) if tracer is not None else 0,
        })
        for name, value in snapshot["counters"].items():
            emit({"type": "counter", "name": name, "value": value})
        for name, value in snapshot["gauges"].items():
            emit({"type": "gauge", "name": name, "value": value})
        for name, stats in snapshot["histograms"].items():
            emit({"type": "histogram", "name": name, **stats})
        for span in bundle.spans(include_partial=True):
            emit({
                "type": "span", "txn": span.txn_id, "is_crt": span.is_crt,
                "start_ms": span.start, "end_ms": span.end,
                "total_ms": span.total, "retries": span.retries,
                "partial": span.partial,
                "phases": span.phases,
            })
        for name, points in snapshot["series"].items():
            for t, value in points:
                emit({"type": "probe", "name": name, "t_ms": t, "value": value})
    return records


def export_csv(bundle: ObsBundle, directory: str) -> Dict[str, str]:
    """Write ``spans.csv``, ``probes.csv``, ``counters.csv`` under ``directory``."""
    os.makedirs(directory, exist_ok=True)
    paths: Dict[str, str] = {}

    spans = bundle.spans()
    phase_names: List[str] = []
    for span in spans:
        for name in span.phases:
            if name not in phase_names:
                phase_names.append(name)
    paths["spans"] = os.path.join(directory, "spans.csv")
    with open(paths["spans"], "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["txn", "is_crt", "start_ms", "end_ms", "total_ms",
                         "retries"] + phase_names)
        for span in spans:
            writer.writerow(
                [span.txn_id, int(span.is_crt), f"{span.start:.3f}",
                 f"{span.end:.3f}", f"{span.total:.3f}", span.retries]
                + [f"{span.phases.get(p, 0.0):.3f}" for p in phase_names]
            )

    paths["probes"] = os.path.join(directory, "probes.csv")
    with open(paths["probes"], "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["series", "t_ms", "value"])
        for name, series in sorted(bundle.registry.series.items()):
            for t, value in series.points:
                writer.writerow([name, f"{t:.3f}", f"{value:g}"])

    paths["counters"] = os.path.join(directory, "counters.csv")
    with open(paths["counters"], "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["counter", "value"])
        for name, counter in sorted(bundle.registry.counters.items()):
            writer.writerow([name, f"{counter.value:g}"])
    return paths


def render_report(bundle: ObsBundle, max_series: Optional[int] = None) -> str:
    """The human-readable observability report (phase tables + sparklines)."""
    chunks: List[str] = []
    spans = bundle.spans()
    for label, crt in (("CRT phase breakdown", True), ("IRT phase breakdown", False)):
        rows = bundle.breakdown(crt=crt)
        if rows:
            chunks.append(f"== {label} ({rows[-1]['count']} txns) ==")
            chunks.append(format_table(
                rows, columns=["phase", "count", "mean_ms", "p50_ms", "p99_ms"]
            ))
            chunks.append("")
    if not spans:
        chunks.append("(no complete spans — was the tracer attached before traffic?)")
        chunks.append("")
    partial = bundle.partial_count()
    if partial:
        chunks.append(f"partial spans: {partial} transaction(s) without a "
                      f"complete submit..reply pair (in flight at trial end "
                      f"or events truncated) — excluded from the breakdown")
        chunks.append("")

    series = sorted(bundle.registry.series.items())
    if max_series is not None:
        series = series[:max_series]
    if series:
        chunks.append("== probes ==")
        width = max(len(name) for name, _ in series)
        for name, s in series:
            values = s.values()
            last = values[-1] if values else 0.0
            chunks.append(
                f"{name.ljust(width)}  {sparkline(values)}  "
                f"last={last:g} min={min(values) if values else 0:g} "
                f"max={max(values) if values else 0:g} n={len(values)}"
            )
        chunks.append("")

    tracer = bundle.tracer
    if tracer is not None and getattr(tracer, "dropped", 0):
        chunks.append(f"WARNING: tracer dropped {tracer.dropped} events "
                      f"(capacity {tracer.capacity}); spans may be incomplete")
    return "\n".join(chunks).rstrip() + "\n"
