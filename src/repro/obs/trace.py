"""Causal cross-node tracing: one span tree per transaction.

A :class:`CausalTracer` extends the flat event :class:`~repro.sim.trace.Tracer`
with *causal* structure:

* a **root span** per transaction, opened at the client ``submit()`` and
  closed when the reply resolves — it brackets the exact client-observed
  latency;
* a **hop span** per network message carrying the transaction (requests,
  responses, one-way fan-outs), recording send time, receive time, and the
  receiver-side CPU queue/service split;
* **marks** — the existing guarded protocol emit sites (``anticipate``,
  ``ready``, ``execute``, ...) double as zero-width phase marks on the tree.

Trace context is a compact ``(trace_id, span_id)`` pair stamped onto the RPC
envelope at send time (envelope schema v2, see ``repro.sim.rpc``).  The
context's virtual wire cost is accounted in a **separate byte lane**
(``NetworkStats.trace_bytes_sent``) so attaching a tracer never perturbs
``bytes_sent`` or any golden digest: observation is perturbation-free, yet
the wire cost of tracing stays honestly reported.

Parenting: sends made synchronously inside a message handler inherit the
handler's context (the tracer keeps an *active context* stack around handler
invocation).  Sends made from coroutine processes resume outside any handler
and fall back to the transaction's root span — the tree stays connected by
construction, and the critical-path analyzer (``repro.obs.critical_path``)
derives attribution from hop *timing*, not parent pointers, so the fallback
never skews latency attribution.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.trace import Tracer
from repro.wire.schema import Encoded

__all__ = ["HopSpan", "RootSpan", "TxnTrace", "CausalTracer", "build_traces"]

TraceCtx = Tuple[str, int]  # (trace_id, span_id)


class HopSpan:
    """One message hop: src --method--> dst, with the receive-side split.

    ``status`` lifecycle: ``sent`` -> ``delivered`` | ``dropped``;
    batched frames are recorded as ``batched`` (buffered into a batch
    window; never on a critical path).
    """

    __slots__ = ("span_id", "parent_id", "trace_id", "method", "src", "dst",
                 "t_send", "t_recv", "queue_ms", "service_ms", "size", "status")

    def __init__(self, span_id: int, parent_id: Optional[int], trace_id: str,
                 method: str, src: str, dst: str, t_send: float):
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.method = method
        self.src = src
        self.dst = dst
        self.t_send = t_send
        self.t_recv: Optional[float] = None
        self.queue_ms = 0.0
        self.service_ms = 0.0
        self.size = 0
        self.status = "sent"

    @property
    def dispatch(self) -> float:
        """When the receiver's handler actually ran (arrival + queue + service)."""
        t = self.t_recv if self.t_recv is not None else self.t_send
        return t + self.queue_ms + self.service_ms

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id, "parent_id": self.parent_id,
            "trace_id": self.trace_id, "method": self.method,
            "src": self.src, "dst": self.dst, "t_send": self.t_send,
            "t_recv": self.t_recv, "queue_ms": self.queue_ms,
            "service_ms": self.service_ms, "size": self.size,
            "status": self.status,
        }

    def __repr__(self) -> str:
        arrive = f"{self.t_recv:.3f}" if self.t_recv is not None else self.status
        return (f"Hop#{self.span_id}({self.trace_id} {self.method} "
                f"{self.src}->{self.dst} {self.t_send:.3f}->{arrive})")


class RootSpan:
    """The per-transaction root: client submit .. client reply."""

    __slots__ = ("span_id", "trace_id", "client", "t0", "t1", "ok", "is_crt",
                 "retries")

    def __init__(self, span_id: int, trace_id: str, client: str, t0: float):
        self.span_id = span_id
        self.trace_id = trace_id
        self.client = client
        self.t0 = t0
        self.t1: Optional[float] = None
        self.ok: Optional[bool] = None
        self.is_crt: Optional[bool] = None
        self.retries = 0

    @property
    def total(self) -> Optional[float]:
        return None if self.t1 is None else self.t1 - self.t0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id, "trace_id": self.trace_id,
            "client": self.client, "t0": self.t0, "t1": self.t1,
            "ok": self.ok, "is_crt": self.is_crt, "retries": self.retries,
        }


class TxnTrace:
    """One transaction's assembled causal tree: root + hops + phase marks."""

    __slots__ = ("root", "hops", "marks")

    def __init__(self, root: RootSpan):
        self.root = root
        self.hops: List[HopSpan] = []
        self.marks: List[Tuple[float, str, str]] = []  # (time, host, kind)

    @property
    def trace_id(self) -> str:
        return self.root.trace_id

    @property
    def complete(self) -> bool:
        return self.root.t1 is not None

    def span_ids(self) -> set:
        ids = {self.root.span_id}
        ids.update(h.span_id for h in self.hops)
        return ids

    def orphans(self) -> List[HopSpan]:
        """Hops whose parent pointer does not land inside this tree."""
        ids = self.span_ids()
        return [h for h in self.hops
                if h.parent_id is not None and h.parent_id not in ids]


def _txn_of(payload: Any) -> Optional[str]:
    """Extract the transaction id a payload carries, if any."""
    if payload is None:
        return None
    if payload.__class__ is Encoded:
        fields = payload.fields
        tid = fields.get("txn_id")
        if tid is None:
            txn = fields.get("txn")
            if txn is not None:
                tid = getattr(txn, "txn_id", None)
        return tid
    tid = getattr(payload, "txn_id", None)
    if tid is None:
        txn = getattr(payload, "txn", None)
        if txn is not None:
            tid = getattr(txn, "txn_id", None)
    return tid if isinstance(tid, str) else None


class CausalTracer(Tracer):
    """A :class:`Tracer` that additionally records the causal span tree.

    Span ids are drawn from a per-instance counter (the tracer is built
    fresh for every trial), so span numbering is deterministic and
    position-independent.
    """

    causal = True  # duck-typed flag checked by submit()/rpc attach sites

    def __init__(self, kinds=None, hosts=None, capacity: int = 200_000,
                 max_hops: int = 2_000_000):
        super().__init__(kinds=kinds, hosts=hosts, capacity=capacity)
        self._span_ids = itertools.count(1)
        self.hops: List[HopSpan] = []
        self.roots: Dict[str, RootSpan] = {}
        self.max_hops = max_hops
        self.hops_dropped = 0
        self._by_id: Dict[int, HopSpan] = {}
        self._active: List[Optional[TraceCtx]] = []

    # -- active-context stack (around handler invocation) ---------------
    def push_active(self, ctx: Optional[TraceCtx]) -> None:
        self._active.append(ctx)

    def pop_active(self) -> None:
        self._active.pop()

    def active(self) -> Optional[TraceCtx]:
        return self._active[-1] if self._active else None

    # -- root spans ------------------------------------------------------
    def begin_root(self, client: str, trace_id: str, t0: float) -> RootSpan:
        root = self.roots.get(trace_id)
        if root is not None:  # client retry: same tree, count the resubmit
            root.retries += 1
            return root
        root = RootSpan(next(self._span_ids), trace_id, client, t0)
        self.roots[trace_id] = root
        return root

    def traced_submit(self, endpoint, client: str, dst: str, msg,
                      trace_id: str, timeout: Optional[float] = None):
        """Open the root span, issue the submit call under its context, and
        close the root when the reply event resolves."""
        sim = endpoint.sim
        root = self.begin_root(client, trace_id, sim.now)
        self.push_active((trace_id, root.span_id))
        try:
            event = endpoint.call(dst, msg, timeout=timeout)
        finally:
            self.pop_active()

        def _close(ev) -> None:
            root.t1 = sim.now
            root.ok = ev.ok
            root.is_crt = getattr(ev.value, "is_crt", None) if ev.ok else None

        event.add_callback(_close)
        return event

    # -- hop spans (called from Endpoint/Network guarded sites) ----------
    def begin_hop(self, src: str, dst: str, method: str, payload: Any,
                  parent: Optional[TraceCtx] = None) -> Optional[TraceCtx]:
        if parent is not None:
            trace_id, parent_id = parent
        else:
            trace_id = _txn_of(payload)
            if trace_id is None:
                return None  # not transaction traffic (pct reports, pings, ...)
            top = self.active()
            if top is not None and top[0] == trace_id:
                parent_id = top[1]
            else:
                # Coroutine-originated send: fall back to the root span so
                # the tree stays connected (see module docstring).
                root = self.roots.get(trace_id)
                parent_id = root.span_id if root is not None else None
        if len(self.hops) >= self.max_hops:
            self.hops_dropped += 1
            return None
        span = HopSpan(next(self._span_ids), parent_id, trace_id,
                       method, src, dst, t_send=0.0)
        self.hops.append(span)
        self._by_id[span.span_id] = span
        return (trace_id, span.span_id)

    def stamp_send(self, ctx: TraceCtx, t_send: float, size: int) -> None:
        span = self._by_id.get(ctx[1])
        if span is not None:
            span.t_send = t_send
            span.size = size

    def end_hop(self, ctx: TraceCtx, t_recv: float,
                queue_ms: float, service_ms: float) -> None:
        span = self._by_id.get(ctx[1])
        if span is None or span.t_recv is not None:
            return  # duplicate delivery: keep the first completion
        span.t_recv = t_recv
        span.queue_ms = queue_ms
        span.service_ms = service_ms
        span.status = "delivered"

    def mark_dropped(self, ctx: TraceCtx) -> None:
        span = self._by_id.get(ctx[1])
        if span is not None and span.t_recv is None:
            span.status = "dropped"

    def note_batched(self, src: str, dst: str, payload: Any, t: float) -> None:
        """Record a frame buffered into a batch window.  Batched frames are
        cheap fan-outs; they are counted but excluded from critical paths."""
        ctx = self.begin_hop(src, dst, getattr(payload, "name", "frame"), payload)
        if ctx is not None:
            span = self._by_id[ctx[1]]
            span.t_send = t
            span.status = "batched"


def build_traces(tracer: CausalTracer,
                 complete_only: bool = False) -> Dict[str, TxnTrace]:
    """Assemble per-transaction :class:`TxnTrace` trees from a causal tracer.

    ``complete_only`` keeps only transactions whose root span closed (the
    client saw a reply).  Hops whose transaction never opened a root (e.g.
    recovery traffic for a transaction submitted before attachment) are
    grouped under a synthetic root-less trace only if a hop exists for them —
    they are dropped here, since without a root there is no client latency
    to attribute.
    """
    traces: Dict[str, TxnTrace] = {}
    for root in tracer.roots.values():
        traces[root.trace_id] = TxnTrace(root)
    for hop in tracer.hops:
        trace = traces.get(hop.trace_id)
        if trace is not None:
            trace.hops.append(hop)
    for ev in tracer.events:
        tid = ev.txn_id
        if tid is None:
            continue
        trace = traces.get(tid)
        if trace is not None:
            trace.marks.append((ev.time, ev.host, ev.kind))
    if complete_only:
        return {tid: tr for tid, tr in traces.items() if tr.complete}
    return traces
