"""Per-transaction phase spans assembled from tracer events.

A :class:`PhaseSpan` decomposes one transaction's client-observed latency
into consecutive protocol phases, reproducing the shape of the paper's
Tables 3/4 (CRT commit-path breakdown) from runtime events instead of
coordinator bookkeeping:

* **CRT** (2DA): ``submit -> anticipate -> dispatch -> ready -> execute
  -> reply`` — the time for the managers to anticipate a timestamp, for
  the dispatch to reach the participants, for the commit + PCT clocks to
  pass the timestamp (order-ready), for execution, and for the reply to
  travel back to the client.
* **IRT**: ``submit -> timestamp -> execute -> reply``.
* Systems without phase events (the baselines) degrade to a single
  ``reply`` phase covering the whole round trip.
* **Open-loop** transactions (:mod:`repro.workloads.openloop`) carry an
  ``arrival`` event whose ``intended`` field is the arrival instant the
  generator drew.  Such spans are anchored at the *intended* time and gain
  a leading ``queue`` phase (intended -> first submit) covering client-side
  backlog delay, so the span total is the open-loop latency — immune to
  coordinated omission, matching ``OpenLoopRecorder``.

Boundary times are picked from the **critical path** — the latest event of
each kind not after the reply — and clamped monotone, so phase durations
always telescope: their sum equals the client-observed latency *exactly*.
A re-submitted transaction (client retry) contributes one span from its
first ``submit`` to its last ``reply``, with ``retries`` counting the
extra submissions.

Transactions whose events were truncated (tracer capacity hit, or still in
flight at trial end) have no complete submit..reply pair.  By default they
are skipped; with ``include_partial=True`` they are surfaced as explicit
**partial** spans (``span.partial`` set, phases covering whatever events
survived) so summaries can report how many transactions were dropped from
the breakdown instead of silently under-counting.  A span whose ``submit``
event was truncated but whose ``arrival`` survived is *not* partial — the
arrival anchors its start, so the submit..reply pair is recoverable (this
previously under-counted complete open-loop spans).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bench.metrics import percentile

__all__ = ["PhaseSpan", "assemble_spans", "phase_breakdown", "CRT_PHASES", "IRT_PHASES"]

# Phase name -> trace event kind that *ends* the phase.  The first entry is
# the span start (the client-side submit) and contributes no duration.
CRT_PHASES: Tuple[Tuple[str, str], ...] = (
    ("submit", "submit"),
    ("anticipate", "anticipate"),
    ("dispatch", "crt_prepare"),
    ("ready", "ready"),
    ("execute", "execute"),
    ("reply", "reply"),
)
IRT_PHASES: Tuple[Tuple[str, str], ...] = (
    ("submit", "submit"),
    ("timestamp", "irt_ts"),
    ("execute", "execute"),
    ("reply", "reply"),
)


class PhaseSpan:
    """One transaction's phase decomposition (all durations in virtual ms)."""

    __slots__ = ("txn_id", "is_crt", "start", "end", "phases", "retries",
                 "events", "partial")

    def __init__(self, txn_id: str, is_crt: bool, start: float, end: float,
                 phases: Dict[str, float], retries: int, events: int,
                 partial: bool = False):
        self.txn_id = txn_id
        self.is_crt = is_crt
        self.start = start
        self.end = end
        self.phases = phases  # ordered phase -> duration
        self.retries = retries
        self.events = events
        # True when the submit..reply pair was incomplete (truncated tracer
        # buffer or still in flight); such spans carry best-effort phases and
        # are excluded from phase_breakdown.
        self.partial = partial

    @property
    def total(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:
        kind = "CRT" if self.is_crt else "IRT"
        if self.partial:
            kind += " partial"
        inner = ", ".join(f"{k}={v:.2f}" for k, v in self.phases.items())
        return f"PhaseSpan({self.txn_id} {kind} total={self.total:.2f}: {inner})"


def _boundary(times: Sequence[float], prev: float, end: float) -> float:
    """Latest event not after the reply, clamped into ``[prev, end]``."""
    candidates = [t for t in times if t <= end]
    t = max(candidates) if candidates else prev
    return min(max(t, prev), end)


def assemble_spans(tracer, txn: Optional[str] = None,
                   include_partial: bool = False) -> List[PhaseSpan]:
    """Build spans for every transaction with a complete submit..reply pair.

    ``tracer`` is a :class:`repro.sim.trace.Tracer` (or anything with an
    ``events`` list of objects carrying ``time``/``kind``/``txn_id``).
    Transactions without a complete pair (still in flight, or their events
    truncated at the tracer's capacity) are skipped unless
    ``include_partial=True``, in which case they become explicit spans with
    ``partial=True`` spanning whatever events survived.
    """
    by_txn: Dict[str, List] = {}
    for ev in tracer.events:
        tid = ev.txn_id
        if tid is None or (txn is not None and tid != txn):
            continue
        by_txn.setdefault(tid, []).append(ev)

    spans: List[PhaseSpan] = []
    for tid, events in by_txn.items():
        times: Dict[str, List[float]] = {}
        for ev in events:
            times.setdefault(ev.kind, []).append(ev.time)
        submits = sorted(times.get("submit", ()))
        replies = sorted(times.get("reply", ()))
        # Open-loop anchoring: the arrival event's ``intended`` field is the
        # instant the generator drew; it precedes (or equals) the submit.
        intended: Optional[float] = None
        migrated = False
        for ev in events:
            if ev.kind == "arrival":
                t = ev.fields.get("intended", ev.time)
                if intended is None or t < intended:
                    intended = t
                if ev.fields.get("migrated"):
                    migrated = True
        # A span is partial only when its *end* is missing, or when it has
        # no start anchor at all — an arrival event is a valid anchor even
        # if the submit was truncated at tracer capacity.
        partial = not replies or (not submits and intended is None)
        if partial:
            if not include_partial:
                continue  # still in flight, or events truncated
            ev_times = sorted(ev.time for ev in events)
            start = ev_times[0] if intended is None else min(intended, ev_times[0])
            end = ev_times[-1]
        else:
            start = submits[0] if submits else replies[-1]
            if intended is not None:
                start = min(intended, start)
            end = replies[-1]
        if end < start:
            continue
        # Classification: the client reply carries the authoritative flag;
        # fall back to the presence of CRT-path protocol events.
        reply_flags = [ev.fields.get("crt") for ev in events if ev.kind == "reply"]
        authoritative = next((f for f in reply_flags if f is not None), None)
        if authoritative is not None:
            is_crt = bool(authoritative)
        else:
            is_crt = bool(
                times.get("anticipate") or times.get("crt_prepare")
                or any(ev.kind == "execute" and ev.fields.get("crt") for ev in events)
            )
        layout = CRT_PHASES if is_crt else IRT_PHASES
        # Keep only the interior phases actually observed: a baseline that
        # traces nothing degrades to submit->reply, one that traces only
        # ``execute`` (SLOG, Janus) gets execute->reply without zero-width
        # phantom phases for protocol steps it does not have.
        interior = tuple(
            (name, kind) for name, kind in layout[1:-1] if times.get(kind)
        )
        layout = (layout[0],) + interior + (layout[-1],)
        phases: Dict[str, float] = {}
        prev = start
        if intended is not None and submits:
            # Open-loop: the gap from the intended arrival to the *first*
            # submit is client-side queueing (backlog under an in-flight
            # cap).  Zero-width when the arrival launched immediately.
            # A re-homed user (repro.topo client mobility) spends this gap
            # in the handoff instead — submitting through its destination
            # region's coordinator — so the span stays anchored at the
            # original arrival and the leading phase is ``migration``.
            t = min(max(submits[0], prev), end)
            phases["migration" if migrated else "queue"] = t - prev
            prev = t
        for name, kind in layout[1:]:
            if kind == "reply":
                t = end
            else:
                t = _boundary(times.get(kind, ()), prev, end)
            phases[name] = t - prev
            prev = t
        spans.append(PhaseSpan(tid, is_crt, start, end, phases,
                               retries=max(len(submits) - 1, 0),
                               events=len(events), partial=partial))
    spans.sort(key=lambda s: s.start)
    return spans


def phase_breakdown(spans: Iterable[PhaseSpan], crt: Optional[bool] = None) -> List[Dict]:
    """Reduce spans to per-phase rows (mean/p50/p99), Tables 3/4 style.

    Partial spans (truncated submit..reply) are excluded — their phases are
    best-effort and would skew the telescoping durations.
    """
    selected = [s for s in spans
                if not s.partial and (crt is None or s.is_crt == crt)]
    if not selected:
        return []
    order: List[str] = []
    for span in selected:
        for name in span.phases:
            if name not in order:
                order.append(name)
    rows = []
    for name in order:
        values = [s.phases[name] for s in selected if name in s.phases]
        rows.append({
            "phase": name,
            "count": len(values),
            "mean_ms": sum(values) / len(values),
            "p50_ms": percentile(values, 50, interpolate=True),
            "p99_ms": percentile(values, 99, interpolate=True),
        })
    totals = [s.total for s in selected]
    rows.append({
        "phase": "total",
        "count": len(totals),
        "mean_ms": sum(totals) / len(totals),
        "p50_ms": percentile(totals, 50, interpolate=True),
        "p99_ms": percentile(totals, 99, interpolate=True),
    })
    return rows
