"""Live probes: periodic sampling of internal state into time series.

A :class:`ProbeRunner` owns a set of named probe callables and a kernel
timer (:meth:`repro.sim.kernel.Simulator.every`); each tick it appends one
``(virtual_time, value)`` sample per probe into the attached registry's
series.  Probes observe state the end-to-end metrics cannot see — how the
dclocks stretch, how deep the pending-CRT and wait queues run, how far the
PCT watermark lags, how many messages are in flight — which is exactly the
internal behaviour Figs 9/10 of the paper reason about.

``standard_probes`` builds the probe set for any system under test by duck
typing: DAST exposes everything; the baselines contribute whatever subset
they have (network in-flight, executed counts).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.registry import MetricsRegistry

__all__ = ["ProbeRunner", "standard_probes"]


class ProbeRunner:
    """Samples registered probes into ``registry`` every ``interval`` ms."""

    def __init__(self, sim, registry: MetricsRegistry, interval: float = 50.0):
        if interval <= 0:
            raise ValueError(f"probe interval must be positive, got {interval}")
        self.sim = sim
        self.registry = registry
        self.interval = interval
        self.probes: List[Tuple[str, Callable[[], float]]] = []
        self.ticks = 0
        self._proc = None

    def add(self, name: str, fn: Callable[[], float]) -> "ProbeRunner":
        self.probes.append((name, fn))
        return self

    def start(self) -> None:
        if self._proc is None:
            self._proc = self.sim.every(self.interval, self.tick, name="obs.probes")

    def stop(self) -> None:
        if self._proc is not None:
            self._proc.interrupt()
            self._proc = None

    def tick(self) -> None:
        """Take one sample of every probe (also usable manually in tests)."""
        self.ticks += 1
        now = self.sim.now
        for name, fn in self.probes:
            try:
                value = fn()
            except Exception:  # a probe must never kill the simulation
                continue
            if value is None:
                continue
            self.registry.timeseries(name).append(now, float(value))


def standard_probes(system) -> List[Tuple[str, Callable[[], float]]]:
    """The default probe set for a system under test (DAST or baseline)."""
    probes: List[Tuple[str, Callable[[], float]]] = []
    nodes: Dict[str, object] = getattr(system, "nodes", {})
    network = getattr(system, "network", None)

    dast_nodes = [n for n in nodes.values() if hasattr(n, "dclock")]
    if dast_nodes:
        probes.append((
            "stretch_count",
            lambda ns=dast_nodes: sum(n.dclock.stretch_count for n in ns),
        ))
        probes.append((
            "waitq_depth",
            lambda ns=dast_nodes: sum(len(n.wait_q) for n in ns if hasattr(n, "wait_q")),
        ))
        probes.append((
            "readyq_depth",
            lambda ns=dast_nodes: sum(len(n.ready_q) for n in ns if hasattr(n, "ready_q")),
        ))
        probes.append(("pct_lag_ms", lambda ns=dast_nodes: _pct_lag(ns)))

    managers = list(getattr(system, "managers", {}).values())
    if managers:
        probes.append((
            "pending_crts",
            lambda ms=managers: sum(len(m.pending) for m in ms),
        ))

    if network is not None and hasattr(network, "stats"):
        probes.append(("net_inflight", lambda nw=network: nw.stats.in_flight))
        probes.append(("net_sent", lambda nw=network: nw.stats.messages_sent))
        probes.append(("net_bytes", lambda nw=network: nw.stats.bytes_sent))

    # When a chaos plan is (or gets) installed, sample how many of its fault
    # events have fired — lines probe timeseries up against fault times.
    probes.append((
        "chaos_faults",
        lambda s=system: (
            len(s.chaos.applied) if getattr(s, "chaos", None) is not None else None
        ),
    ))

    for host, node in sorted(nodes.items()):
        if hasattr(node, "executed_log"):
            probes.append((
                f"executed.{host}", lambda n=node: len(n.executed_log)
            ))
    return probes


def _pct_lag(nodes) -> Optional[float]:
    """Worst-case PCT watermark lag across nodes (ms).

    A node may execute a transaction at timestamp ``ts`` only once every
    intra-region member's reported clock passed ``ts``; the watermark is
    therefore the *minimum* of the node's ``max_ts`` table, and its lag is
    how far that sits behind the node's own calibrated physical clock.
    """
    worst = None
    for node in nodes:
        table = getattr(node, "max_ts", None)
        if not table:
            continue
        watermark = min(table.values())
        lag = node.dclock.physical() - watermark.time
        if worst is None or lag > worst:
            worst = lag
    return worst
