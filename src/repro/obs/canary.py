"""Golden-trace canary: capture pinned scenarios, replay, diff, gate CI.

A **golden** is the full deterministic signature of a pinned scenario run:
the sha256 digest of its causal trace (every root span, hop, and phase
mark, canonically serialized), the sha256 digest of the **wire message
stream** (every delivered frame as a ``(time, src, dst, type, size)``
tuple, digested as a sorted multiset so it is invariant under same-instant
scheduling order), the summary row, the critical-path attribution table,
and per-type message counts.  Both digests are **id-free**: traces sort by
``(t0, client)`` and span ids are renumbered per trace, so the signature
depends only on observable behaviour, never on allocation order.
:func:`capture` produces a golden document for the pinned
:data:`SCENARIOS`; :func:`compare` diffs a candidate capture against it:

* **exact match** — the trace digests are byte-identical, so the candidate
  build is behaviour-preserving for that scenario; nothing else to check;
* otherwise **tolerance bands** — each metric in :data:`BANDS` may move by
  ``max(rel * |golden|, abs_floor)``; anything beyond is a violation.  A
  latency violation names the **offending hop**: the critical-path segment
  whose per-transaction mean grew the most, plus a one-line ``repro
  trace`` command that reproduces the regression locally.

The CI ``canary`` job captures goldens on the base ref and compares the PR
branch's capture, uploading the worst scenario's Chrome trace on failure.
Everything here runs on virtual time inside the simulator; wall-clock
never enters a golden, so captures are machine-independent.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.fleet.spec import TrialSpec, canonical_json, code_version

__all__ = [
    "CANARY_SCHEMA",
    "SCENARIOS",
    "BANDS",
    "run_scenario",
    "wire_digest",
    "capture_scenario",
    "capture",
    "compare",
    "render_report",
    "scenario_by_label",
    "repro_command",
]

CANARY_SCHEMA = "repro.canary/1"

# Pinned scenario set: small (≈1.4s measured window) but covering the CRT
# cross-region path (tpcc), a CRT-heavy mix (payment 40%), a skewed
# contention profile (tpca zipf), and the open-loop arrival engine with a
# binding in-flight cap (queue metrics + arrival-anchored roots).  Labels
# are the golden-document keys — renaming one orphans its golden.
SCENARIOS: Tuple[TrialSpec, ...] = (
    TrialSpec(system="dast", workload="tpcc",
              duration_ms=2000.0, warmup_ms=400.0, cooldown_ms=200.0,
              seed=1, label="dast-tpcc"),
    TrialSpec(system="dast", workload="payment",
              workload_params={"crt_ratio": 0.4},
              duration_ms=2000.0, warmup_ms=400.0, cooldown_ms=200.0,
              seed=2, label="dast-payment40"),
    TrialSpec(system="dast", workload="tpca",
              workload_params={"theta": 0.9},
              duration_ms=2000.0, warmup_ms=400.0, cooldown_ms=200.0,
              seed=3, label="dast-tpca-zipf"),
    TrialSpec(system="dast", workload="ycsb",
              workload_params={"theta": 0.7, "crt_ratio": 0.1},
              duration_ms=1200.0, warmup_ms=300.0, cooldown_ms=150.0,
              seed=4,
              open_loop={"users_per_region": 300, "txn_per_user_s": 2.0,
                         "model": "mmpp", "burst_mult": 4.0,
                         "max_inflight_per_region": 16},
              label="dast-openloop"),
)

# metric -> (relative tolerance, absolute floor).  A candidate value v
# violates when |v - golden| > max(rel * |golden|, floor); the floor keeps
# near-zero metrics from tripping on noise.  rel=0.10 means the acceptance
# scenario — an injected +20% CRT-p99 — fails loudly.
BANDS: Dict[str, Tuple[float, float]] = {
    "crt_p99_ms": (0.10, 1.0),
    "crt_p50_ms": (0.10, 1.0),
    "irt_p99_ms": (0.10, 1.0),
    "irt_p50_ms": (0.10, 0.5),
    "throughput_tps": (0.10, 2.0),
    "abort_rate": (0.0, 0.02),
    "msgs_total": (0.10, 50.0),
    "bytes_total": (0.10, 5000.0),
    # Open-loop rows only (closed-loop rows lack the keys, so the band is
    # skipped there): service-time tail and client-side queueing tail.
    "irt_p99_svc_ms": (0.10, 1.0),
    "queue_p99_ms": (0.10, 0.5),
}


def scenario_by_label(label: str) -> TrialSpec:
    for spec in SCENARIOS:
        if spec.label == label:
            return spec
    raise KeyError(f"unknown canary scenario {label!r}; "
                   f"pinned: {[s.label for s in SCENARIOS]}")


def run_scenario(spec: TrialSpec, timing_override: Optional[Mapping] = None):
    """Run one pinned scenario with causal tracing attached.

    ``timing_override`` merges extra timing fields into the spec — the
    hook canary tests use to inject a deliberate regression (e.g. a fatter
    cross-region RTT) and prove the gate trips.
    """
    from repro.bench.harness import run_trial

    if timing_override:
        merged = dict(spec.timing)
        merged.update(timing_override)
        spec = replace(spec, timing=merged)
    trial = spec.to_trial()
    trial.obs_causal = True
    trial.obs_wire = True
    return run_trial(trial)


def _hop_sort_key(h) -> tuple:
    return (h.t_send, h.src, h.dst, h.method, h.status, h.size,
            h.t_recv is None, h.t_recv or 0.0, h.queue_ms, h.service_ms)


def _serialize_traces(traces: Mapping) -> List[Dict]:
    """Canonical, id-free form of a trace set.

    Trace ids and span ids are allocation-order artifacts: two runs that
    behave identically may hand them out differently (e.g. a parallel
    kernel interleaving transaction starts across regions).  The golden
    digest must not see that, so traces sort by ``(t0, client)`` — unique
    per run, a client submits one transaction at a time — span ids are
    renumbered per trace (root = 0, hops in canonical hop order), parent
    pointers are remapped through the same table (dangling parents become
    -1, preserving the orphan signal), and hops/marks sort by their
    observable fields.
    """
    out = []
    for trace in sorted(traces.values(), key=lambda t: (t.root.t0, t.root.client)):
        root = trace.root.to_dict()
        del root["span_id"], root["trace_id"]
        hops = sorted(trace.hops, key=_hop_sort_key)
        renumber = {trace.root.span_id: 0}
        for n, h in enumerate(hops, start=1):
            renumber[h.span_id] = n
        hop_dicts = []
        for h in hops:
            d = h.to_dict()
            del d["trace_id"]
            d["span_id"] = renumber[h.span_id]
            d["parent_id"] = (None if h.parent_id is None
                              else renumber.get(h.parent_id, -1))
            hop_dicts.append(d)
        out.append({
            "root": root,
            "hops": hop_dicts,
            "marks": sorted([t, host, kind] for t, host, kind in trace.marks),
        })
    return out


def wire_digest(wire_log) -> Optional[str]:
    """Digest of the delivered-frame multiset, or None when not captured.

    Sorted before hashing: the *set* of frames and their virtual-time
    stamps is the invariant; the append order of same-instant frames is
    not (the threaded kernel interleaves appends across partitions).
    """
    if wire_log is None:
        return None
    frames = sorted([t, src, dst, kind, size]
                    for t, src, dst, kind, size in wire_log)
    return hashlib.sha256(canonical_json(frames).encode()).hexdigest()


def capture_scenario(result) -> Dict:
    """Reduce one traced TrialResult to its golden signature."""
    from repro.obs.critical_path import attribution

    bundle = result.obs
    traces = bundle.traces()
    blob = canonical_json(_serialize_traces(traces)).encode()
    table = attribution(traces.values())
    hop_rows = [
        {"segment": r["segment"], "count": r["count"],
         "total_ms": round(r["total_ms"], 6), "mean_ms": round(r["mean_ms"], 6),
         "p99_ms": round(r["p99_ms"], 6), "share": round(r["share"], 6)}
        for r in table["rows"]
    ]
    stats = result.system.network.stats
    return {
        "trace_digest": hashlib.sha256(blob).hexdigest(),
        "wire_digest": wire_digest(getattr(result.system.network, "wire_log", None)),
        "traced_txns": len(traces),
        "row": result.summary.as_row(),
        "hops": hop_rows,
        "coverage": table["coverage"],
        "msgs_by_type": dict(sorted(stats.per_type_sent.items())),
        "trace_bytes_sent": stats.trace_bytes_sent,
    }


def _seed_band(base_seed: int, seeds: int, rows: List[Mapping]) -> Dict:
    """Per-metric distribution over the sibling-seed runs."""
    metrics: Dict[str, Dict] = {}
    for metric in BANDS:
        values = [r.get(metric) for r in rows]
        values = [v for v in values if isinstance(v, (int, float))]
        if not values:
            continue
        metrics[metric] = {
            "mean": sum(values) / len(values),
            "min": min(values),
            "max": max(values),
        }
    return {"seeds": list(range(base_seed, base_seed + seeds)),
            "metrics": metrics}


def capture(specs: Iterable[TrialSpec] = SCENARIOS,
            timing_override: Optional[Mapping] = None,
            progress=None, seeds: int = 1) -> Dict:
    """Run every scenario and assemble the golden document.

    ``seeds > 1`` additionally runs each scenario at the sibling seeds
    ``seed+1 .. seed+N-1`` and stores a per-metric distribution
    (``seed_band``): min/max/mean across seeds.  :func:`compare` then
    accepts a candidate metric anywhere inside the *observed seed range*
    plus the usual tolerance slack — a distribution-level band that
    separates genuine regressions from seed-to-seed variance.  The trace
    digest (exact-match fast path) always comes from the base seed, so a
    single-seed candidate still compares exactly against a multi-seed
    golden.
    """
    scenarios = {}
    for spec in specs:
        if progress is not None:
            progress(f"[canary] capture {spec.label} ...")
        result = run_scenario(spec, timing_override=timing_override)
        entry = capture_scenario(result)
        if seeds > 1:
            rows: List[Mapping] = [entry["row"]]
            for k in range(1, seeds):
                sibling = replace(spec, seed=spec.seed + k)
                if progress is not None:
                    progress(f"[canary] capture {spec.label} "
                             f"seed {sibling.seed} ...")
                sib_result = run_scenario(sibling,
                                          timing_override=timing_override)
                rows.append(capture_scenario(sib_result)["row"])
            entry["seed_band"] = _seed_band(spec.seed, seeds, rows)
        scenarios[spec.label] = entry
    doc = {
        "schema": CANARY_SCHEMA,
        "code_version": code_version(),
        "scenarios": scenarios,
    }
    if seeds > 1:
        doc["seeds"] = seeds
    return doc


def repro_command(spec: TrialSpec) -> str:
    """A copy-pasteable ``repro trace`` invocation for one scenario."""
    parts = [
        "python -m repro trace",
        f"--system {spec.system}",
        f"--workload {spec.workload}",
        f"--regions {spec.num_regions}",
        f"--shards-per-region {spec.shards_per_region}",
        f"--clients {spec.clients_per_region}",
        f"--duration-ms {spec.duration_ms:g}",
        f"--seed {spec.seed}",
    ]
    params = dict(spec.workload_params)
    if "theta" in params:
        parts.append(f"--theta {params['theta']:g}")
    if "crt_ratio" in params:
        parts.append(f"--crt-ratio {params['crt_ratio']:g}")
    return " ".join(parts)


def _offending_hop(golden_hops: List[Dict], candidate_hops: List[Dict]) -> Optional[Dict]:
    """The critical-path segment whose per-txn mean regressed the most."""
    gold = {r["segment"]: r for r in golden_hops}
    cand = {r["segment"]: r for r in candidate_hops}
    worst = None
    for name in set(gold) | set(cand):
        g_mean = gold.get(name, {}).get("mean_ms", 0.0)
        c_mean = cand.get(name, {}).get("mean_ms", 0.0)
        delta = c_mean - g_mean
        if worst is None or delta > worst["delta_ms"]:
            worst = {"segment": name, "golden_mean_ms": g_mean,
                     "candidate_mean_ms": c_mean, "delta_ms": delta}
    return worst


def _band_violations(golden: Mapping, candidate: Mapping,
                     tolerance: Optional[float]) -> List[Dict]:
    out = []
    g_row, c_row = golden["row"], candidate["row"]
    # Multi-seed goldens (capture --seeds N) carry per-metric
    # distributions: the acceptance interval is the observed cross-seed
    # range widened by the tolerance slack, so a candidate is only flagged
    # when it falls outside what seed variance alone produces.
    dist_metrics = (golden.get("seed_band") or {}).get("metrics", {})
    for metric, (rel, floor) in BANDS.items():
        c = c_row.get(metric)
        if not isinstance(c, (int, float)):
            continue
        rel_used = tolerance if tolerance is not None else rel
        dist = dist_metrics.get(metric)
        if dist is not None:
            slack = max(rel_used * abs(dist["mean"]), floor)
            if not (dist["min"] - slack <= c <= dist["max"] + slack):
                out.append({
                    "metric": metric, "golden": dist["mean"], "candidate": c,
                    "delta": c - dist["mean"], "band": slack,
                    "seed_range": [dist["min"], dist["max"]],
                })
            continue
        g = g_row.get(metric)
        if not isinstance(g, (int, float)):
            continue
        band = max(rel_used * abs(g), floor)
        if abs(c - g) > band:
            out.append({
                "metric": metric, "golden": g, "candidate": c,
                "delta": c - g, "band": band,
            })
    return out


def compare(golden: Mapping, candidate: Mapping,
            tolerance: Optional[float] = None) -> Dict:
    """Diff a candidate capture against a golden document.

    Returns ``{"ok": bool, "scenarios": {label: {...}}}``; a scenario is an
    ``exact`` pass when digests match byte-for-byte (determinism-preserving
    change), a ``band`` pass when only within-tolerance drift remains, and
    a failure otherwise — carrying the violations, the offending hop, and
    a minimal repro command line.
    """
    report: Dict = {"ok": True, "scenarios": {}}
    for schema_doc, name in ((golden, "golden"), (candidate, "candidate")):
        if schema_doc.get("schema") != CANARY_SCHEMA:
            raise ValueError(f"{name} document has schema "
                             f"{schema_doc.get('schema')!r}, expected {CANARY_SCHEMA!r}")
    for label, g in golden["scenarios"].items():
        c = candidate["scenarios"].get(label)
        entry: Dict = {"status": "exact", "violations": []}
        if c is None:
            entry.update(status="missing",
                         violations=[{"metric": "scenario", "message":
                                      "candidate capture lacks this scenario"}])
            report["scenarios"][label] = entry
            report["ok"] = False
            continue
        # Wire digests participate in the exact-match check only when both
        # documents carry one (goldens captured before the wire stream
        # existed simply lack the key).
        g_wire, c_wire = g.get("wire_digest"), c.get("wire_digest")
        wire_ok = g_wire is None or c_wire is None or g_wire == c_wire
        if c["trace_digest"] == g["trace_digest"] and wire_ok:
            report["scenarios"][label] = entry
            continue
        violations = _band_violations(g, c, tolerance)
        entry["status"] = "band" if not violations else "fail"
        entry["violations"] = violations
        entry["trace_digest"] = {"golden": g["trace_digest"],
                                 "candidate": c["trace_digest"]}
        if not wire_ok:
            entry["wire_digest"] = {"golden": g_wire, "candidate": c_wire}
        if violations:
            entry["offending_hop"] = _offending_hop(g["hops"], c["hops"])
            try:
                entry["repro"] = repro_command(scenario_by_label(label))
            except KeyError:
                entry["repro"] = None
            report["ok"] = False
        report["scenarios"][label] = entry
    extra = sorted(set(candidate["scenarios"]) - set(golden["scenarios"]))
    if extra:
        report["new_scenarios"] = extra  # informational, not a failure
    return report


def render_report(report: Mapping) -> str:
    """Human-readable canary verdict for CI logs."""
    lines = ["== canary =="]
    for label, entry in report["scenarios"].items():
        status = entry["status"]
        if status == "exact":
            lines.append(f"  {label}: PASS (exact trace match)")
            continue
        if status == "band":
            lines.append(f"  {label}: PASS (within tolerance bands; "
                         f"trace digest moved)")
            continue
        lines.append(f"  {label}: FAIL ({status})")
        for v in entry.get("violations", ()):
            if "message" in v:
                lines.append(f"    - {v['metric']}: {v['message']}")
            else:
                lines.append(
                    f"    - {v['metric']}: golden={v['golden']:.3f} "
                    f"candidate={v['candidate']:.3f} delta={v['delta']:+.3f} "
                    f"band=±{v['band']:.3f}")
        hop = entry.get("offending_hop")
        if hop is not None:
            lines.append(
                f"    offending hop: {hop['segment']} "
                f"(mean {hop['golden_mean_ms']:.3f} -> "
                f"{hop['candidate_mean_ms']:.3f} ms, "
                f"{hop['delta_ms']:+.3f} ms/txn)")
        if entry.get("repro"):
            lines.append(f"    repro: {entry['repro']}")
    lines.append("verdict: " + ("OK" if report["ok"] else "FAIL"))
    return "\n".join(lines)
