"""Critical-path analysis over causal transaction traces.

Given a :class:`repro.obs.trace.TxnTrace` (root span + message hops +
phase marks), :func:`critical_path` reconstructs the chain of hops and
host-side work that determined the client-observed latency, and attributes
every millisecond of it to a **named segment**:

* ``net:<method> (<link>)`` — wire time of the hop that carried the path,
  with ``link`` one of ``local``/``intra``/``cross``;
* ``cpu-queue@<role>`` — receiver busy-wait before the handler ran;
* ``service@<role>`` — modelled handler CPU time;
* ``host:<phase>@<role>`` — host-side gap ending at a protocol phase mark
  (e.g. ``host:ready@node`` is the wait for commit + PCT clocks to pass
  the anticipated timestamp);
* ``host:emit:<method>@<role>`` — host-side gap before the next hop on the
  path was emitted (coordinator think time, batching waits);
* ``host:unattributed@<role>`` — residual gap no mark or hop explains.

The walk runs **backwards** from the client reply: at position
``(host, t)`` it picks the delivered hop into ``host`` whose handler
dispatch completed latest but not after ``t`` and whose send predates
``t``; the gap between that dispatch and ``t`` is host-side work, split at
this transaction's phase marks on that host.  Each step strictly decreases
``t`` (to the chosen hop's send time), so the walk terminates.  Segment
durations telescope: they cover ``[t0, t1]`` exactly, and ``coverage``
reports the fraction *not* in ``host:unattributed`` — the analyzer's
honesty metric (the CLI asserts it stays >= 0.95 on CRT paths).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.bench.metrics import percentile
from repro.obs.trace import HopSpan, TxnTrace

__all__ = [
    "Segment",
    "PathResult",
    "critical_path",
    "attribution",
    "slowest",
    "render_attribution",
    "render_exemplar",
]

_EPS = 1e-9


def _role(host: str) -> str:
    """Host role from the topology naming scheme (r0.n1 / r0.mgr / r0.c3)."""
    tail = host.split(".", 1)[-1]
    if tail.startswith("mgr"):
        return "mgr"
    if tail.startswith("n"):
        return "node"
    if tail.startswith("c"):
        return "client"
    return "host"


def _link(src: str, dst: str) -> str:
    if src == dst:
        return "local"
    if src.split(".", 1)[0] == dst.split(".", 1)[0]:
        return "intra"
    return "cross"


class Segment:
    """One attributed slice of a transaction's end-to-end latency."""

    __slots__ = ("name", "kind", "start", "end", "host")

    def __init__(self, name: str, kind: str, start: float, end: float, host: str):
        self.name = name
        self.kind = kind  # net | queue | service | host | unattributed
        self.start = start
        self.end = end
        self.host = host

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict:
        return {"name": self.name, "kind": self.kind, "start": self.start,
                "end": self.end, "duration": self.duration, "host": self.host}

    def __repr__(self) -> str:
        return f"Segment({self.name} [{self.start:.2f},{self.end:.2f}] @{self.host})"


class PathResult:
    """The critical path of one transaction."""

    __slots__ = ("trace_id", "total", "segments", "coverage", "hops")

    def __init__(self, trace_id: str, total: float, segments: List[Segment],
                 coverage: float, hops: int):
        self.trace_id = trace_id
        self.total = total
        self.segments = segments  # sorted by start; telescopes over [t0, t1]
        self.coverage = coverage  # fraction of total not host:unattributed
        self.hops = hops

    def by_name(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for seg in self.segments:
            out[seg.name] = out.get(seg.name, 0.0) + seg.duration
        return out


def _gap_segments(host: str, lo: float, hi: float,
                  marks: List[Tuple[float, str]],
                  out_method: Optional[str]) -> List[Segment]:
    """Split a host-side gap ``[lo, hi]`` at this txn's phase marks on host.

    A sub-gap ending at a mark is named after the phase the host was working
    towards; the trailing sub-gap (after the last mark, before the next hop
    on the path left) is the emit wait.  With no marks in range the whole
    gap is the emit wait — or unattributed when the walk found no out-hop.
    """
    if hi - lo <= _EPS:
        return []
    role = _role(host)
    inside = sorted((t, kind) for t, kind in marks if lo + _EPS < t <= hi + _EPS)
    segments: List[Segment] = []
    prev = lo
    for t, kind in inside:
        t = min(t, hi)
        if t - prev > _EPS:
            segments.append(Segment(f"host:{kind}@{role}", "host", prev, t, host))
            prev = t
    if hi - prev > _EPS:
        if out_method is not None:
            segments.append(Segment(f"host:emit:{out_method}@{role}", "host",
                                    prev, hi, host))
        else:
            segments.append(Segment(f"host:unattributed@{role}", "unattributed",
                                    prev, hi, host))
    return segments


def critical_path(trace: TxnTrace) -> Optional[PathResult]:
    """Reconstruct the latency-determining chain for a completed trace."""
    root = trace.root
    if root.t1 is None:
        return None
    t0, t1 = root.t0, root.t1
    total = t1 - t0
    # Marks grouped by host (phase marks only carry time/host/kind).
    # ``arrival`` marks are kept aside: an open-loop root is anchored at the
    # *intended* arrival time while the arrival mark sits at the launch
    # instant, and the gap between the two is client-side queueing — it gets
    # its own named segment below instead of a generic host:arrival split.
    marks_by_host: Dict[str, List[Tuple[float, str]]] = {}
    arrival_marks: List[float] = []
    for t, host, kind in trace.marks:
        if kind == "arrival":
            arrival_marks.append(t)
            continue
        marks_by_host.setdefault(host, []).append((t, kind))
    delivered = [h for h in trace.hops
                 if h.status == "delivered" and h.t_recv is not None]
    by_dst: Dict[str, List[HopSpan]] = {}
    for h in delivered:
        by_dst.setdefault(h.dst, []).append(h)

    segments: List[Segment] = []
    pos_host, pos_t = root.client, t1
    out_method: Optional[str] = None  # method of the hop that left pos_host
    hops_on_path = 0
    for _ in range(len(delivered) + 2):
        best: Optional[HopSpan] = None
        best_key = None
        for h in by_dst.get(pos_host, ()):
            d = h.dispatch
            if d > pos_t + _EPS or h.t_send < t0 - _EPS or h.t_send >= pos_t - _EPS:
                continue
            key = (d, h.span_id)
            if best_key is None or key > best_key:
                best, best_key = h, key
        if best is None:
            break
        hops_on_path += 1
        # Host-side gap between this hop's handler finishing and the moment
        # the path left this host (or the reply resolved).
        segments.extend(_gap_segments(pos_host, best.dispatch, pos_t,
                                      marks_by_host.get(pos_host, ()),
                                      out_method))
        role = _role(best.dst)
        t_recv = best.t_recv
        svc_start = t_recv + best.queue_ms
        if best.service_ms > _EPS:
            segments.append(Segment(f"service@{role}", "service",
                                    svc_start, best.dispatch, best.dst))
        if best.queue_ms > _EPS:
            segments.append(Segment(f"cpu-queue@{role}", "queue",
                                    t_recv, svc_start, best.dst))
        if t_recv - best.t_send > _EPS:
            link = _link(best.src, best.dst)
            segments.append(Segment(f"net:{best.method} ({link})", "net",
                                    best.t_send, t_recv, best.src))
        pos_host, pos_t = best.src, best.t_send
        out_method = best.method
    # Open-loop roots: the stretch from the intended arrival (t0) to the
    # launch instant (the arrival mark) is attributed client-side queueing,
    # not unexplained time — so coverage stays honest at 100% for a txn
    # that merely waited in the client backlog.
    residual_lo = t0
    if arrival_marks and pos_host == root.client:
        launch = max((t for t in arrival_marks if t <= pos_t + _EPS),
                     default=None)
        if launch is not None and launch - t0 > _EPS:
            segments.append(Segment("client-queue@client", "queue",
                                    t0, launch, pos_host))
            residual_lo = launch
    # Residual gap back to the submit instant (client think/emit, or an
    # unattributed stretch when the chain broke, e.g. a retried txn whose
    # first attempt's hops were dropped).
    segments.extend(_gap_segments(pos_host, residual_lo, pos_t,
                                  marks_by_host.get(pos_host, ()), out_method))
    segments.sort(key=lambda s: (s.start, s.end))
    unattributed = sum(s.duration for s in segments if s.kind == "unattributed")
    if total > _EPS:
        covered = sum(s.duration for s in segments)
        # Anything the segments fail to tile (should be ~0) counts against
        # coverage too, so the metric cannot flatter a buggy walk.
        untiled = max(total - covered, 0.0)
        coverage = max(0.0, 1.0 - (unattributed + untiled) / total)
    else:
        coverage = 1.0
    return PathResult(root.trace_id, total, segments, coverage, hops_on_path)


def attribution(traces: Iterable[TxnTrace],
                crt: Optional[bool] = None) -> Dict:
    """Aggregate critical paths into a "where does the p99 live" table.

    Returns ``{"rows": [...], "txns": n, "total_ms": .., "coverage": ..,
    "tail_cut_ms": ..}``.  Each row carries per-segment-name count / total /
    mean / p50 / p99 of the per-transaction contribution, its ``share`` of
    all attributed time, and ``tail_share`` — its share within the slowest
    txns at/above the p99 end-to-end latency (the paper's tail question).
    """
    per_txn: List[Tuple[float, Dict[str, float], float]] = []
    for trace in traces:
        if not trace.complete:
            continue
        if crt is not None and bool(trace.root.is_crt) != crt:
            continue
        result = critical_path(trace)
        if result is None:
            continue
        per_txn.append((result.total, result.by_name(), result.coverage))
    if not per_txn:
        return {"rows": [], "txns": 0, "total_ms": 0.0, "coverage": 1.0,
                "tail_cut_ms": 0.0}
    totals = [t for t, _, _ in per_txn]
    tail_cut = percentile(totals, 99, interpolate=True)
    tail = [(t, names) for t, names, _ in per_txn if t >= tail_cut - _EPS]
    grand = sum(sum(names.values()) for _, names, _ in per_txn)
    tail_grand = sum(sum(names.values()) for _, names in tail)
    by_name: Dict[str, List[float]] = {}
    tail_by_name: Dict[str, float] = {}
    for _, names, _ in per_txn:
        for name, ms in names.items():
            by_name.setdefault(name, []).append(ms)
    for _, names in tail:
        for name, ms in names.items():
            tail_by_name[name] = tail_by_name.get(name, 0.0) + ms
    rows = []
    for name, values in by_name.items():
        total_ms = sum(values)
        rows.append({
            "segment": name,
            "count": len(values),
            "total_ms": total_ms,
            "mean_ms": total_ms / len(values),
            "p50_ms": percentile(values, 50, interpolate=True),
            "p99_ms": percentile(values, 99, interpolate=True),
            "share": total_ms / grand if grand > _EPS else 0.0,
            "tail_share": (tail_by_name.get(name, 0.0) / tail_grand
                           if tail_grand > _EPS else 0.0),
        })
    rows.sort(key=lambda r: r["total_ms"], reverse=True)
    return {
        "rows": rows,
        "txns": len(per_txn),
        "total_ms": grand,
        "coverage": min(c for _, _, c in per_txn),
        "tail_cut_ms": tail_cut,
    }


def slowest(traces: Iterable[TxnTrace], k: int = 5,
            crt: Optional[bool] = None) -> List[Tuple[TxnTrace, PathResult]]:
    """Top-k slowest completed transactions with their critical paths."""
    scored = []
    for trace in traces:
        if not trace.complete:
            continue
        if crt is not None and bool(trace.root.is_crt) != crt:
            continue
        result = critical_path(trace)
        if result is not None:
            scored.append((trace, result))
    scored.sort(key=lambda pair: pair[1].total, reverse=True)
    return scored[:k]


def render_attribution(table: Dict, title: str = "critical-path attribution") -> str:
    """Plain-text attribution table (aligned columns, share-sorted)."""
    lines = [f"== {title} ==",
             f"txns={table['txns']}  attributed={table['total_ms']:.1f}ms  "
             f"min-coverage={table['coverage'] * 100:.1f}%  "
             f"tail-cut(p99)={table['tail_cut_ms']:.2f}ms"]
    if not table["rows"]:
        lines.append("(no completed transactions)")
        return "\n".join(lines)
    header = (f"{'segment':<38} {'count':>6} {'mean':>8} {'p50':>8} "
              f"{'p99':>8} {'share':>7} {'tail':>7}")
    lines.append(header)
    lines.append("-" * len(header))
    for row in table["rows"]:
        lines.append(
            f"{row['segment']:<38} {row['count']:>6} {row['mean_ms']:>8.3f} "
            f"{row['p50_ms']:>8.3f} {row['p99_ms']:>8.3f} "
            f"{row['share'] * 100:>6.1f}% {row['tail_share'] * 100:>6.1f}%"
        )
    return "\n".join(lines)


def render_exemplar(trace: TxnTrace, result: PathResult) -> str:
    """One slow transaction's critical path, segment by segment."""
    root = trace.root
    kind = "CRT" if root.is_crt else "IRT"
    lines = [f"-- {root.trace_id} ({kind}) total={result.total:.2f}ms "
             f"hops={result.hops} coverage={result.coverage * 100:.1f}% "
             f"client={root.client} retries={root.retries}"]
    for seg in result.segments:
        lines.append(f"   {seg.start:>9.2f} +{seg.duration:>7.3f}  {seg.name}")
    return "\n".join(lines)
