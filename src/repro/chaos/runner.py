"""Compile fault plans onto simulator timers and judge the outcome.

:class:`ChaosRunner` schedules every :class:`~repro.chaos.plan.FaultEvent`
of a plan as a kernel timer against a built system (DAST or any baseline —
the dispatch duck-types the system's fault surface).  Each applied fault is

* counted into the system's ``stats`` bag (``chaos_faults`` plus one
  per-kind counter), which live probes can sample,
* emitted as a ``chaos`` trace event when a tracer is attached, and
* recorded on :attr:`ChaosRunner.applied` with the apply-time result
  (e.g. the event returned by a replica re-add).

:func:`run_chaos_trial` is the push-button oracle: build a trial, install a
plan, run, drain, then audit — one-copy serializability for DAST, replica
digest agreement for the baselines — and fold everything into a
:class:`ChaosReport` whose text rendering is deterministic (same seed, same
bytes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.chaos.plan import FaultEvent, FaultPlan
from repro.errors import ConfigError

__all__ = ["ChaosRunner", "ChaosReport", "run_chaos_trial", "BENIGN_ABORT_REASONS"]

# Abort reasons a healthy run may legitimately produce: workload-level
# conditional aborts and client-visible timeouts.  Anything else — in
# particular any conflict-driven abort of a CRT — violates DAST's R2.
BENIGN_ABORT_REASONS = frozenset({"", "invalid item", "conditional abort"})


class ChaosRunner:
    """Installs one :class:`FaultPlan` onto a system's simulator."""

    def __init__(self, system, plan: FaultPlan, origin: Optional[float] = None):
        plan.validate()
        self.system = system
        self.plan = plan
        # Event times are relative to the origin instant (default: now).
        self.origin = system.sim.now if origin is None else origin
        self.applied: List[Tuple[float, FaultEvent, object]] = []
        self.installed = False

    # ------------------------------------------------------------------
    def install(self) -> "ChaosRunner":
        """Schedule every plan event; exposes the runner as ``system.chaos``."""
        if self.installed:
            raise ConfigError("plan already installed")
        self.installed = True
        self.system.chaos = self
        for event in self.plan.events:
            self.system.sim.schedule_at(self.origin + event.time, self._apply, event)
        return self

    # ------------------------------------------------------------------
    def _apply(self, event: FaultEvent) -> None:
        result = self._dispatch(event)
        self.applied.append((self.system.sim.now, event, result))
        stats = getattr(self.system, "stats", None)
        if stats is not None and hasattr(stats, "inc"):
            stats.inc("chaos_faults")
            stats.inc(f"chaos_{event.kind}")
        tracer = getattr(self.system, "tracer", None)
        if tracer is not None:
            tracer.emit(self.system.sim.now, "chaos", "chaos",
                        fault=event.kind, detail=dict(event.args))

    def _dispatch(self, event: FaultEvent):
        system, network, args = self.system, self.system.network, event.args
        kind = event.kind
        if kind == "crash_node":
            host = args["host"]
            if hasattr(system, "crash_node"):
                return system.crash_node(host, report=args.get("report", True))
            network.crash_host(host)
            node = getattr(system, "nodes", {}).get(host)
            if node is not None and hasattr(node, "stop"):
                node.stop()
            return None
        if kind == "readd_replica":
            if not hasattr(system, "add_replica"):
                raise ConfigError(f"{system.name}: readd_replica unsupported")
            return system.add_replica(args["region"], args["host"], args["shard"])
        if kind == "fail_manager":
            if not hasattr(system, "fail_manager"):
                raise ConfigError(f"{system.name}: fail_manager unsupported")
            return system.fail_manager(args["region"])
        if kind == "report_failure":
            manager = system.managers[args["region"]]
            return system.sim.spawn(
                manager.remove_nodes(list(args["hosts"])),
                name=f"chaos.report.{args['region']}",
            )
        if kind == "partition_hosts":
            return network.partition_hosts(args["a"], args["b"])
        if kind == "heal_hosts":
            return network.heal_hosts(args["a"], args["b"])
        if kind == "partition_oneway":
            return network.partition_hosts_oneway(args["src"], args["dst"])
        if kind == "heal_oneway":
            return network.heal_hosts_oneway(args["src"], args["dst"])
        if kind == "partition_regions":
            return network.partition_regions(args["r1"], args["r2"])
        if kind == "heal_regions":
            return network.heal_regions(args["r1"], args["r2"])
        if kind == "partition_regions_oneway":
            return network.partition_regions_oneway(args["src"], args["dst"])
        if kind == "heal_regions_oneway":
            return network.heal_regions_oneway(args["src"], args["dst"])
        if kind == "set_drop":
            network.drop_probability = args["probability"]
            return None
        if kind == "set_rtt":
            return network.set_cross_region_rtt(args["rtt"], args.get("r1"), args.get("r2"))
        if kind == "set_jitter":
            network.jitter = args["jitter"]
            return None
        if kind == "set_reorder":
            if args["spread"]:
                network.open_reorder_window(args["spread"])
            else:
                network.close_reorder_window()
            return None
        if kind == "set_duplicate":
            if args["probability"]:
                network.open_duplicate_window(args["probability"])
            else:
                network.close_duplicate_window()
            return None
        if kind == "clock_skew":
            return self._skew(args)
        raise ConfigError(f"unknown fault kind {kind!r}")  # unreachable after validate

    def _skew(self, args: Dict) -> int:
        host = args.get("host")
        if host is not None:
            source = self.system.clock_sources.get(host)
            if source is None:
                return 0
            source.adjust(args["delta"])
            return 1
        prefix = f"{args.get('region', '')}."
        if hasattr(self.system, "skew_clocks"):
            return self.system.skew_clocks(prefix, args["delta"])
        touched = 0
        for name, source in self.system.clock_sources.items():
            if name.startswith(prefix):
                source.adjust(args["delta"])
                touched += 1
        return touched


class ChaosReport:
    """Everything one chaos run produced, rendered deterministically."""

    def __init__(self, plan: FaultPlan, system_name: str, audit,
                 replica_mismatches: List[str], committed: int, aborted: int,
                 conflict_aborts: List[str], faults_applied: int):
        self.plan = plan
        self.system_name = system_name
        self.audit = audit  # AuditReport for DAST, None for baselines
        self.replica_mismatches = replica_mismatches
        self.committed = committed
        self.aborted = aborted
        self.conflict_aborts = conflict_aborts
        self.faults_applied = faults_applied

    @property
    def ok(self) -> bool:
        if self.audit is not None and not self.audit.ok:
            return False
        return not self.replica_mismatches and not self.conflict_aborts

    def to_text(self) -> str:
        lines = [self.plan.timeline(), ""]
        lines.append(f"system={self.system_name} faults_applied={self.faults_applied} "
                     f"committed={self.committed} aborted={self.aborted}")
        if self.audit is not None:
            lines.append(f"audit: {self.audit!r}")
        if self.replica_mismatches:
            lines.append("replica mismatches: " + "; ".join(self.replica_mismatches))
        if self.conflict_aborts:
            lines.append("conflict aborts: " + "; ".join(self.conflict_aborts))
        lines.append("verdict: " + ("OK" if self.ok else "FAIL"))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ChaosReport({self.system_name}, {'ok' if self.ok else 'FAIL'})"


def run_chaos_trial(
    plan: FaultPlan,
    system: str = "dast",
    workload: str = "tpca",
    num_regions: int = 2,
    shards_per_region: int = 1,
    clients_per_region: int = 3,
    duration_ms: float = 4000.0,
    drain_ms: float = 6000.0,
    seed: int = 1,
    crt_ratio: float = 0.2,
    request_timeout: float = 2000.0,
    obs: bool = False,
    batch_window: float = 0.0,
    parallel_regions: int = 0,
    parallel_backend: str = "auto",
) -> ChaosReport:
    """Run one fault-injected trial end to end and audit the outcome."""
    from repro.bench.harness import Trial, run_trial
    from repro.workloads.tpca import TpcaWorkload
    from repro.workloads.tpcc import PaymentOnlyWorkload, TpccWorkload

    factories = {
        "tpca": lambda topo: TpcaWorkload(topo, crt_ratio=crt_ratio),
        "tpcc": lambda topo: TpccWorkload(topo),
        "payment": lambda topo: PaymentOnlyWorkload(topo, crt_ratio=crt_ratio),
    }
    trial = Trial(
        system,
        factories[workload],
        num_regions=num_regions,
        shards_per_region=shards_per_region,
        clients_per_region=clients_per_region,
        duration_ms=duration_ms,
        seed=seed,
        fault_plan=plan,
        obs=obs,
        request_timeout=request_timeout,
        batch_window=batch_window,
        parallel_regions=parallel_regions,
        parallel_backend=parallel_backend,
    )
    result = run_trial(trial)
    result.drain(extra_ms=drain_ms)

    audit = None
    if system == "dast":
        from repro.bench.auditor import audit_dast_run

        audit = audit_dast_run(result.system)
    mismatches: List[str] = []
    for shard_id in result.system.topology.all_shards():
        digests = set(result.system.replicas_digest(shard_id))
        if len(digests) > 1:
            mismatches.append(f"{shard_id}: replica digests diverge")

    committed = sum(1 for r in result.recorder.results if r.committed)
    aborted = [r for r in result.recorder.results if not r.committed]
    conflicts = sorted(
        f"{r.txn_id}({'crt' if r.is_crt else 'irt'}): {r.abort_reason}"
        for r in aborted if r.abort_reason not in BENIGN_ABORT_REASONS
    )
    return ChaosReport(
        plan,
        system_name=system,
        audit=audit,
        replica_mismatches=mismatches,
        committed=committed,
        aborted=len(aborted),
        conflict_aborts=conflicts,
        faults_applied=len(getattr(result, "chaos").applied) if result.chaos else 0,
    )
