"""Seeded random fault-scenario generation.

``generate_plan(seed, ...)`` draws a handful of fault *clauses* — crash (+
optional replica re-add), manager failover, two-way or one-way region
partitions, drop bursts, latency spikes, jitter/reorder windows, clock-skew
ramps — and lowers them into one time-sorted :class:`FaultPlan`.  The same
seed always yields the same plan (the generator owns its own
``random.Random``; nothing else perturbs it).

Scenarios are constrained to be *recoverable*: every partition heals, every
degradation window closes, at most one replica per shard crashes, and each
region fails over at most once — so DAST must come out of any generated
plan serializable and with zero conflict aborts.  The knobs that can break
those guarantees deliberately (e.g. message duplication, which assumes an
exactly-once transport underneath the protocol stack) are opt-in via
:class:`ChaosProfile`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.chaos.plan import FaultPlan
from repro.config import Topology, TopologyConfig

__all__ = ["ChaosProfile", "generate_plan"]


@dataclass
class ChaosProfile:
    """Knobs bounding what a generated scenario may do."""

    min_clauses: int = 3
    max_clauses: int = 5
    # Window for fault activity, relative to plan start (virtual ms).  Heals
    # and restores always land inside it, leaving the tail for recovery.
    start: float = 500.0
    end: float = 3500.0
    max_partition_ms: float = 800.0
    max_window_ms: float = 900.0
    max_drop_probability: float = 0.08
    max_rtt_factor: float = 3.0
    max_jitter: float = 20.0
    max_reorder_spread: float = 25.0
    max_skew_ms: float = 120.0
    skew_ramp_steps: int = 3
    # Message duplication assumes protocol-level idempotence the DAST stack
    # does not promise (its transport is exactly-once, like TCP); keep it
    # out of default scenarios and opt in explicitly to stress it.
    allow_duplication: bool = False
    duplicate_probability: float = 0.05
    # Manager failover and replica re-add are DAST recovery paths; disable
    # for baselines, which only support the generic network/crash faults.
    allow_dast_faults: bool = True


def generate_plan(
    seed: int,
    num_regions: int = 2,
    shards_per_region: int = 1,
    replication: int = 3,
    cross_region_rtt: float = 100.0,
    profile: Optional[ChaosProfile] = None,
) -> FaultPlan:
    """Generate one deterministic, recoverable fault scenario."""
    profile = profile or ChaosProfile()
    rng = random.Random((seed << 16) ^ 0xC4A05)
    topo = Topology(TopologyConfig(
        num_regions=num_regions, shards_per_region=shards_per_region,
        replication=replication, clients_per_region=0,
    ))
    plan = FaultPlan(name=f"gen-{seed}", seed=seed)

    def pick_time(margin: float = 0.0) -> float:
        return round(rng.uniform(profile.start, profile.end - margin), 1)

    crashed_shards: set = set()
    failed_regions: set = set()
    partitioned_pairs: set = set()

    def clause_crash() -> None:
        candidates = [s for s in topo.all_shards() if s not in crashed_shards]
        if not candidates:
            return
        shard = rng.choice(candidates)
        crashed_shards.add(shard)
        region = topo.region_of_shard(shard)
        host = rng.choice(list(topo.replicas_of(shard)))
        t = pick_time(margin=profile.max_window_ms)
        plan.add(t, "crash_node", host=host)
        if rng.random() < 0.5:
            t_readd = round(t + rng.uniform(300.0, profile.max_window_ms), 1)
            if profile.allow_dast_faults:
                plan.add(t_readd, "readd_replica", region=region,
                         host=f"{host}x", shard=shard)

    def clause_failover() -> None:
        candidates = [r for r in topo.regions if r not in failed_regions]
        if not candidates:
            return
        region = rng.choice(candidates)
        failed_regions.add(region)
        plan.add(pick_time(), "fail_manager", region=region)

    def clause_partition() -> None:
        if num_regions < 2:
            return
        r1, r2 = rng.sample(topo.regions, 2)
        pair = tuple(sorted((r1, r2)))
        if pair in partitioned_pairs:
            return
        partitioned_pairs.add(pair)
        t = pick_time(margin=profile.max_partition_ms)
        d = round(rng.uniform(150.0, profile.max_partition_ms), 1)
        if rng.random() < 0.3:  # asymmetric: only one direction drops
            plan.add(t, "partition_regions_oneway", src=r1, dst=r2)
            plan.add(t + d, "heal_regions_oneway", src=r1, dst=r2)
        else:
            plan.add(t, "partition_regions", r1=r1, r2=r2)
            plan.add(t + d, "heal_regions", r1=r1, r2=r2)

    def clause_drop_burst() -> None:
        t = pick_time(margin=profile.max_window_ms)
        d = round(rng.uniform(200.0, profile.max_window_ms), 1)
        p = round(rng.uniform(0.01, profile.max_drop_probability), 3)
        plan.add(t, "set_drop", probability=p)
        plan.add(t + d, "set_drop", probability=0.0)

    def clause_latency_spike() -> None:
        t = pick_time(margin=profile.max_window_ms)
        d = round(rng.uniform(200.0, profile.max_window_ms), 1)
        rtt = round(cross_region_rtt * rng.uniform(1.5, profile.max_rtt_factor), 1)
        plan.add(t, "set_rtt", rtt=rtt)
        plan.add(t + d, "set_rtt", rtt=cross_region_rtt)

    def clause_gray_degradation() -> None:
        t = pick_time(margin=profile.max_window_ms)
        d = round(rng.uniform(200.0, profile.max_window_ms), 1)
        plan.add(t, "set_jitter", jitter=round(rng.uniform(5.0, profile.max_jitter), 1))
        plan.add(t, "set_reorder", spread=round(rng.uniform(5.0, profile.max_reorder_spread), 1))
        plan.add(t + d, "set_jitter", jitter=0.0)
        plan.add(t + d, "set_reorder", spread=0.0)

    def clause_skew_ramp() -> None:
        region = rng.choice(topo.regions)
        t = pick_time(margin=profile.max_window_ms)
        step = round(rng.uniform(10.0, profile.max_skew_ms / profile.skew_ramp_steps), 1)
        for i in range(profile.skew_ramp_steps):
            plan.add(round(t + i * 100.0, 1), "clock_skew", region=region, delta=step)

    def clause_duplication() -> None:
        t = pick_time(margin=profile.max_window_ms)
        d = round(rng.uniform(200.0, profile.max_window_ms), 1)
        plan.add(t, "set_duplicate", probability=profile.duplicate_probability)
        plan.add(t + d, "set_duplicate", probability=0.0)

    menu: List = [
        clause_crash, clause_failover, clause_partition, clause_drop_burst,
        clause_latency_spike, clause_gray_degradation, clause_skew_ramp,
    ]
    if not profile.allow_dast_faults:
        menu.remove(clause_failover)
    if profile.allow_duplication:
        menu.append(clause_duplication)

    n_clauses = rng.randint(profile.min_clauses, profile.max_clauses)
    for _ in range(n_clauses):
        rng.choice(menu)()
    return plan.validate()
