"""Delta-debugging shrinker: reduce a failing fault plan to a minimal one.

Classic ddmin (Zeller & Hildebrandt) over the plan's event list: repeatedly
try dropping chunks of events, keeping any candidate that still fails the
oracle, until no single event can be removed.  The oracle is an arbitrary
``is_failing(plan) -> bool`` callable — usually a closure over
:func:`repro.chaos.runner.run_chaos_trial` asserting ``not report.ok`` —
so the shrinker works for audit failures, conflict aborts, or any custom
predicate.

Runs are memoized on the candidate's canonical JSON, and ``max_runs``
bounds the total number of oracle invocations (each one is a full simulated
trial); on exhaustion the best reproducer found so far is returned.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.chaos.plan import FaultPlan

__all__ = ["ShrinkResult", "shrink_plan"]


class ShrinkResult:
    """The minimal failing plan plus bookkeeping about the search."""

    def __init__(self, plan: FaultPlan, runs: int, exhausted: bool):
        self.plan = plan
        self.runs = runs
        self.exhausted = exhausted  # True when max_runs stopped the search

    def __repr__(self) -> str:
        tail = ", budget exhausted" if self.exhausted else ""
        return f"ShrinkResult({len(self.plan)} events, {self.runs} runs{tail})"


def shrink_plan(
    plan: FaultPlan,
    is_failing: Callable[[FaultPlan], bool],
    max_runs: int = 64,
) -> ShrinkResult:
    """Minimize ``plan`` while ``is_failing`` stays true.

    ``plan`` itself must fail the oracle; otherwise it is returned as-is
    with zero runs recorded (nothing to shrink).
    """
    cache: Dict[str, bool] = {}
    runs = [0]
    exhausted = [False]

    def failing(candidate: FaultPlan) -> bool:
        key = candidate.to_json()
        if key in cache:
            return cache[key]
        if runs[0] >= max_runs:
            exhausted[0] = True
            return False  # treat as passing: keeps the current reproducer
        runs[0] += 1
        verdict = bool(is_failing(candidate))
        cache[key] = verdict
        return verdict

    if not failing(plan):
        return ShrinkResult(plan, runs[0], exhausted[0])

    indices: List[int] = list(range(len(plan.events)))
    granularity = 2
    while len(indices) >= 2 and not exhausted[0]:
        chunk = max(1, len(indices) // granularity)
        chunks = [indices[i:i + chunk] for i in range(0, len(indices), chunk)]
        reduced = False
        for piece in chunks:
            complement = [i for i in indices if i not in piece]
            if not complement:
                continue
            if failing(plan.subset(complement)):
                indices = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(indices):
                break  # 1-minimal: no single event can be dropped
            granularity = min(len(indices), granularity * 2)
    return ShrinkResult(plan.subset(indices), runs[0], exhausted[0])
