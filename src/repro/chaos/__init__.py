"""Deterministic chaos engineering: declarative fault plans, seeded scenario
generation, delta-debugging shrinking, and a push-button audit oracle.

See ``docs/CHAOS.md`` for the full tour.  Quick start::

    from repro.chaos import FaultPlan, generate_plan, run_chaos_trial

    plan = generate_plan(seed=7)            # or author one by hand:
    plan = FaultPlan(name="demo").add(1000, "crash_node", host="r0.n1") \\
                                 .add(2000, "fail_manager", region="r1")
    report = run_chaos_trial(plan, seed=7)
    assert report.ok, report.to_text()
"""

from repro.chaos.generator import ChaosProfile, generate_plan
from repro.chaos.parallel import run_scenarios_parallel
from repro.chaos.plan import FAULT_KINDS, FaultEvent, FaultPlan
from repro.chaos.runner import (
    BENIGN_ABORT_REASONS,
    ChaosReport,
    ChaosRunner,
    run_chaos_trial,
)
from repro.chaos.shrink import ShrinkResult, shrink_plan

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "ChaosProfile",
    "generate_plan",
    "BENIGN_ABORT_REASONS",
    "ChaosReport",
    "ChaosRunner",
    "run_chaos_trial",
    "run_scenarios_parallel",
    "ShrinkResult",
    "shrink_plan",
]
