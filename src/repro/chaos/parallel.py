"""Parallel chaos fuzzing: fan seeded scenarios over worker processes.

A chaos scenario is already fully serializable — a :class:`FaultPlan`
round-trips through JSON and every other trial knob is a plain value — so
``repro chaos --fuzz N --jobs J`` ships ``(seed, plan_json, trial_kwargs)``
to spawn-context workers and collects one compact result row per scenario.

Mirrors the :mod:`repro.fleet.executor` contract:

* rows come back in **scenario order** regardless of completion order;
* a worker that raises, or dies outright, yields a structured
  ``{"crashed": True, ...}`` row in its slot instead of hanging the matrix;
* an optional ``progress`` callback receives one line per finished scenario.
"""

from __future__ import annotations

import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["run_scenarios_parallel"]


def _scenario_worker(payload: Dict) -> Dict:
    """Top-level worker entry point (must stay importable for spawn)."""
    from repro.chaos.plan import FaultPlan
    from repro.chaos.runner import run_chaos_trial

    try:
        plan = FaultPlan.from_json(payload["plan_json"])
        report = run_chaos_trial(plan, seed=payload["seed"],
                                 **payload["trial_kwargs"])
        return {
            "seed": payload["seed"],
            "crashed": False,
            "ok": report.ok,
            "events": len(plan),
            "faults_applied": report.faults_applied,
            "committed": report.committed,
            "aborted": report.aborted,
            "text": report.to_text(),
        }
    except Exception as exc:
        return {
            "seed": payload["seed"],
            "crashed": True,
            "ok": False,
            "kind": "error",
            "message": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }


def run_scenarios_parallel(
    scenarios: Sequence[Tuple[int, object]],
    trial_kwargs: Dict,
    jobs: int = 2,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Dict]:
    """Run ``(seed, FaultPlan)`` scenarios over a spawn pool.

    Returns one row per scenario, in input order.  ``trial_kwargs`` are the
    :func:`~repro.chaos.runner.run_chaos_trial` keywords shared by every
    scenario (the per-scenario seed is supplied separately).
    """
    import multiprocessing

    payloads = [
        {"seed": seed, "plan_json": plan.to_json(), "trial_kwargs": dict(trial_kwargs)}
        for seed, plan in scenarios
    ]
    results: List[Optional[Dict]] = [None] * len(payloads)
    context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(
        max_workers=min(max(1, int(jobs)), len(payloads)), mp_context=context,
    ) as pool:
        futures = [pool.submit(_scenario_worker, p) for p in payloads]
        for i, future in enumerate(futures):  # input order => stable rows
            try:
                results[i] = future.result()
            except (BrokenExecutor, OSError) as exc:
                results[i] = {
                    "seed": payloads[i]["seed"],
                    "crashed": True,
                    "ok": False,
                    "kind": "crash",
                    "message": f"worker died: {type(exc).__name__}: {exc}",
                }
            if progress is not None:
                row = results[i]
                status = ("CRASH" if row.get("crashed")
                          else ("OK" if row["ok"] else "FAIL"))
                progress(f"[chaos] {i + 1}/{len(payloads)} seed={row['seed']} {status}")
    return results  # type: ignore[return-value]
