"""Declarative fault plans: seeded, serializable schedules of timed faults.

A :class:`FaultPlan` is the unit of chaos engineering in this repo: an
ordered list of :class:`FaultEvent` entries, each ``(time, kind, args)``,
that can be

* **compiled** onto a running system's simulator timers
  (:class:`repro.chaos.runner.ChaosRunner`),
* **generated** from a seed (:mod:`repro.chaos.generator`),
* **shrunk** to a minimal failing reproducer (:mod:`repro.chaos.shrink`),
* **serialized** to canonical JSON — same plan, byte-identical text — so a
  failing seed prints a reproducer you can commit as a regression test.

Event times are virtual milliseconds relative to the instant the plan is
installed (usually system start, i.e. t=0).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

__all__ = ["FaultEvent", "FaultPlan", "FAULT_KINDS"]

# kind -> required argument names.  Optional arguments are listed in
# :data:`_OPTIONAL_ARGS`; anything else is rejected by ``validate()``.
FAULT_KINDS: Dict[str, Tuple[str, ...]] = {
    "crash_node": ("host",),
    "readd_replica": ("region", "host", "shard"),
    "fail_manager": ("region",),
    "report_failure": ("region", "hosts"),
    "partition_hosts": ("a", "b"),
    "heal_hosts": ("a", "b"),
    "partition_oneway": ("src", "dst"),
    "heal_oneway": ("src", "dst"),
    "partition_regions": ("r1", "r2"),
    "heal_regions": ("r1", "r2"),
    "partition_regions_oneway": ("src", "dst"),
    "heal_regions_oneway": ("src", "dst"),
    "set_drop": ("probability",),
    "set_rtt": ("rtt",),
    "set_jitter": ("jitter",),
    "set_reorder": ("spread",),
    "set_duplicate": ("probability",),
    "clock_skew": ("delta",),
}

_OPTIONAL_ARGS: Dict[str, Tuple[str, ...]] = {
    "crash_node": ("report",),
    "set_rtt": ("r1", "r2"),
    "clock_skew": ("host", "region"),
}


class FaultEvent:
    """One timed fault: apply ``kind`` with ``args`` at virtual ``time`` ms."""

    __slots__ = ("time", "kind", "args")

    def __init__(self, time: float, kind: str, args: Optional[Dict] = None):
        self.time = float(time)
        self.kind = kind
        self.args = dict(args or {})

    def to_dict(self) -> Dict:
        return {"time": self.time, "kind": self.kind, "args": dict(self.args)}

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultEvent":
        return cls(data["time"], data["kind"], data.get("args", {}))

    def validate(self) -> None:
        if self.time < 0:
            raise ConfigError(f"fault event time must be >= 0, got {self.time}")
        required = FAULT_KINDS.get(self.kind)
        if required is None:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; known: {sorted(FAULT_KINDS)}"
            )
        missing = [a for a in required if a not in self.args]
        if missing:
            raise ConfigError(f"{self.kind}: missing args {missing}")
        allowed = set(required) | set(_OPTIONAL_ARGS.get(self.kind, ()))
        extra = [a for a in self.args if a not in allowed]
        if extra:
            raise ConfigError(f"{self.kind}: unexpected args {extra}")

    def __repr__(self) -> str:
        extra = " ".join(f"{k}={self.args[k]}" for k in sorted(self.args))
        return f"[{self.time:10.1f}] {self.kind:<24} {extra}".rstrip()


class FaultPlan:
    """An ordered, serializable schedule of fault events."""

    def __init__(self, events: Iterable[FaultEvent] = (), name: str = "",
                 seed: Optional[int] = None):
        self.name = name
        self.seed = seed
        # Stable sort: same-instant events keep their authored order, which
        # matches the simulator's FIFO tie-break when compiled.
        self.events: List[FaultEvent] = sorted(events, key=lambda e: e.time)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, time: float, kind: str, **args) -> "FaultPlan":
        """Append one event (chainable); keeps the schedule time-sorted."""
        event = FaultEvent(time, kind, args)
        event.validate()
        self.events.append(event)
        self.events.sort(key=lambda e: e.time)
        return self

    def validate(self) -> "FaultPlan":
        for event in self.events:
            event.validate()
        return self

    # ------------------------------------------------------------------
    # Serialization (canonical: identical plans -> identical bytes)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        out: Dict = {"name": self.name, "events": [e.to_dict() for e in self.events]}
        if self.seed is not None:
            out["seed"] = self.seed
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        return cls(
            (FaultEvent.from_dict(e) for e in data.get("events", [])),
            name=data.get("name", ""),
            seed=data.get("seed"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Shrinker support
    # ------------------------------------------------------------------
    def subset(self, indices: Sequence[int]) -> "FaultPlan":
        """A plan containing only the events at ``indices`` (order kept)."""
        keep = set(indices)
        events = [FaultEvent(e.time, e.kind, e.args)
                  for i, e in enumerate(self.events) if i in keep]
        return FaultPlan(events, name=self.name, seed=self.seed)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def timeline(self) -> str:
        """Deterministic human-readable fault timeline."""
        header = f"fault plan {self.name or '(unnamed)'}"
        if self.seed is not None:
            header += f" seed={self.seed}"
        header += f" ({len(self.events)} events)"
        lines = [header]
        lines.extend(repr(e) for e in self.events)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"FaultPlan({self.name or 'unnamed'}, {len(self.events)} events)"
