"""A shard: one partition of the database, the unit a piece executes on.

In the paper each edge node hosts one shard replica; pieces of a transaction
each access exactly one shard and are executed atomically in timestamp order
(§4.1).  :class:`Shard` is the deterministic state machine those pieces run
against.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import UnknownTableError
from repro.storage.table import Table, TableSchema

__all__ = ["Shard"]


class Shard:
    """A named collection of tables plus an executed-operation counter."""

    def __init__(self, shard_id: str, schemas: Iterable[TableSchema]):
        self.shard_id = shard_id
        self.tables: Dict[str, Table] = {s.name: Table(s) for s in schemas}
        self.ops_applied = 0

    def table(self, name: str) -> Table:
        t = self.tables.get(name)
        if t is None:
            raise UnknownTableError(f"shard {self.shard_id}: no table {name!r}")
        return t

    # Convenience accessors used by stored procedures -------------------
    def get(self, table: str, key: Tuple[Any, ...]) -> Dict[str, Any]:
        self.ops_applied += 1
        return self.table(table).get(key)

    def try_get(self, table: str, key: Tuple[Any, ...]) -> Optional[Dict[str, Any]]:
        self.ops_applied += 1
        return self.table(table).try_get(key)

    def update(self, table: str, key: Tuple[Any, ...], changes: Dict[str, Any]) -> None:
        self.ops_applied += 1
        self.table(table).update(key, changes)

    def insert(self, table: str, row: Dict[str, Any]) -> None:
        self.ops_applied += 1
        self.table(table).insert(row)

    def delete(self, table: str, key: Tuple[Any, ...]) -> None:
        self.ops_applied += 1
        self.table(table).delete(key)

    def lookup(self, table: str, index: str, ikey: Tuple[Any, ...]) -> List[Tuple[Any, ...]]:
        self.ops_applied += 1
        return self.table(table).lookup(index, ikey)

    def scan_prefix(self, table: str, prefix: Tuple[Any, ...]) -> List[Tuple[Any, ...]]:
        self.ops_applied += 1
        return self.table(table).scan_prefix(prefix)

    # Replication support ------------------------------------------------
    def digest(self) -> str:
        """Content hash across all tables — replicas must agree."""
        h = hashlib.sha256()
        for name in sorted(self.tables):
            h.update(name.encode())
            h.update(self.tables[name].digest().encode())
        return h.hexdigest()

    def snapshot(self) -> Dict[str, Any]:
        return {name: t.snapshot() for name, t in self.tables.items()}

    def restore(self, snapshot: Dict[str, Any]) -> None:
        for name, table_snapshot in snapshot.items():
            self.table(name).restore(table_snapshot)
