"""In-memory tables with primary keys and optional secondary indexes.

Rows are plain dicts validated against a :class:`TableSchema`.  Tables are
deterministic containers: iteration orders and index lookups are stable, so
replicas that apply the same operations in the same order reach bit-identical
state (checked by :meth:`Table.digest`).
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import DuplicateKeyError, MissingRowError, StorageError

__all__ = ["TableSchema", "Table"]

Key = Tuple[Any, ...]


class TableSchema:
    """Column names, primary-key columns, and secondary index definitions."""

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        primary_key: Sequence[str],
        indexes: Optional[Dict[str, Sequence[str]]] = None,
    ):
        if not columns:
            raise StorageError(f"table {name!r} needs at least one column")
        missing = [c for c in primary_key if c not in columns]
        if missing:
            raise StorageError(f"table {name!r}: primary key columns {missing} not in schema")
        self.name = name
        self.columns = tuple(columns)
        self.primary_key = tuple(primary_key)
        self.indexes = {iname: tuple(cols) for iname, cols in (indexes or {}).items()}
        # Columns an update may touch (everything but the primary key) —
        # precomputed so hot update paths can validate with one set check.
        self.updatable = frozenset(self.columns) - frozenset(self.primary_key)
        for iname, cols in self.indexes.items():
            bad = [c for c in cols if c not in columns]
            if bad:
                raise StorageError(f"index {iname!r} on {name!r}: unknown columns {bad}")

    def key_of(self, row: Dict[str, Any]) -> Key:
        return tuple(row[c] for c in self.primary_key)


class Table:
    """One table instance (one shard's slice of the logical table)."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: Dict[Key, Dict[str, Any]] = {}
        self._indexes: Dict[str, Dict[Key, List[Key]]] = {
            iname: {} for iname in schema.indexes
        }

    # ------------------------------------------------------------------
    # Row operations
    # ------------------------------------------------------------------
    def insert(self, row: Dict[str, Any]) -> None:
        unknown = set(row) - set(self.schema.columns)
        if unknown:
            raise StorageError(f"{self.schema.name}: unknown columns {sorted(unknown)}")
        key = self.schema.key_of(row)
        if key in self._rows:
            raise DuplicateKeyError(f"{self.schema.name}: duplicate key {key}")
        stored = dict(row)
        self._rows[key] = stored
        for iname, cols in self.schema.indexes.items():
            ikey = tuple(stored.get(c) for c in cols)
            self._indexes[iname].setdefault(ikey, []).append(key)

    def get(self, key: Key) -> Dict[str, Any]:
        """Return a *copy* of the row (callers must write via :meth:`update`)."""
        row = self._rows.get(tuple(key))
        if row is None:
            raise MissingRowError(f"{self.schema.name}: no row with key {tuple(key)}")
        return dict(row)

    def try_get(self, key: Key) -> Optional[Dict[str, Any]]:
        row = self._rows.get(tuple(key))
        return dict(row) if row is not None else None

    def update(self, key: Key, changes: Dict[str, Any]) -> None:
        key = tuple(key)
        row = self._rows.get(key)
        if row is None:
            raise MissingRowError(f"{self.schema.name}: no row with key {key}")
        unknown = set(changes) - set(self.schema.columns)
        if unknown:
            raise StorageError(f"{self.schema.name}: unknown columns {sorted(unknown)}")
        touched_pk = set(changes) & set(self.schema.primary_key)
        if touched_pk:
            raise StorageError(f"{self.schema.name}: cannot update primary key columns {sorted(touched_pk)}")
        for iname, cols in self.schema.indexes.items():
            if set(changes) & set(cols):
                old_ikey = tuple(row.get(c) for c in cols)
                bucket = self._indexes[iname].get(old_ikey, [])
                if key in bucket:
                    bucket.remove(key)
                    if not bucket:
                        del self._indexes[iname][old_ikey]
        row.update(changes)
        for iname, cols in self.schema.indexes.items():
            if set(changes) & set(cols):
                new_ikey = tuple(row.get(c) for c in cols)
                self._indexes[iname].setdefault(new_ikey, []).append(key)

    def delete(self, key: Key) -> None:
        key = tuple(key)
        row = self._rows.pop(key, None)
        if row is None:
            raise MissingRowError(f"{self.schema.name}: no row with key {key}")
        for iname, cols in self.schema.indexes.items():
            ikey = tuple(row.get(c) for c in cols)
            bucket = self._indexes[iname].get(ikey, [])
            if key in bucket:
                bucket.remove(key)
                if not bucket:
                    del self._indexes[iname][ikey]

    def lookup(self, index: str, ikey: Key) -> List[Key]:
        """Primary keys of rows whose index columns equal ``ikey``, sorted."""
        if index not in self._indexes:
            raise StorageError(f"{self.schema.name}: no index named {index!r}")
        return sorted(self._indexes[index].get(tuple(ikey), []))

    def scan(self) -> Iterator[Tuple[Key, Dict[str, Any]]]:
        """Deterministic full scan in primary-key order (copies)."""
        for key in sorted(self._rows):
            yield key, dict(self._rows[key])

    def scan_prefix(self, prefix: Iterable[Any]) -> List[Key]:
        """Sorted primary keys whose leading components equal ``prefix``."""
        prefix = tuple(prefix)
        n = len(prefix)
        return sorted(k for k in self._rows if k[:n] == prefix)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: Iterable[Any]) -> bool:
        return tuple(key) in self._rows

    # ------------------------------------------------------------------
    # Replica comparison / checkpointing
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """Order-independent content hash of all rows."""
        h = hashlib.sha256()
        for key in sorted(self._rows, key=repr):
            h.update(repr(key).encode())
            row = self._rows[key]
            h.update(repr(sorted(row.items(), key=lambda kv: kv[0])).encode())
        return h.hexdigest()

    def snapshot(self) -> Dict[Key, Dict[str, Any]]:
        return {k: dict(v) for k, v in self._rows.items()}

    def restore(self, snapshot: Dict[Key, Dict[str, Any]]) -> None:
        self._rows = {}
        for iname in self._indexes:
            self._indexes[iname] = {}
        for row in snapshot.values():
            self.insert(dict(row))
