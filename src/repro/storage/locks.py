"""A per-key read/write lock manager.

Used by the SLOG baseline for its deterministic two-phase-locking execution:
lock requests are issued in log order and granted FIFO per key, so all
replicas converge on the same schedule.  The evaluated SLOG variant releases
a transaction's locks as soon as its pieces on that shard finish (plain 2PL
rather than strong strict 2PL, §6 "Baseline"), which :meth:`release`
supports by being callable per-transaction at any time.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, List, Set, Tuple

from repro.errors import ProtocolError
from repro.sim.kernel import Event, Simulator

__all__ = ["LockManager", "LockMode"]


class LockMode:
    """Lock compatibility modes: shared (read) and exclusive (write)."""

    SHARED = "S"
    EXCLUSIVE = "X"


class _KeyState:
    __slots__ = ("holders", "mode", "waiters")

    def __init__(self) -> None:
        self.holders: Set[str] = set()
        self.mode: str = LockMode.SHARED
        self.waiters: Deque[Tuple[str, str]] = deque()


class LockManager:
    """FIFO read/write locks keyed by arbitrary hashables."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._keys: Dict[Hashable, _KeyState] = {}
        # txn -> (event, #locks still missing, keys requested)
        self._pending: Dict[str, List] = {}
        self._held: Dict[str, Set[Hashable]] = {}

    def request(self, txn_id: str, wants: Dict[Hashable, str]) -> Event:
        """Atomically enqueue lock requests for all of ``wants``.

        Returns an event that succeeds once *every* requested lock is held.
        Because SLOG requests locks in deterministic log order and never
        releases before requesting, FIFO queueing cannot deadlock.
        """
        if txn_id in self._pending or txn_id in self._held:
            raise ProtocolError(f"txn {txn_id} already holds or awaits locks")
        event = self.sim.event()
        entry = [event, 0, list(wants)]
        self._pending[txn_id] = entry
        self._held[txn_id] = set()
        for key, mode in sorted(wants.items(), key=lambda kv: repr(kv[0])):
            state = self._keys.setdefault(key, _KeyState())
            if self._grantable(state, mode):
                self._grant(state, txn_id, mode, key)
            else:
                entry[1] += 1
                state.waiters.append((txn_id, mode))
        if entry[1] == 0:
            self._finish(txn_id)
        return event

    def release(self, txn_id: str) -> None:
        """Release every lock held by ``txn_id`` and wake eligible waiters.

        Keys release in sorted order so waiter wake-ups are deterministic
        across replicas and runs (set iteration order is hash-seeded).
        """
        held = sorted(self._held.pop(txn_id, set()), key=repr)
        self._pending.pop(txn_id, None)
        for key in held:
            state = self._keys[key]
            state.holders.discard(txn_id)
            self._promote(state, key)
            if not state.holders and not state.waiters:
                del self._keys[key]

    def holders_of(self, key: Hashable) -> Set[str]:
        state = self._keys.get(key)
        return set(state.holders) if state else set()

    def waiting_count(self) -> int:
        return sum(len(s.waiters) for s in self._keys.values())

    # ------------------------------------------------------------------
    @staticmethod
    def _grantable(state: _KeyState, mode: str) -> bool:
        if not state.holders:
            return True
        return (
            mode == LockMode.SHARED
            and state.mode == LockMode.SHARED
            and not state.waiters  # FIFO fairness: readers queue behind writers
        )

    def _grant(self, state: _KeyState, txn_id: str, mode: str, key: Hashable) -> None:
        if not state.holders:
            state.mode = mode
        state.holders.add(txn_id)
        self._held.setdefault(txn_id, set()).add(key)

    def _promote(self, state: _KeyState, key: Hashable) -> None:
        while state.waiters:
            txn_id, mode = state.waiters[0]
            if not self._grantable_ignoring_queue(state, mode):
                break
            state.waiters.popleft()
            self._grant(state, txn_id, mode, key)
            entry = self._pending.get(txn_id)
            if entry is None:
                # Waiter released (aborted) before being granted; undo.
                state.holders.discard(txn_id)
                continue
            entry[1] -= 1
            if entry[1] == 0:
                self._finish(txn_id)
            if state.mode == LockMode.EXCLUSIVE:
                break

    @staticmethod
    def _grantable_ignoring_queue(state: _KeyState, mode: str) -> bool:
        if not state.holders:
            return True
        return mode == LockMode.SHARED and state.mode == LockMode.SHARED

    def _finish(self, txn_id: str) -> None:
        entry = self._pending.pop(txn_id, None)
        if entry is not None:
            entry[0].succeed(None)
