"""Deterministic in-memory storage: tables, shards, locks, catalog."""

from repro.storage.catalog import Catalog, ShardInfo
from repro.storage.locks import LockManager, LockMode
from repro.storage.shard import Shard
from repro.storage.table import Table, TableSchema

__all__ = ["Catalog", "LockManager", "LockMode", "Shard", "ShardInfo", "Table", "TableSchema"]
