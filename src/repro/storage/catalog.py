"""The database catalog: shards, their host regions, and replica placement.

DAST assigns each shard a *host region* — the region whose clients access it
most (§3.1) — and replicates it 2f+1 times within that region only (partial
replication).  The catalog is static configuration shared by every system
under test so comparisons use identical placements.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Set, Tuple

from repro.errors import ConfigError

__all__ = ["Catalog", "ShardInfo"]


class ShardInfo:
    """Placement record for one shard."""

    def __init__(self, shard_id: str, region: str, replicas: Sequence[str]):
        if not replicas:
            raise ConfigError(f"shard {shard_id}: needs at least one replica")
        self.shard_id = shard_id
        self.region = region
        self.replicas = tuple(replicas)

    @property
    def quorum_size(self) -> int:
        return len(self.replicas) // 2 + 1

    def __repr__(self) -> str:
        return f"ShardInfo({self.shard_id}, region={self.region}, replicas={list(self.replicas)})"


class Catalog:
    """Maps shards to regions/replicas and logical keys to shards."""

    def __init__(self, partition_fn: Callable[[str, Tuple[Any, ...]], str]):
        """``partition_fn(table, primary_key) -> shard_id``."""
        self._partition_fn = partition_fn
        self._shards: Dict[str, ShardInfo] = {}
        self._by_region: Dict[str, List[str]] = {}
        self._node_shards: Dict[str, List[str]] = {}
        # Shards mid-reshard (repro.topo): coordinators park new submissions
        # touching a frozen shard until the move's drain window closes.
        self.frozen_shards: Set[str] = set()

    def add_shard(self, shard_id: str, region: str, replicas: Sequence[str]) -> ShardInfo:
        if shard_id in self._shards:
            raise ConfigError(f"shard {shard_id} already placed")
        info = ShardInfo(shard_id, region, replicas)
        self._shards[shard_id] = info
        self._by_region.setdefault(region, []).append(shard_id)
        for node in replicas:
            self._node_shards.setdefault(node, []).append(shard_id)
        return info

    def shard_of(self, table: str, key: Tuple[Any, ...]) -> str:
        shard_id = self._partition_fn(table, tuple(key))
        if shard_id not in self._shards:
            raise ConfigError(f"partition function produced unknown shard {shard_id!r}")
        return shard_id

    def shard(self, shard_id: str) -> ShardInfo:
        info = self._shards.get(shard_id)
        if info is None:
            raise ConfigError(f"unknown shard {shard_id!r}")
        return info

    def region_of_shard(self, shard_id: str) -> str:
        return self.shard(shard_id).region

    def replicas_of(self, shard_id: str) -> Tuple[str, ...]:
        return self.shard(shard_id).replicas

    def shards_in_region(self, region: str) -> List[str]:
        return list(self._by_region.get(region, []))

    def shards_on_node(self, node: str) -> List[str]:
        return list(self._node_shards.get(node, []))

    def all_shards(self) -> List[str]:
        return sorted(self._shards)

    def all_regions(self) -> List[str]:
        return sorted(self._by_region)

    def remove_replica(self, shard_id: str, node: str) -> None:
        """Drop a crashed node from a shard's replica set (failover path)."""
        info = self.shard(shard_id)
        if node not in info.replicas:
            return
        info.replicas = tuple(r for r in info.replicas if r != node)
        node_list = self._node_shards.get(node, [])
        if shard_id in node_list:
            node_list.remove(shard_id)

    def add_replica(self, shard_id: str, node: str) -> None:
        info = self.shard(shard_id)
        if node in info.replicas:
            return
        info.replicas = info.replicas + (node,)
        self._node_shards.setdefault(node, []).append(shard_id)

    def set_region(self, shard_id: str, region: str) -> None:
        """Re-home a shard after an elastic move (repro.topo reshard)."""
        info = self.shard(shard_id)
        if info.region == region:
            return
        old = self._by_region.get(info.region, [])
        if shard_id in old:
            old.remove(shard_id)
        info.region = region
        self._by_region.setdefault(region, []).append(shard_id)
