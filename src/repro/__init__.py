"""repro — a reproduction of DAST (EuroSys 2021).

DAST (Decentralized Anticipate and STretch) is an edge database providing
one-copy serializability with low tail latency for intra-region transactions
(IRTs), no conflict-aborts for cross-region transactions (CRTs), and
scalability to many regions.  This package contains:

* ``repro.sim`` — a deterministic discrete-event simulator (kernel, network,
  RPC, virtual clocks) standing in for the paper's testbed;
* ``repro.clock`` — hybrid timestamps and the stretchable dclock;
* ``repro.storage`` / ``repro.txn`` / ``repro.consensus`` — the substrates;
* ``repro.core`` — DAST itself (2DA, PCT, failover);
* ``repro.baselines`` — Janus, Tapir, and SLOG reimplementations;
* ``repro.workloads`` — TPC-C (default + payment-only) and TPC-A;
* ``repro.bench`` — the harness regenerating every table and figure of §6.

Quickstart::

    from repro.bench import Trial, run_trial
    from repro.workloads import TpccWorkload

    result = run_trial(Trial("dast", lambda t: TpccWorkload(t)))
    print(result.summary)
"""

__version__ = "1.0.0"

from repro.config import TimingConfig, Topology, TopologyConfig
from repro.errors import ReproError

__all__ = ["ReproError", "TimingConfig", "Topology", "TopologyConfig", "__version__"]
