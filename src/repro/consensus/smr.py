"""A compact leader-based SMR (state-machine replication) service.

DAST replicates each region's manager state that is *off* the transaction
critical path — the current view and 2PC progress of view installation —
through an SMR service (§4.4, citing Raft).  This module provides that
substrate: a replicated key-value log with leader-forwarded writes, majority
commit, and explicit term-based leader turnover.

It is intentionally simpler than full Raft (no log repair under leader churn
mid-append; elections are deterministic round-robin over live replicas),
which is sufficient here: DAST only stores small, idempotent registers in it
and the evaluation never partitions a region's interior.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ProtocolError, RpcTimeout
from repro.sim.kernel import Event, Simulator
from repro.sim.network import Network
from repro.sim.rpc import Endpoint, RpcRemoteError
from repro.wire.messages import SmrAppend, SmrElect, SmrGet, SmrPut

__all__ = ["SmrReplica", "SmrCluster"]


class SmrReplica:
    """One replica of the replicated register store."""

    def __init__(self, sim: Simulator, network: Network, host: str, region: str,
                 peers: List[str], service_time: float = 0.0):
        self.sim = sim
        self.host = host
        self.peers = [p for p in peers if p != host]
        self.endpoint = Endpoint(sim, network, host, region, service_time=service_time)
        self.term = 0
        self.leader: Optional[str] = None
        self.log: List[Tuple[int, str, Any]] = []  # (term, key, value)
        self.commit_index = -1
        self.state: Dict[str, Any] = {}
        self.endpoint.register("smr_put", self.on_put)
        self.endpoint.register("smr_get", self.on_get)
        self.endpoint.register("smr_append", self.on_append)
        self.endpoint.register("smr_elect", self.on_elect)

    @property
    def quorum(self) -> int:
        return (len(self.peers) + 1) // 2 + 1

    # -- client-facing ---------------------------------------------------
    def on_put(self, src: str, payload: SmrPut):
        if self.leader != self.host:
            raise ProtocolError(f"{self.host}: not the leader (leader={self.leader})")
        key, value = payload.key, payload.value
        entry_index = len(self.log)
        self.log.append((self.term, key, value))
        acks = [1]  # ourselves
        done = self.sim.event()

        def collect(ev: Event) -> None:
            if ev.ok and ev.value and ev.value.get("ok"):
                acks[0] += 1
                if acks[0] >= self.quorum and not done.triggered:
                    done.succeed(None)

        msg = SmrAppend(
            term=self.term,
            index=entry_index,
            entry=(self.term, key, value),
            commit_index=self.commit_index,
        )
        for peer in self.peers:
            self.endpoint.call(peer, msg, timeout=50.0).add_callback(collect)

        def proc():
            yield done
            self.commit_index = max(self.commit_index, entry_index)
            self._apply()
            return {"ok": True, "index": entry_index}

        return proc()

    def on_get(self, src: str, payload: SmrGet):
        return {"value": self.state.get(payload.key), "leader": self.leader,
                "term": self.term}

    # -- replication -------------------------------------------------------
    def on_append(self, src: str, payload: SmrAppend):
        if payload.term < self.term:
            return {"ok": False, "term": self.term}
        self.term = payload.term
        self.leader = src
        index = payload.index
        # Fill or overwrite at the given index (leader's log is authoritative).
        while len(self.log) < index:
            self.log.append((self.term, "__gap__", None))
        if len(self.log) == index:
            self.log.append(payload.entry)
        else:
            self.log[index] = payload.entry
        self.commit_index = max(self.commit_index, payload.commit_index)
        self._apply()
        return {"ok": True, "term": self.term}

    def on_elect(self, src: str, payload: SmrElect):
        if payload.term <= self.term and self.leader is not None:
            if payload.term < self.term:
                return {"ok": False, "term": self.term}
        self.term = payload.term
        self.leader = payload.leader
        return {"ok": True, "term": self.term}

    def _apply(self) -> None:
        for i in range(self.commit_index + 1):
            term, key, value = self.log[i]
            if key != "__gap__":
                self.state[key] = value


class SmrCluster:
    """Builds one region's replica group and offers a client interface."""

    def __init__(self, sim: Simulator, network: Network, region: str,
                 num_replicas: int = 3, service_time: float = 0.0):
        self.sim = sim
        self.region = region
        hosts = [f"{region}.smr{i}" for i in range(num_replicas)]
        self.replicas = [
            SmrReplica(sim, network, h, region, hosts, service_time) for h in hosts
        ]
        self.network = network
        # Bootstrap: replica 0 leads term 1.
        for rep in self.replicas:
            rep.term = 1
            rep.leader = hosts[0]

    @property
    def leader(self) -> SmrReplica:
        for rep in self.replicas:
            if rep.leader == rep.host and not self.network.is_down(rep.host):
                return rep
        raise ProtocolError(f"{self.region}: no live SMR leader")

    def elect(self) -> SmrReplica:
        """Deterministically promote the next live replica."""
        live = [r for r in self.replicas if not self.network.is_down(r.host)]
        if not live:
            raise ProtocolError(f"{self.region}: all SMR replicas down")
        new_leader = live[0]
        term = max(r.term for r in self.replicas) + 1
        for rep in live:
            rep.term = term
            rep.leader = new_leader.host

        return new_leader

    # -- convenience client calls (from an arbitrary endpoint) -----------
    def put_from(self, endpoint: Endpoint, key: str, value: Any):
        """Generator: replicate ``key=value`` with majority durability."""

        def proc():
            while True:
                try:
                    leader = self.leader
                except ProtocolError:
                    leader = self.elect()
                try:
                    resp = yield endpoint.call(
                        leader.host, SmrPut(key=key, value=value), timeout=100.0
                    )
                    return resp
                except (RpcTimeout, RpcRemoteError):
                    self.elect()

        return proc()

    def get_from(self, endpoint: Endpoint, key: str):
        def proc():
            resp = yield endpoint.call(self.leader.host, SmrGet(key=key), timeout=100.0)
            return resp["value"]

        return proc()
