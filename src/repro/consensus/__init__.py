"""Replication substrates: quorum tracking and a compact SMR service."""

from repro.consensus.quorum import QuorumTracker
from repro.consensus.smr import SmrCluster, SmrReplica

__all__ = ["QuorumTracker", "SmrCluster", "SmrReplica"]
