"""Quorum-collection helper for fan-out request/ack patterns."""

from __future__ import annotations

from typing import Dict, Set

from repro.sim.kernel import Event, Simulator

__all__ = ["QuorumTracker"]


class QuorumTracker:
    """Tracks per-group ACK counts and fires once every group has quorum.

    Used by coordinators that need "majority ACKs from *each* participating
    shard": one group per shard, each with its own quorum size.
    """

    def __init__(self, sim: Simulator, quorums: Dict[str, int]):
        self.event: Event = sim.event()
        self._needed = dict(quorums)
        self._seen: Dict[str, Set[str]] = {g: set() for g in quorums}

    def ack(self, group: str, member: str) -> None:
        if self.event.triggered or group not in self._seen:
            return
        self._seen[group].add(member)
        if all(len(self._seen[g]) >= n for g, n in self._needed.items()):
            self.event.succeed(None)

    def satisfied(self) -> bool:
        return self.event.triggered

    def progress(self) -> Dict[str, int]:
        return {g: len(s) for g, s in self._seen.items()}
