"""Serializable trial specs, outcomes, and content fingerprints.

A :class:`TrialSpec` is :class:`repro.bench.harness.Trial` minus the
callables: the workload is named by a :mod:`repro.workloads.registry` key
and runtime anomaly schedules by a :mod:`repro.fleet.hooks` key, so a spec
round-trips through JSON and can be shipped to a worker process or hashed
into a cache address.

The **fingerprint** is a stable content hash over the spec payload plus
the current :func:`code_version` (a digest of every ``repro`` source
file).  Two specs share a fingerprint iff they would produce the same
deterministic trial output: any timing, topology, seed, workload, or code
change moves the hash.

A :class:`TrialOutcome` is the compact, JSON-safe result of running a
spec: the summary row, any requested extras (CDFs, breakdowns,
timelines), abort counts, and the trial's wall-clock/RSS footprint.  The
deterministic part (everything except wall clock, RSS, and cache
provenance) is exposed as a canonical byte string so determinism guards
can compare runs across processes byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Dict, List, Mapping, Optional

from repro.errors import ConfigError

__all__ = [
    "TrialSpec",
    "TrialOutcome",
    "TrialFailure",
    "code_version",
    "canonical_json",
]

_CODE_VERSION: Optional[str] = None


def code_version(refresh: bool = False) -> str:
    """Digest of every ``.py`` file in the ``repro`` package (cached).

    Cache entries embed this so results produced by different code are
    never served as hits for the current tree.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None or refresh:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                digest.update(os.path.relpath(path, root).encode())
                digest.update(b"\0")
                with open(path, "rb") as fh:
                    digest.update(fh.read())
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def canonical_json(value: Any) -> str:
    """Deterministic JSON text: sorted keys, no whitespace."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class TrialSpec:
    """One trial, fully described by JSON-safe values.

    ``label`` is display-only and excluded from the fingerprint; every
    other field is content.
    """

    system: str = "dast"
    workload: str = "tpcc"
    workload_params: Mapping = field(default_factory=dict)
    num_regions: int = 2
    shards_per_region: int = 2
    replication: int = 3
    clients_per_region: int = 8
    duration_ms: float = 8000.0
    warmup_ms: float = 1500.0
    cooldown_ms: float = 500.0
    seed: int = 1
    clock_skew: float = 0.0
    variant: Optional[Mapping] = None
    timing: Mapping = field(default_factory=dict)
    request_timeout: float = 10000.0
    batch_window: float = 0.0
    hook: Optional[str] = None
    hook_params: Mapping = field(default_factory=dict)
    collect: Mapping = field(default_factory=dict)
    # Open-loop mode: None = closed-loop clients (every pre-existing spec
    # keeps its exact semantics); a mapping of OpenLoopConfig knobs runs
    # the aggregate arrival engine instead (docs/WORKLOADS.md).
    open_loop: Optional[Mapping] = None
    # Region-partitioned execution (docs/PARALLEL.md): >= 2 requests the
    # repro.sim.par kernel.  Virtual-time results are identical either
    # way, but the knob stays in the fingerprint so a serial row and its
    # parallel twin are cached separately — their wall-clock provenance
    # is the whole point of running both.
    parallel_regions: int = 0
    # Which partitioned backend executes the windows when parallel_regions
    # requests parallelism: "auto" (threads, demoted by faults/obs),
    # "serial"/"lockstep"/"threads"/"process".  Fingerprint-bearing like
    # parallel_regions — backend twins are distinct cached rows whose
    # wall-clock comparison is the point.
    parallel_backend: str = "auto"
    # repro.topo (docs/TOPOLOGY.md): a mid-trial reconfiguration schedule
    # (``TopologyPlan.to_dict()``), a named cross-region RTT preset, a
    # per-region CPU service-tier map (or named preset string), and extra
    # initially-empty regions for elastic joins.  All content-bearing:
    # every one changes the deterministic output, so all are hashed.
    topology: Optional[Mapping] = None
    rtt_profile: Optional[str] = None
    service_multipliers: Optional[Any] = None
    spare_regions: int = 0
    label: str = ""

    # ------------------------------------------------------------------
    def validate(self) -> None:
        from repro.bench.harness import SYSTEMS
        from repro.fleet.hooks import HOOKS
        from repro.workloads.registry import WORKLOADS

        if self.system not in SYSTEMS:
            raise ConfigError(f"unknown system {self.system!r}; choose from {sorted(SYSTEMS)}")
        if self.workload not in WORKLOADS:
            raise ConfigError(
                f"unknown workload {self.workload!r}; choose from {sorted(WORKLOADS)}")
        if self.hook is not None and self.hook not in HOOKS:
            raise ConfigError(f"unknown hook {self.hook!r}; choose from {sorted(HOOKS)}")
        bad = sorted(set(self.timing) - _TIMING_FIELDS())
        if bad:
            raise ConfigError(f"unknown timing overrides {bad}")
        if self.open_loop is not None:
            from repro.workloads.openloop import OpenLoopConfig

            # Raises ConfigError on unknown keys or bad values.
            OpenLoopConfig.from_dict(self.open_loop)
        if self.topology is not None:
            from repro.topo.plan import TopologyPlan

            TopologyPlan.from_dict(dict(self.topology)).validate()
        if self.rtt_profile is not None:
            from repro.topo.profiles import RTT_PROFILES

            if self.rtt_profile not in RTT_PROFILES:
                raise ConfigError(
                    f"unknown rtt_profile {self.rtt_profile!r}; "
                    f"choose from {sorted(RTT_PROFILES)}")
        if self.spare_regions < 0:
            raise ConfigError("spare_regions must be >= 0")
        from repro.sim.par import BACKENDS

        if self.parallel_backend not in BACKENDS:
            raise ConfigError(
                f"unknown parallel_backend {self.parallel_backend!r}; "
                f"choose from {list(BACKENDS)}")

    # ------------------------------------------------------------------
    def payload(self) -> Dict[str, Any]:
        """The hashable content of this spec (everything but ``label``)."""
        out = {}
        for f in fields(self):
            if f.name == "label":
                continue
            value = getattr(self, f.name)
            out[f.name] = dict(value) if isinstance(value, Mapping) else value
        return out

    def fingerprint(self) -> str:
        digest = hashlib.sha256()
        digest.update(canonical_json(self.payload()).encode())
        digest.update(b"\0")
        digest.update(code_version().encode())
        return digest.hexdigest()[:32]

    def display_label(self) -> str:
        if self.label:
            return self.label
        return (f"{self.system}/{self.workload} r{self.num_regions}"
                f"x{self.shards_per_region} c{self.clients_per_region} "
                f"seed{self.seed}")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        out = self.payload()
        out["label"] = self.label
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "TrialSpec":
        known = {f.name for f in fields(cls)}
        bad = sorted(set(data) - known)
        if bad:
            raise ConfigError(f"unknown TrialSpec fields {bad}")
        return cls(**dict(data))

    # ------------------------------------------------------------------
    def to_trial(self):
        """Rebuild the runnable :class:`repro.bench.harness.Trial`."""
        from repro.bench.harness import Trial
        from repro.config import TimingConfig
        from repro.topo.plan import TopologyPlan
        from repro.workloads.registry import workload_factory

        self.validate()
        timing = TimingConfig(**dict(self.timing)) if self.timing else None
        return Trial(
            self.system,
            workload_factory(self.workload, self.workload_params),
            num_regions=self.num_regions,
            shards_per_region=self.shards_per_region,
            replication=self.replication,
            clients_per_region=self.clients_per_region,
            duration_ms=self.duration_ms,
            warmup_ms=self.warmup_ms,
            cooldown_ms=self.cooldown_ms,
            seed=self.seed,
            timing=timing,
            clock_skew=self.clock_skew,
            variant=dict(self.variant) if self.variant else None,
            request_timeout=self.request_timeout,
            batch_window=self.batch_window,
            open_loop=dict(self.open_loop) if self.open_loop is not None else None,
            parallel_regions=self.parallel_regions,
            parallel_backend=self.parallel_backend,
            topology_plan=(TopologyPlan.from_dict(dict(self.topology))
                           if self.topology is not None else None),
            rtt_profile=self.rtt_profile,
            service_multipliers=self.service_multipliers,
            spare_regions=self.spare_regions,
        )


def _TIMING_FIELDS() -> set:
    from repro.config import TimingConfig

    return {f.name for f in fields(TimingConfig)}


@dataclass
class TrialOutcome:
    """Compact result of one executed spec (JSON round-trippable).

    ``wall_clock_s``/``peak_rss_kb``/``cached`` are provenance, not
    content: :meth:`deterministic_blob` excludes them so byte-equality
    checks compare only what the simulation computed.
    """

    fingerprint: str
    label: str
    row: Dict[str, Any]
    extras: Dict[str, Any] = field(default_factory=dict)
    committed: int = 0
    aborted: int = 0
    wall_clock_s: float = 0.0
    peak_rss_kb: int = 0
    cached: bool = False
    # How the kernel executed ("serial"/"lockstep"/"threads"/"process")
    # and which backend the spec asked for.  Provenance like wall clock:
    # excluded from deterministic_blob — the invariant is precisely that
    # the mode never changes the deterministic content.
    parallel_mode: str = "serial"
    parallel_backend: str = "auto"

    ok: ClassVar[bool] = True

    def deterministic_blob(self) -> bytes:
        return canonical_json({
            "fingerprint": self.fingerprint,
            "row": self.row,
            "extras": self.extras,
            "committed": self.committed,
            "aborted": self.aborted,
        }).encode()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "label": self.label,
            "row": self.row,
            "extras": self.extras,
            "committed": self.committed,
            "aborted": self.aborted,
            "wall_clock_s": self.wall_clock_s,
            "peak_rss_kb": self.peak_rss_kb,
            "parallel_mode": self.parallel_mode,
            "parallel_backend": self.parallel_backend,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TrialOutcome":
        return cls(**dict(data))


@dataclass
class TrialFailure:
    """A trial that did not produce an outcome: error, timeout, or a dead
    worker.  Fleet sweeps surface these in-place instead of hanging or
    aborting the other trials."""

    fingerprint: str
    label: str
    kind: str  # "error" | "timeout" | "crash"
    message: str
    traceback_text: str = ""
    wall_clock_s: float = 0.0

    ok: ClassVar[bool] = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "label": self.label,
            "kind": self.kind,
            "message": self.message,
            "traceback_text": self.traceback_text,
            "wall_clock_s": self.wall_clock_s,
        }

    def __str__(self) -> str:
        return f"[{self.kind}] {self.label}: {self.message}"


def failures(results: List) -> List[TrialFailure]:
    """The failures among a fleet result list, in order."""
    return [r for r in results if r is not None and not r.ok]
