"""The pinned ``repro bench`` matrix: the repo's wall-clock trajectory.

``BENCH_fleet.json`` is the first (and ongoing) point of a performance
trajectory: it records how fast this reproduction *runs* — wall-clock
seconds, trials per minute, per-trial peak RSS — over a **pinned** trial
matrix.  The matrix must stay stable across PRs so points remain
comparable; extend it by *appending* labelled specs, never by changing
existing ones.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import replace
from typing import Dict, List, Optional

from repro.fleet.spec import TrialOutcome, TrialSpec, canonical_json, code_version

__all__ = ["bench_matrix", "run_bench", "BENCH_SCHEMA"]

BENCH_SCHEMA = "repro.fleet.bench/1"


def bench_matrix(quick: bool = False) -> List[TrialSpec]:
    """The pinned trial list; ``quick`` trims to just the short
    ``quick:``-labelled subset (which also rides inside the full list so
    committed full runs carry comparison rows for CI's quick bench)."""
    specs: List[TrialSpec] = []
    duration = 2500.0 if quick else 6000.0
    clients = 4 if quick else 8
    for system in ("dast", "janus", "tapir", "slog"):
        specs.append(TrialSpec(
            system=system, workload="tpcc",
            num_regions=2, shards_per_region=2, clients_per_region=clients,
            duration_ms=duration, warmup_ms=500.0, cooldown_ms=200.0, seed=1,
            label=f"tpcc/{system}",
        ))
    specs.append(TrialSpec(
        system="dast", workload="payment", workload_params={"crt_ratio": 0.4},
        num_regions=2, shards_per_region=2, clients_per_region=clients,
        duration_ms=duration, warmup_ms=500.0, cooldown_ms=200.0, seed=1,
        label="payment40/dast",
    ))
    specs.append(TrialSpec(
        system="dast", workload="tpca",
        workload_params={"theta": 0.9, "crt_ratio": 0.1},
        num_regions=2, shards_per_region=2, clients_per_region=clients,
        duration_ms=duration, warmup_ms=500.0, cooldown_ms=200.0, seed=1,
        label="tpca-zipf0.9/dast",
    ))
    if quick:
        # Appended: open-loop smoke — 10k simulated users through the
        # aggregate arrival engine (docs/WORKLOADS.md).  Rides into the
        # full matrix via the quick: block below.
        specs.append(TrialSpec(
            system="dast", workload="ycsb",
            workload_params={"theta": 0.7, "crt_ratio": 0.0,
                             "read_ratio": 0.95, "ops_per_txn": 2},
            num_regions=2, shards_per_region=2, replication=1,
            clients_per_region=8,
            duration_ms=800.0, warmup_ms=100.0, cooldown_ms=50.0, seed=1,
            open_loop={"users_per_region": 5000, "txn_per_user_s": 4.0},
            label="openloop-10k/dast",
        ))
        # Appended: the region-partitioned kernel smoke pair — the same
        # 3-region trial once serial and once under -j 3.  CI's smoke
        # gate asserts the two rows' deterministic content is identical
        # (docs/PARALLEL.md; .github/workflows/ci.yml).
        par_base = TrialSpec(
            system="dast", workload="tpcc",
            num_regions=3, shards_per_region=1, clients_per_region=4,
            duration_ms=1200.0, warmup_ms=200.0, cooldown_ms=100.0, seed=1,
            label="par-smoke/dast",
        )
        specs.append(par_base)
        specs.append(replace(par_base, parallel_regions=3,
                             label="par-smoke-j3/dast"))
        # Appended: the same trial on the process backend — one forked OS
        # process per region partition (docs/PARALLEL.md).  CI's smoke
        # gate asserts this row's deterministic content matches the serial
        # row too, and on multi-core hosts that its speedup_vs_serial
        # exceeds 1.0.
        specs.append(replace(par_base, parallel_regions=3,
                             parallel_backend="process",
                             label="par-smoke-p3/dast"))
        # Appended: topology-churn smoke (docs/TOPOLOGY.md) — one region
        # joins and pulls a shard in by elastic resharding, 10% of a
        # region's open-loop users migrate (their IRTs become CRT
        # handoffs), then the region leaves again.  The Summary row
        # carries the ``topo`` counter block (reshards, handoffs, parked
        # aborts), which CI's smoke gate asserts non-empty.
        specs.append(TrialSpec(
            system="dast", workload="tpca",
            workload_params={"theta": 0.9, "crt_ratio": 0.1},
            num_regions=3, shards_per_region=1, replication=1,
            clients_per_region=2,
            duration_ms=3500.0, warmup_ms=300.0, cooldown_ms=200.0, seed=3,
            spare_regions=1,
            open_loop={"users_per_region": 60, "txn_per_user_s": 40.0 / 60.0,
                       "keep_records": True},
            topology={"name": "bench-churn", "events": [
                {"time": 900.0, "kind": "region_join",
                 "args": {"region": "r3", "shards": ["s0"]}},
                {"time": 1500.0, "kind": "migrate_clients",
                 "args": {"src": "r1", "dst": "r2", "fraction": 0.1}},
                {"time": 2400.0, "kind": "region_leave",
                 "args": {"region": "r3"}},
            ]},
            label="topo-churn/dast",
        ))
        return specs
    specs.append(TrialSpec(
        system="dast", workload="tpcc",
        num_regions=4, shards_per_region=2, clients_per_region=6,
        duration_ms=5000.0, warmup_ms=500.0, cooldown_ms=200.0, seed=1,
        label="tpcc-4regions/dast",
    ))
    specs.append(TrialSpec(
        system="dast", workload="tpcc",
        num_regions=8, shards_per_region=1, clients_per_region=6,
        duration_ms=5000.0, warmup_ms=500.0, cooldown_ms=200.0, seed=1,
        label="tpcc-8regions/dast",
    ))
    specs.append(TrialSpec(
        system="dast", workload="tpcc",
        num_regions=2, shards_per_region=2, clients_per_region=clients,
        duration_ms=duration, warmup_ms=500.0, cooldown_ms=200.0, seed=1,
        batch_window=1.25, label="tpcc-batched/dast",
    ))
    specs.append(TrialSpec(
        system="dast", workload="ycsb",
        workload_params={"theta": 0.7, "crt_ratio": 0.1},
        num_regions=2, shards_per_region=2, clients_per_region=clients,
        duration_ms=duration, warmup_ms=500.0, cooldown_ms=200.0, seed=1,
        label="ycsb/dast",
    ))
    for seed in (2, 3):
        specs.append(TrialSpec(
            system="dast", workload="tpcc",
            num_regions=2, shards_per_region=2, clients_per_region=clients,
            duration_ms=duration, warmup_ms=500.0, cooldown_ms=200.0,
            seed=seed, label=f"tpcc-seed{seed}/dast",
        ))
    # Appended (never reordered): the quick matrix under ``quick:`` labels,
    # so a committed full run carries comparison rows for CI's quick bench
    # (see benchmarks/bench_compare.py).
    for spec in bench_matrix(quick=True):
        specs.append(replace(spec, label=f"quick:{spec.label}"))
    # Appended: the open-loop scale row — 100k simulated users, ~1M+
    # committed transactions through the express submission path.  The
    # read-heavy 2-op YCSB shape keeps per-transaction work small so the
    # row times the *arrival engine* at scale, not the storage layer.
    specs.append(TrialSpec(
        system="dast", workload="ycsb",
        workload_params={"theta": 0.7, "crt_ratio": 0.0,
                         "read_ratio": 0.95, "ops_per_txn": 2},
        num_regions=2, shards_per_region=4, replication=1,
        clients_per_region=64,
        duration_ms=1820.0, warmup_ms=60.0, cooldown_ms=30.0, seed=1,
        timing={"service_time": 0.01},
        open_loop={"users_per_region": 50_000, "txn_per_user_s": 6.0},
        label="openloop-100k/dast",
    ))
    # Appended: bursty arrivals + a flash crowd on the first region's hot
    # shard — exercises the MMPP/diurnal/flash generator paths end to end.
    specs.append(TrialSpec(
        system="dast", workload="ycsb",
        workload_params={"theta": 0.7, "crt_ratio": 0.0,
                         "read_ratio": 0.95, "ops_per_txn": 2},
        num_regions=2, shards_per_region=2, replication=1,
        clients_per_region=8,
        duration_ms=1000.0, warmup_ms=100.0, cooldown_ms=50.0, seed=1,
        open_loop={"users_per_region": 5000, "txn_per_user_s": 4.0,
                   "model": "mmpp", "burst_mult": 6.0,
                   "diurnal_period_ms": 400.0,
                   "flash_at_ms": 500.0, "flash_duration_ms": 150.0,
                   "flash_mult": 3.0, "flash_redirect": 0.5},
        label="openloop-flash/dast",
    ))
    # Appended: region-partitioned kernel rows (docs/PARALLEL.md) — each
    # config once serial and once with -j 3, so one payload carries both
    # twins and the Summary can report speedup-vs-serial.
    tpcc3 = TrialSpec(
        system="dast", workload="tpcc",
        num_regions=3, shards_per_region=2, clients_per_region=6,
        duration_ms=5000.0, warmup_ms=500.0, cooldown_ms=200.0, seed=1,
        label="tpcc-3regions/dast",
    )
    specs.append(tpcc3)
    specs.append(replace(tpcc3, parallel_regions=3,
                         label="tpcc-3regions-j3/dast"))
    # Appended: the shared-nothing process backend twin of the same trial
    # — the row that actually escapes the GIL on multi-core hosts.
    specs.append(replace(tpcc3, parallel_regions=3,
                         parallel_backend="process",
                         label="tpcc-3regions-p3/dast"))
    ol3 = TrialSpec(
        system="dast", workload="ycsb",
        workload_params={"theta": 0.7, "crt_ratio": 0.0,
                         "read_ratio": 0.95, "ops_per_txn": 2},
        num_regions=3, shards_per_region=3, replication=1,
        clients_per_region=48,
        duration_ms=1500.0, warmup_ms=60.0, cooldown_ms=30.0, seed=1,
        timing={"service_time": 0.01},
        open_loop={"users_per_region": 34_000, "txn_per_user_s": 6.0},
        label="openloop-100k3r/dast",
    )
    specs.append(ol3)
    specs.append(replace(ol3, parallel_regions=3,
                         label="openloop-100k3r-j3/dast"))
    # Appended: heterogeneous edge (docs/TOPOLOGY.md) — the metro-edge RTT
    # matrix (three close edge sites, one far cloud site) with tiered
    # per-region CPU service times, static (no churn), so the row stays
    # eligible for the partitioned kernel and isolates what heterogeneity
    # alone does to tail latency.
    specs.append(TrialSpec(
        system="dast", workload="tpcc",
        num_regions=4, shards_per_region=1, clients_per_region=4,
        duration_ms=4000.0, warmup_ms=400.0, cooldown_ms=200.0, seed=1,
        rtt_profile="metro-edge", service_multipliers="edge-tiers",
        label="hetero-metro/dast",
    ))
    # (The topology-churn scenario rides in the full matrix through the
    # ``quick:`` block below — the churn counters land in the committed
    # BENCH_fleet.json either way, without running the trial twice.)
    return specs


def _attach_speedups(specs: List[TrialSpec], rows: List[Dict]) -> None:
    """Set ``speedup_vs_serial`` on each parallel row with a serial twin.

    Twins are matched on the full spec payload minus ``parallel_regions``
    and ``parallel_backend`` (labels are display-only), so the pairing
    survives relabelling and a ``--backend process`` twin still finds the
    serial row it should be compared against.  When
    both twins executed in this run the ratio is a live measurement
    (``speedup_source: "measured"``).  When either side was served from
    the cache, the cache's *recorded* wall clock still describes a real
    run of the same fingerprint — use it rather than dropping the column,
    flagged ``speedup_source: "cached"`` so readers know the two sides
    may come from different machine states.
    """
    def twin_key(spec: TrialSpec) -> str:
        payload = spec.payload()
        payload.pop("parallel_regions", None)
        payload.pop("parallel_backend", None)
        return canonical_json(payload)

    serial_rows: Dict[str, Dict] = {}
    for spec, row in zip(specs, rows):
        if not spec.parallel_regions and "failure" not in row:
            serial_rows[twin_key(spec)] = row
    for spec, row in zip(specs, rows):
        if spec.parallel_regions < 2 or "failure" in row:
            continue
        twin = serial_rows.get(twin_key(spec))
        speedup = None
        if twin is not None and row["wall_clock_s"] and twin["wall_clock_s"]:
            speedup = round(twin["wall_clock_s"] / row["wall_clock_s"], 2)
            row["speedup_source"] = (
                "cached" if (row["cached"] or twin["cached"]) else "measured")
        row["speedup_vs_serial"] = speedup


def run_bench(
    jobs: int = 1,
    quick: bool = False,
    cache=None,
    refresh: bool = False,
    progress=None,
    timeout_s: Optional[float] = None,
    parallel_regions: int = 0,
    parallel_backend: str = "auto",
) -> Dict:
    """Run the pinned matrix and reduce it to the ``BENCH_fleet.json`` payload.

    ``parallel_regions`` >= 2 (the CLI's ``-j``) reruns every serial
    multi-region spec under the region-partitioned kernel;
    ``parallel_backend`` picks which backend executes those windows
    (docs/PARALLEL.md).  The overrides move each spec's fingerprint, so
    they never pollute the pinned cache rows — exploration knobs, not
    part of the pinned matrix (which carries its own ``-j3`` and process
    twins).
    """
    from repro.fleet.executor import FleetExecutor

    specs = bench_matrix(quick=quick)
    if parallel_regions >= 2:
        specs = [
            replace(s, parallel_regions=parallel_regions,
                    parallel_backend=parallel_backend)
            if s.num_regions >= 2 and not s.parallel_regions else s
            for s in specs
        ]
    fleet = FleetExecutor(jobs=jobs, cache=cache, refresh=refresh,
                          timeout_s=timeout_s, progress=progress)
    start = time.perf_counter()
    results = fleet.run(specs)
    wall_clock_s = time.perf_counter() - start

    rows = []
    failures = 0
    for spec, result in zip(specs, results):
        if isinstance(result, TrialOutcome):
            row = {
                "label": result.label,
                "fingerprint": result.fingerprint,
                "cached": result.cached,
                "wall_clock_s": result.wall_clock_s,
                "peak_rss_kb": result.peak_rss_kb,
                "throughput_tps": result.row.get("throughput_tps"),
                "irt_p99_ms": result.row.get("irt_p99_ms"),
                "crt_p99_ms": result.row.get("crt_p99_ms"),
                "msgs_total": result.row.get("msgs_total"),
            }
            if result.row.get("topo"):
                # Churn rows: migration/reshard counts from the Summary.
                row["topo"] = result.row["topo"]
            if spec.parallel_regions:
                row["parallel_regions"] = spec.parallel_regions
                row["parallel_mode"] = result.parallel_mode
                row["parallel_backend"] = result.parallel_backend
            rows.append(row)
        else:
            failures += 1
            rows.append({
                "label": result.label,
                "fingerprint": result.fingerprint,
                "failure": result.kind,
                "message": result.message,
            })
    _attach_speedups(specs, rows)

    executed = sum(1 for r in results if isinstance(r, TrialOutcome) and not r.cached)
    cached = sum(1 for r in results if isinstance(r, TrialOutcome) and r.cached)
    return {
        "schema": BENCH_SCHEMA,
        "generated_unix": int(time.time()),
        "code_version": code_version(),
        "quick": quick,
        "jobs": jobs,
        "trials": len(specs),
        "executed": executed,
        "cached": cached,
        "failures": failures,
        "wall_clock_s": round(wall_clock_s, 2),
        "trials_per_min": round(executed / (wall_clock_s / 60.0), 2) if wall_clock_s else 0.0,
        "cache": cache.stats() if cache is not None else None,
        "python": ".".join(str(v) for v in sys.version_info[:3]),
        "cpu_count": os.cpu_count(),
        "rows": rows,
    }
