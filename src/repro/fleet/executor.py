"""Multi-process trial execution with deterministic result ordering.

:func:`run_spec` executes one :class:`~repro.fleet.spec.TrialSpec` in the
current process and reduces it to a :class:`TrialOutcome`; the outcome is
normalised through a JSON round-trip so an in-process run and a worker
run serialise byte-identically (the cross-process determinism guard in
the test suite relies on this).

:class:`FleetExecutor` fans a spec list out over a
``concurrent.futures.ProcessPoolExecutor``:

* **spawn, not fork** — each worker starts from a fresh interpreter, so
  no parent-process global state (id counters, caches, imported-module
  side effects) can leak into a trial;
* **deterministic ordering** — results come back in *submission* order
  regardless of completion order;
* **structured failure, never a hung sweep** — a trial that raises, runs
  past ``timeout_s``, or takes its worker down yields a
  :class:`TrialFailure` in its slot while the other trials complete;
* **cache-aware** — an attached :class:`~repro.fleet.cache.ResultCache`
  is consulted before dispatch and fed after, with hit/miss accounting;
* **observable** — counters and a wall-clock histogram live in a
  :class:`repro.obs.registry.MetricsRegistry`, and an optional
  ``progress`` callback receives one live line per finished trial.
"""

from __future__ import annotations

import json
import time
import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.fleet.spec import TrialFailure, TrialOutcome, TrialSpec

__all__ = ["FleetExecutor", "run_spec", "run_specs", "FleetError"]

FleetResult = Union[TrialOutcome, TrialFailure]


class FleetError(RuntimeError):
    """Raised by strict consumers when a fleet run contains failures."""

    def __init__(self, failures: List[TrialFailure]):
        self.failures = failures
        lines = "; ".join(str(f) for f in failures[:3])
        more = f" (+{len(failures) - 3} more)" if len(failures) > 3 else ""
        super().__init__(f"{len(failures)} trial(s) failed: {lines}{more}")


def _peak_rss_kb() -> int:
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except (ImportError, OSError, ValueError):
        return 0


def _trial_rss_kb(result) -> int:
    """Peak RSS of the whole trial: this process plus every partition
    worker it forked (the process backend's children self-report their
    ``ru_maxrss`` through the collect protocol).  run_spec itself already
    executes inside the fleet pool worker when jobs > 1, so RUSAGE_SELF
    is the right parent term in both deployment shapes."""
    rss = _peak_rss_kb()
    par_group = getattr(result.system, "par_group", None)
    if par_group is not None:
        rss += par_group.child_rss_kb()
    return rss


def _collect_extras(spec: TrialSpec, result) -> Dict:
    """Compute the JSON-safe extras a spec asked for (sorted for determinism)."""
    from repro.errors import ConfigError

    extras: Dict = {}
    for key in sorted(spec.collect):
        opts = spec.collect[key] or {}
        if key == "crt_cdf":
            extras[key] = result.recorder.cdf(crt=True, points=int(opts.get("points", 50)))
        elif key == "irt_cdf":
            extras[key] = result.recorder.cdf(crt=False, points=int(opts.get("points", 50)))
        elif key == "phase_breakdown":
            extras[key] = {
                "without_dependency": result.recorder.phase_breakdown(with_dependency=False),
                "with_dependency": result.recorder.phase_breakdown(with_dependency=True),
            }
        elif key == "timeseries":
            extras[key] = result.recorder.timeseries(
                bucket_ms=float(opts.get("bucket_ms", 500.0)))
        elif key == "stretches":
            extras[key] = result.system.total_stretches()
        else:
            raise ConfigError(f"unknown collect key {key!r}")
    return extras


def run_spec(spec: TrialSpec) -> TrialOutcome:
    """Execute one spec in this process (exceptions propagate to the caller)."""
    from repro.bench.harness import run_trial
    from repro.fleet.hooks import make_hook

    start = time.perf_counter()
    trial = spec.to_trial()
    result = run_trial(trial, hooks=make_hook(spec.hook, spec.hook_params))
    extras = _collect_extras(spec, result)
    outcome = TrialOutcome(
        fingerprint=spec.fingerprint(),
        label=spec.display_label(),
        row=result.summary.as_row(),
        extras=extras,
        committed=result.summary.committed,
        aborted=result.summary.aborted,
        wall_clock_s=round(time.perf_counter() - start, 3),
        peak_rss_kb=_trial_rss_kb(result),
        parallel_mode=result.parallel_mode,
        parallel_backend=spec.parallel_backend,
    )
    result.close()  # reap partition workers / thread pools deterministically
    # Normalise through JSON so in-process results are indistinguishable
    # from worker/cache results: tuples -> lists, int/float identity, and
    # sorted keys so nested dict iteration order (e.g. the row's top-type
    # map) matches what a cache entry deserialises to.
    return TrialOutcome.from_dict(json.loads(json.dumps(outcome.to_dict(), sort_keys=True)))


def _fleet_worker(payload: Dict) -> Dict:
    """Top-level worker entry point (must stay importable for spawn)."""
    try:
        outcome = run_spec(TrialSpec.from_dict(payload))
        return {"ok": True, "outcome": outcome.to_dict()}
    except Exception as exc:
        return {
            "ok": False,
            "kind": "error",
            "message": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }


class FleetExecutor:
    """Run spec lists, optionally parallel, optionally cached.

    ``jobs=1`` runs in-process (no pool); ``jobs>1`` uses a spawn-context
    process pool.  ``timeout_s`` bounds each trial's wall-clock wait once
    the executor starts waiting on it.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache=None,
        refresh: bool = False,
        timeout_s: Optional[float] = None,
        progress: Optional[Callable[[str], None]] = None,
        registry=None,
    ):
        from repro.obs.registry import MetricsRegistry

        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.refresh = refresh
        self.timeout_s = timeout_s
        self.progress = progress
        self.registry = registry or MetricsRegistry(now_fn=time.perf_counter)

    # ------------------------------------------------------------------
    def _emit(self, done: int, total: int, result: FleetResult) -> None:
        self.registry.counter("fleet_trials_done").inc()
        if isinstance(result, TrialOutcome):
            if result.cached:
                self.registry.counter("fleet_cache_hits").inc()
                status = "cached"
            else:
                status = f"{result.wall_clock_s:.1f}s"
            self.registry.histogram("fleet_trial_wall_s").observe(result.wall_clock_s)
        else:
            self.registry.counter("fleet_failures").inc()
            status = result.kind.upper()
        if self.progress is not None:
            self.progress(f"[fleet] {done}/{total} {result.label} {status}")

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[TrialSpec]) -> List[FleetResult]:
        """Execute ``specs``; result ``i`` always corresponds to spec ``i``."""
        specs = list(specs)
        for spec in specs:
            spec.validate()  # fail fast, before any dispatch
        results: List[Optional[FleetResult]] = [None] * len(specs)
        done = 0

        pending: List[int] = []
        for i, spec in enumerate(specs):
            hit = None
            if self.cache is not None and not self.refresh:
                hit = self.cache.get(spec)
            if hit is not None:
                results[i] = hit
                done += 1
                self._emit(done, len(specs), hit)
            else:
                pending.append(i)

        if pending and self.jobs == 1:
            for i in pending:
                results[i] = self._run_inline(specs[i])
                done += 1
                self._emit(done, len(specs), results[i])
        elif pending:
            done = self._run_pool(specs, pending, results, done)

        if self.cache is not None:
            for i in pending:
                result = results[i]
                if isinstance(result, TrialOutcome):
                    self.cache.put(specs[i], result)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _run_inline(self, spec: TrialSpec) -> FleetResult:
        start = time.perf_counter()
        try:
            return run_spec(spec)
        except Exception as exc:
            return TrialFailure(
                fingerprint=spec.fingerprint(),
                label=spec.display_label(),
                kind="error",
                message=f"{type(exc).__name__}: {exc}",
                traceback_text=traceback.format_exc(),
                wall_clock_s=round(time.perf_counter() - start, 3),
            )

    def _run_pool(self, specs, pending, results, done) -> int:
        import multiprocessing

        context = multiprocessing.get_context("spawn")
        pool = ProcessPoolExecutor(
            max_workers=min(self.jobs, len(pending)), mp_context=context,
        )
        timed_out = False
        try:
            futures = {i: pool.submit(_fleet_worker, specs[i].to_dict())
                       for i in pending}
            for i in pending:  # submission order => deterministic results
                spec = specs[i]
                start = time.perf_counter()
                try:
                    payload = futures[i].result(timeout=self.timeout_s)
                except FutureTimeoutError:
                    timed_out = True
                    futures[i].cancel()
                    results[i] = TrialFailure(
                        fingerprint=spec.fingerprint(),
                        label=spec.display_label(),
                        kind="timeout",
                        message=f"trial exceeded {self.timeout_s}s wall clock",
                        wall_clock_s=round(time.perf_counter() - start, 3),
                    )
                except (BrokenExecutor, OSError) as exc:
                    results[i] = TrialFailure(
                        fingerprint=spec.fingerprint(),
                        label=spec.display_label(),
                        kind="crash",
                        message=f"worker died: {type(exc).__name__}: {exc}",
                        wall_clock_s=round(time.perf_counter() - start, 3),
                    )
                else:
                    if payload.get("ok"):
                        results[i] = TrialOutcome.from_dict(payload["outcome"])
                    else:
                        results[i] = TrialFailure(
                            fingerprint=spec.fingerprint(),
                            label=spec.display_label(),
                            kind=payload.get("kind", "error"),
                            message=payload.get("message", "worker error"),
                            traceback_text=payload.get("traceback", ""),
                            wall_clock_s=round(time.perf_counter() - start, 3),
                        )
                done += 1
                self._emit(done, len(specs), results[i])
        finally:
            if timed_out:
                # A worker may be wedged mid-trial; reap it so shutdown
                # (and interpreter exit) can never block on it.
                for proc in getattr(pool, "_processes", {}).values():
                    proc.terminate()
            pool.shutdown(wait=not timed_out, cancel_futures=True)
        return done


def run_specs(
    specs: Sequence[TrialSpec],
    fleet: Optional[FleetExecutor] = None,
    strict: bool = True,
) -> List[FleetResult]:
    """Run ``specs`` through ``fleet`` (or serially in-process when None).

    With ``strict`` (the default) any failure raises :class:`FleetError`
    after the whole sweep finishes, so callers never consume partial rows
    silently.
    """
    if fleet is None:
        fleet = FleetExecutor(jobs=1)
    results = fleet.run(specs)
    if strict:
        bad = [r for r in results if not r.ok]
        if bad:
            raise FleetError(bad)
    return results
