"""repro.fleet — parallel trial orchestration with content-addressed caching.

The fleet turns sweep-shaped evaluation (client sweeps, region sweeps,
chaos matrices, the full §6 artifact set) from a serial single-process
loop into a deterministic multi-process run:

* :class:`TrialSpec` — a JSON-serializable trial description (workloads
  and runtime hooks named by registry key) with a stable content
  fingerprint over config + seed + code version;
* :class:`FleetExecutor` — a spawn-based process pool with deterministic
  result ordering, structured crash/timeout capture, and live progress;
* :class:`ResultCache` — an on-disk ``<fingerprint>.json`` store so
  unchanged configurations are never recomputed;
* :func:`run_bench` — the pinned wall-clock benchmark matrix behind
  ``repro bench`` / ``BENCH_fleet.json``.

See docs/FLEET.md for the determinism contract.
"""

from repro.fleet.benchmark import bench_matrix, run_bench
from repro.fleet.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.fleet.executor import FleetError, FleetExecutor, run_spec, run_specs
from repro.fleet.hooks import HOOKS, make_hook, register_hook
from repro.fleet.spec import (
    TrialFailure,
    TrialOutcome,
    TrialSpec,
    canonical_json,
    code_version,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "FleetError",
    "FleetExecutor",
    "HOOKS",
    "ResultCache",
    "TrialFailure",
    "TrialOutcome",
    "TrialSpec",
    "bench_matrix",
    "canonical_json",
    "code_version",
    "make_hook",
    "register_hook",
    "run_bench",
    "run_spec",
    "run_specs",
]
