"""Named runtime hooks: serializable replacements for ad-hoc closures.

``repro.bench.experiments`` used to wire runtime anomaly schedules
(jitter, RTT steps, clock-skew injection) as closures passed to
:func:`~repro.bench.harness.run_trial`.  Closures cannot cross a process
boundary, so the fleet names them here: a :class:`TrialSpec` carries
``hook="rtt_steps"`` plus a JSON parameter dict, and the worker looks the
hook up at run time.  Every hook runs once, right after system start and
before the simulation runs, with ``(system, params)``.

The ``debug_*`` hooks exist for testing the fleet harness itself (worker
crash / hang / error capture); they are never part of a paper artifact.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, Mapping

from repro.errors import ConfigError

__all__ = ["HOOKS", "register_hook", "make_hook"]


def _rtt_jitter(system, params: Mapping) -> None:
    """Uniform +/- jitter on the cross-region RTT (Fig 9a)."""
    system.network.jitter = float(params.get("jitter", 0.0))


def _rtt_steps(system, params: Mapping) -> None:
    """Abrupt cross-region RTT steps over time (Fig 9b).

    ``factors`` scales the base RTT at ``phase_ms`` intervals, starting
    one phase in: the default reproduces 100 -> 150 -> 100 -> 50 -> 100.
    """
    sim = system.sim
    base = system.network.cross_region_rtt
    phase_ms = float(params.get("phase_ms", 3000.0))
    factors = params.get("factors", (1.5, 1.0, 0.5, 1.0))
    for i, factor in enumerate(factors, start=1):
        sim.schedule(i * phase_ms, system.network.set_cross_region_rtt,
                     base * float(factor))


def _clock_skew_step(system, params: Mapping) -> None:
    """Advance one region's manager clock mid-run (Fig 10a)."""
    skew_ms = float(params.get("skew_ms", 200.0))
    inject_at_ms = float(params.get("inject_at_ms", 4000.0))
    region_index = int(params.get("region_index", 1))

    def inject():
        mgr = system.managers[system.topology.regions[region_index]]
        system.clock_sources[mgr.host].adjust(skew_ms)

    system.sim.schedule(inject_at_ms, inject)


def _asym_delay(system, params: Mapping) -> None:
    """Constant skew on one region plus asymmetric one-way delay (Fig 10b)."""
    system.network.forward_fraction = float(params.get("forward_fraction", 0.5))
    skew_ms = float(params.get("skew_ms", 200.0))
    region = system.topology.regions[int(params.get("region_index", 1))]
    for host, source in system.clock_sources.items():
        if host.startswith(region + "."):
            source.adjust(skew_ms)


def _debug_crash(system, params: Mapping) -> None:
    """Kill the worker process without cleanup (fleet crash-capture tests)."""
    os._exit(int(params.get("code", 42)))


def _debug_sleep(system, params: Mapping) -> None:
    """Stall the worker in wall-clock time (fleet timeout tests)."""
    time.sleep(float(params.get("seconds", 1.0)))


def _debug_error(system, params: Mapping) -> None:
    """Raise inside the trial (fleet structured-error tests)."""
    raise RuntimeError(str(params.get("message", "debug_error hook")))


HOOKS: Dict[str, Callable[[object, Mapping], None]] = {
    "rtt_jitter": _rtt_jitter,
    "rtt_steps": _rtt_steps,
    "clock_skew_step": _clock_skew_step,
    "asym_delay": _asym_delay,
    "debug_crash": _debug_crash,
    "debug_sleep": _debug_sleep,
    "debug_error": _debug_error,
}


def register_hook(name: str, fn: Callable[[object, Mapping], None]) -> None:
    """Add a hook under ``name`` (tests and extensions)."""
    if name in HOOKS:
        raise ConfigError(f"hook {name!r} already registered")
    HOOKS[name] = fn


def make_hook(name, params: Mapping):
    """A ``hooks(system, recorder)`` callable for run_trial, or None."""
    if name is None:
        return None
    try:
        fn = HOOKS[name]
    except KeyError:
        raise ConfigError(f"unknown hook {name!r}; choose from {sorted(HOOKS)}") from None
    frozen = dict(params) if params else {}
    return lambda system, recorder: fn(system, frozen)
