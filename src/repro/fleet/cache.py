"""Content-addressed on-disk result cache for fleet trials.

One file per spec fingerprint: ``<root>/<fingerprint>.json`` holding the
spec, the outcome, and the producing :func:`~repro.fleet.spec.code_version`.
Because the fingerprint already covers config + seed + code version, a
code change simply addresses different files; the stored ``code_version``
is verified again on load as a belt-and-braces guard against manually
copied or corrupted entries.  Unreadable entries are misses, never
errors — a cache can only ever save work.

Writes go through a temp file + :func:`os.replace` so concurrent fleet
processes sharing one cache directory never observe half-written JSON.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Optional

from repro.fleet.spec import TrialOutcome, TrialSpec, code_version

__all__ = ["ResultCache", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".fleet-cache"


class ResultCache:
    """Hit/miss-accounted store of :class:`TrialOutcome` by fingerprint."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR):
        self.root = root
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    def path_for(self, spec: TrialSpec) -> str:
        return os.path.join(self.root, spec.fingerprint() + ".json")

    def get(self, spec: TrialSpec) -> Optional[TrialOutcome]:
        """The cached outcome for ``spec``, or None (counted as a miss)."""
        fingerprint = spec.fingerprint()
        try:
            with open(os.path.join(self.root, fingerprint + ".json")) as fh:
                entry = json.load(fh)
            if entry.get("code_version") != code_version():
                raise ValueError("stale code version")
            if entry.get("fingerprint") != fingerprint:
                raise ValueError("fingerprint mismatch")
            outcome = TrialOutcome.from_dict(entry["outcome"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        outcome.cached = True
        self.hits += 1
        return outcome

    def put(self, spec: TrialSpec, outcome: TrialOutcome) -> str:
        """Store ``outcome`` under the spec's fingerprint; returns the path."""
        os.makedirs(self.root, exist_ok=True)
        path = self.path_for(spec)
        entry = {
            "fingerprint": spec.fingerprint(),
            "code_version": code_version(),
            "spec": spec.to_dict(),
            "outcome": outcome.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh, sort_keys=True, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}

    def describe(self) -> str:
        return (f"cache {self.root}: {self.hits} hits, {self.misses} misses, "
                f"{self.stores} stored")
