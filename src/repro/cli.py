"""Command-line interface: ``python -m repro run|experiment|audit|obs|trace|canary|chaos|topo|bench``.

Examples::

    python -m repro run --system dast --workload tpcc --regions 3
    python -m repro run --system slog --workload payment --crt-ratio 0.4
    python -m repro run --regions 3 --trace-out trial.jsonl
    python -m repro experiment fig2 table3
    python -m repro experiment fig2 fig8 --jobs 4   # parallel, cached
    python -m repro audit --regions 2 --duration-ms 4000
    python -m repro obs --regions 3 --out trial.jsonl --csv-dir obs_csv
    python -m repro trace --workload tpcc           # causal trace + attribution
    python -m repro trace --chrome-out t.json       # load in chrome://tracing
    python -m repro canary capture                  # pin golden traces
    python -m repro canary compare                  # gate a candidate build
    python -m repro chaos --seed 7                  # one generated scenario
    python -m repro chaos --fuzz 10 --seed 0        # seeded scenario matrix
    python -m repro chaos --fuzz 10 --jobs 4        # parallel scenario matrix
    python -m repro chaos --plan plan.json --out report.txt
    python -m repro canary capture --seeds 3        # distribution-level bands
    python -m repro topo --seed 3                   # one generated churn scenario
    python -m repro topo --fuzz 4 --seed 0          # seeded churn matrix
    python -m repro run --topology plan.json --spare-regions 1
    python -m repro run --rtt-profile aws-like --service-profile edge-tiers
    python -m repro bench --jobs 4                  # pinned wall-clock matrix
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.bench import experiments as exp
from repro.bench.auditor import audit_dast_run
from repro.bench.harness import SYSTEMS, Trial, run_trial
from repro.bench.report import format_series, format_table
from repro.workloads.tpca import TpcaWorkload
from repro.workloads.tpcc import PaymentOnlyWorkload, TpccWorkload
from repro.workloads.ycsb import YcsbWorkload

# Each artifact renderer takes (args, fleet); trial-shaped artifacts hand
# ``fleet`` down to repro.bench.experiments so --jobs/--cache apply.
EXPERIMENTS = {
    "table1": lambda a, f: format_table(
        __import__("repro.bench.features", fromlist=["feature_rows"]).feature_rows()),
    "fig2": lambda a, f: format_table(exp.fig2_tail_latency(fleet=f)),
    "table2": lambda a, f: format_table(
        [{"txn_type": t, **v} for t, v in exp.table2_transaction_mix().items()]
    ),
    "fig5": lambda a, f: format_series(exp.fig5_client_sweep(fleet=f)),
    "table3": lambda a, f: format_table(
        [{"case": k, **v} for k, v in exp.table3_crt_breakdown(fleet=f).items() if v]
    ),
    "fig6": lambda a, f: format_series(exp.fig6_crt_ratio_sweep(fleet=f)),
    "table4": lambda a, f: format_table(
        [{"case": k, **v} for k, v in exp.table4_payment_breakdown(fleet=f).items() if v]
    ),
    "fig7": lambda a, f: format_series(exp.fig7_conflict_sweep(fleet=f)),
    "fig8": lambda a, f: format_series(exp.fig8_region_scalability(fleet=f)),
    "fig9a": lambda a, f: format_table(exp.fig9a_rtt_jitter(fleet=f)),
    "fig9b": lambda a, f: format_table(exp.fig9b_rtt_steps(fleet=f)),
    "fig10a": lambda a, f: format_table(exp.fig10a_clock_skew_timeline(fleet=f)),
    "fig10b": lambda a, f: format_table(exp.fig10b_asymmetric_delay(fleet=f)),
    "ablations": lambda a, f: format_table(exp.ablation_sweep(fleet=f)),
}


# Flush window (virtual ms) used when --batching on: just above the 1.0 ms
# PCT report period so consecutive same-destination clock reports coalesce,
# while adding at most ~1 ms to tail latency (within seed noise).
BATCH_WINDOW_MS = 1.25


def _workload_factory(args):
    if args.workload == "tpcc":
        return lambda topo: TpccWorkload(topo)
    if args.workload == "tpca":
        return lambda topo: TpcaWorkload(topo, theta=args.theta, crt_ratio=args.crt_ratio)
    if args.workload == "ycsb":
        return lambda topo: YcsbWorkload(topo, theta=args.theta,
                                         crt_ratio=args.crt_ratio)
    return lambda topo: PaymentOnlyWorkload(topo, crt_ratio=args.crt_ratio)


def _open_loop_dict(args) -> Optional[dict]:
    """OpenLoopConfig knobs from the ``--open-loop-*`` / ``--ol-*`` flags
    (None when ``--open-loop-users`` is absent or 0: closed-loop clients)."""
    users = getattr(args, "open_loop_users", 0)
    if not users:
        return None
    out = {
        "users_per_region": users,
        "txn_per_user_s": args.ol_rate,
        "model": args.ol_model,
        "max_inflight_per_region": args.ol_max_inflight,
    }
    if args.ol_flash_at > 0:
        out.update(
            flash_at_ms=args.ol_flash_at,
            flash_duration_ms=args.ol_flash_duration,
            flash_mult=args.ol_flash_mult,
            flash_redirect=args.ol_flash_redirect,
        )
    return out


def _build_trial(args, obs: bool = False, causal: bool = False) -> Trial:
    topology_plan = None
    topo_path = getattr(args, "topology", None)
    if topo_path:
        from repro.errors import ConfigError
        from repro.topo import TopologyPlan

        try:
            with open(topo_path) as fh:
                topology_plan = TopologyPlan.from_json(fh.read()).validate()
        except OSError as exc:
            raise ConfigError(f"cannot read --topology plan: {exc}") from exc
    return Trial(
        args.system,
        _workload_factory(args),
        num_regions=args.regions,
        shards_per_region=args.shards_per_region,
        clients_per_region=args.clients,
        duration_ms=args.duration_ms,
        seed=args.seed,
        obs=obs,
        obs_interval=getattr(args, "interval", 50.0),
        obs_causal=causal,
        batch_window=_batch_window(args),
        open_loop=_open_loop_dict(args),
        parallel_regions=getattr(args, "parallel_regions", 0),
        parallel_backend=getattr(args, "parallel_backend", "auto"),
        topology_plan=topology_plan,
        rtt_profile=getattr(args, "rtt_profile", None),
        service_multipliers=getattr(args, "service_profile", None),
        spare_regions=getattr(args, "spare_regions", 0),
    )


def _batch_window(args) -> float:
    return BATCH_WINDOW_MS if getattr(args, "batching", "off") == "on" else 0.0


def _check_out_path(path, what: str) -> Optional[str]:
    """Fail fast on an unwritable output location (before the trial runs)."""
    import os

    if path is None:
        return None
    parent = os.path.dirname(os.path.abspath(path))
    if not os.path.isdir(parent):
        return f"{what} directory does not exist: {parent}"
    return None


def cmd_run(args) -> int:
    trace_out = getattr(args, "trace_out", None)
    error = _check_out_path(trace_out, "--trace-out")
    if error:
        print(error, file=sys.stderr)
        return 2
    from repro.errors import ConfigError

    try:
        result = run_trial(_build_trial(args, obs=trace_out is not None))
    except ConfigError as exc:
        print(f"bad trial configuration: {exc}", file=sys.stderr)
        return 2
    print(format_table([result.summary.as_row()]))
    if getattr(args, "parallel_regions", 0):
        if result.serial_reason:
            print(f"kernel: serial ({result.serial_reason})")
        else:
            print(f"kernel: {result.parallel_mode} "
                  f"({args.parallel_regions} partitions requested)")
    if args.breakdown and args.system == "dast":
        for label, dep in (("without value deps", False), ("with value deps", True)):
            breakdown = result.recorder.phase_breakdown(with_dependency=dep)
            if breakdown:
                print(f"{label}: " + ", ".join(
                    f"{k}={v:.1f}" for k, v in breakdown.items()
                ))
    if result.obs is not None:
        from repro.obs import export_jsonl, render_report

        result.obs.stop()
        print()
        print(render_report(result.obs))
        n = export_jsonl(result.obs, trace_out)
        print(f"wrote {n} obs records to {trace_out}")
    return 0


def cmd_obs(args) -> int:
    """Run one observed trial and render/export the observability bundle."""
    from repro.obs import export_csv, export_jsonl, render_report

    if args.interval <= 0:
        print(f"--interval must be positive, got {args.interval}", file=sys.stderr)
        return 2
    error = _check_out_path(args.out, "--out")
    if error:
        print(error, file=sys.stderr)
        return 2
    result = run_trial(_build_trial(args, obs=True))
    bundle = result.obs
    bundle.stop()
    print(format_table([result.summary.as_row()]))
    print()
    print(render_report(bundle))
    if args.out:
        n = export_jsonl(bundle, args.out)
        print(f"wrote {n} obs records to {args.out}")
    if args.csv_dir:
        paths = export_csv(bundle, args.csv_dir)
        print(f"wrote CSV files: {', '.join(sorted(paths.values()))}")
    return 0


def cmd_trace(args) -> int:
    """Run one causally-traced trial: attribution tables, slow-transaction
    exemplars, and a chrome://tracing-loadable trace-event export."""
    from repro.obs import (attribution, export_chrome, export_jsonl,
                           render_attribution, render_exemplar, slowest)

    for path, what in ((args.chrome_out, "--chrome-out"),
                       (args.jsonl_out, "--jsonl-out")):
        error = _check_out_path(path, what)
        if error:
            print(error, file=sys.stderr)
            return 2
    result = run_trial(_build_trial(args, causal=True))
    bundle = result.obs
    bundle.stop()
    print(format_table([result.summary.as_row()]))
    traces = bundle.traces()
    for label, crt in (("CRT", True), ("IRT", False)):
        table = attribution(traces.values(), crt=crt)
        if table["txns"]:
            print()
            print(render_attribution(table, f"{label} critical-path attribution"))
    top = slowest(traces.values(), k=args.top)
    if top:
        print()
        print(f"== slowest {len(top)} transaction(s) ==")
        for trace, path_result in top:
            print(render_exemplar(trace, path_result))
    partial = bundle.partial_count()
    orphans = sum(len(t.orphans()) for t in traces.values())
    print()
    print(f"traces={len(traces)} partial_spans={partial} "
          f"orphan_spans={orphans} "
          f"trace_ctx_bytes={result.system.network.stats.trace_bytes_sent}")
    if args.chrome_out:
        n = export_chrome(traces.values(), args.chrome_out, limit=args.limit)
        print(f"wrote {n} trace events to {args.chrome_out} "
              f"(load in chrome://tracing or ui.perfetto.dev)")
    if args.jsonl_out:
        n = export_jsonl(bundle, args.jsonl_out)
        print(f"wrote {n} obs records to {args.jsonl_out}")
    return 0


def _worst_canary_label(report) -> Optional[str]:
    """The failing scenario with the largest band overshoot (for artifacts)."""
    worst, score = None, 0.0
    for label, entry in report["scenarios"].items():
        if entry["status"] != "fail":
            continue
        overshoot = max(
            (abs(v["delta"]) / v["band"]
             for v in entry.get("violations", ()) if v.get("band")),
            default=0.0,
        )
        if worst is None or overshoot > score:
            worst, score = label, overshoot
    return worst


def cmd_canary(args) -> int:
    """Golden-trace canary: ``capture`` pins the scenario goldens,
    ``compare`` replays the candidate build and gates on the diff."""
    import json
    import os

    from repro.obs.canary import (SCENARIOS, capture, compare, render_report,
                                  scenario_by_label)

    specs = SCENARIOS
    if args.scenario:
        try:
            specs = tuple(scenario_by_label(s) for s in args.scenario)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2

    if args.seeds < 1:
        print(f"--seeds must be >= 1, got {args.seeds}", file=sys.stderr)
        return 2

    if args.mode == "capture":
        error = _check_out_path(args.goldens, "--goldens")
        if error:
            print(error, file=sys.stderr)
            return 2
        doc = capture(specs, progress=_progress, seeds=args.seeds)
        with open(args.goldens, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        suffix = f" ({args.seeds} seeds each)" if args.seeds > 1 else ""
        print(f"captured {len(doc['scenarios'])} golden scenario(s)"
              f"{suffix} to {args.goldens}")
        return 0

    try:
        with open(args.goldens) as fh:
            golden = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"cannot read goldens from {args.goldens}: {exc}", file=sys.stderr)
        return 2
    candidate = capture(specs, progress=_progress)
    report = compare(golden, candidate, tolerance=args.tolerance)
    print(render_report(report))
    if args.chrome_dir and not report["ok"]:
        worst = _worst_canary_label(report)
        if worst is not None:
            from repro.obs import export_chrome
            from repro.obs.canary import run_scenario

            os.makedirs(args.chrome_dir, exist_ok=True)
            result = run_scenario(scenario_by_label(worst))
            path = os.path.join(args.chrome_dir, f"{worst}.trace.json")
            export_chrome(result.obs.traces().values(), path, limit=200)
            print(f"wrote Chrome trace for worst scenario {worst!r} to {path}")
    return 0 if report["ok"] else 1


def _progress(line: str) -> None:
    """Fleet progress goes to stderr so stdout stays a clean artifact."""
    print(line, file=sys.stderr)
    sys.stderr.flush()


def _build_fleet(args):
    """A FleetExecutor from the shared --jobs/--cache/--refresh flags."""
    from repro.fleet import FleetExecutor, ResultCache

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    fleet = FleetExecutor(jobs=args.jobs, cache=cache, refresh=args.refresh,
                          progress=_progress)
    return fleet, cache


def cmd_experiment(args) -> int:
    unknown = [n for n in args.names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; choose from {sorted(EXPERIMENTS)}",
              file=sys.stderr)
        return 2
    fleet, cache = _build_fleet(args)
    failed: List[str] = []
    total_start = time.perf_counter()
    for i, name in enumerate(args.names, 1):
        _progress(f"[experiment] {i}/{len(args.names)} {name} ...")
        start = time.perf_counter()
        try:
            text = EXPERIMENTS[name](args, fleet)
        except Exception as exc:  # keep going: report every broken artifact
            failed.append(name)
            _progress(f"[experiment] {name} FAILED after "
                      f"{time.perf_counter() - start:.1f}s: {exc}")
            continue
        print(f"=== {name} ===")
        print(text)
        print()
        _progress(f"[experiment] {name} done in {time.perf_counter() - start:.1f}s")
    summary = (f"[experiment] {len(args.names) - len(failed)}/{len(args.names)} "
               f"artifacts in {time.perf_counter() - total_start:.1f}s")
    if cache is not None:
        summary += f" ({cache.describe()})"
    if failed:
        summary += f"; FAILED: {', '.join(failed)}"
    _progress(summary)
    return 1 if failed else 0


def cmd_bench(args) -> int:
    """Run the pinned trial matrix and write the BENCH_fleet.json payload."""
    import json

    from repro.fleet import run_bench

    error = _check_out_path(args.out, "--out")
    if error:
        print(error, file=sys.stderr)
        return 2
    fleet, cache = _build_fleet(args)
    payload = run_bench(jobs=args.jobs, quick=args.quick, cache=cache,
                        refresh=args.refresh, progress=_progress,
                        timeout_s=args.timeout_s,
                        parallel_regions=getattr(args, "parallel_regions", 0),
                        parallel_backend=getattr(args, "parallel_backend",
                                                 "auto"))
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    # Parallel-kernel rows get two extra Summary columns; all-serial
    # payloads keep the historical six-column table.
    columns = ["label", "cached", "wall_clock_s",
               "throughput_tps", "irt_p99_ms", "crt_p99_ms"]
    if any("parallel_mode" in row for row in payload["rows"]):
        columns += ["parallel_mode", "speedup_vs_serial"]
    print(format_table([
        {k: ("" if row.get(k, "") is None else row.get(k, "")) for k in columns}
        for row in payload["rows"]
    ]))
    print(f"trials={payload['trials']} executed={payload['executed']} "
          f"cached={payload.get('cached', 0)} "
          f"failures={payload['failures']} wall_clock_s={payload['wall_clock_s']} "
          f"trials_per_min={payload['trials_per_min']}")
    if payload["cache"] is not None:
        stats = payload["cache"]
        hits = stats["hits"] + stats["misses"]
        rate = (stats["hits"] / hits * 100.0) if hits else 0.0
        print(f"cache: {stats['hits']} hits, {stats['misses']} misses "
              f"({rate:.0f}% hit rate), {stats['stores']} stored")
    print(f"wrote {args.out}")
    return 1 if payload["failures"] else 0


def cmd_profile(args) -> int:
    """Profile one TrialSpec: cProfile + kernel hot-callback accounting."""
    import json

    from repro.fleet.spec import TrialSpec
    from repro.perf import profile_spec

    error = _check_out_path(args.out, "--out")
    if error:
        print(error, file=sys.stderr)
        return 2
    if args.spec:
        with open(args.spec) as fh:
            spec = TrialSpec.from_dict(json.load(fh))
    else:
        params = {}
        if args.workload == "tpca":
            params = {"theta": args.theta, "crt_ratio": args.crt_ratio}
        elif args.workload == "payment":
            params = {"crt_ratio": args.crt_ratio}
        spec = TrialSpec(
            system=args.system,
            workload=args.workload,
            workload_params=params,
            num_regions=args.regions,
            shards_per_region=args.shards_per_region,
            clients_per_region=args.clients,
            duration_ms=args.duration_ms,
            seed=args.seed,
            batch_window=_batch_window(args),
        )
    report = profile_spec(spec, sort=args.sort, top=args.top,
                          callsites=args.callsites)
    print(report.to_text())
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


def _chaos_trial_kwargs(args) -> dict:
    """run_chaos_trial keyword arguments shared by serial and parallel paths
    (everything but the per-scenario plan and seed)."""
    return dict(
        system=args.system,
        workload=args.workload,
        num_regions=args.regions,
        shards_per_region=args.shards_per_region,
        clients_per_region=args.clients,
        duration_ms=args.duration_ms,
        drain_ms=args.drain_ms,
        crt_ratio=args.crt_ratio,
        batch_window=_batch_window(args),
    )


def _run_chaos_plan(plan, args):
    from repro.chaos import run_chaos_trial

    return run_chaos_trial(plan, seed=args.seed, **_chaos_trial_kwargs(args))


def cmd_chaos(args) -> int:
    """Run fault scenarios: a plan file, one generated seed, or a fuzz matrix."""
    from repro.chaos import ChaosProfile, FaultPlan, generate_plan, shrink_plan
    from repro.errors import ConfigError

    for path, what in ((args.out, "--out"), (args.shrunk_out, "--shrunk-out"),
                       (args.emit_plan, "--emit-plan")):
        error = _check_out_path(path, what)
        if error:
            print(error, file=sys.stderr)
            return 2

    def generated(seed: int) -> FaultPlan:
        # Baselines lack DAST's recovery paths (manager failover, replica
        # re-add), so generate only the generic network/crash faults for them.
        profile = ChaosProfile(allow_dast_faults=(args.system == "dast"))
        return generate_plan(seed, num_regions=args.regions,
                             shards_per_region=args.shards_per_region,
                             profile=profile)

    if args.emit_plan:
        plan = generated(args.seed)
        with open(args.emit_plan, "w") as fh:
            fh.write(plan.to_json() + "\n")
        print(plan.timeline())
        print(f"wrote plan to {args.emit_plan}")
        return 0

    if args.plan:
        with open(args.plan) as fh:
            scenarios = [(args.seed, FaultPlan.from_json(fh.read()))]
    elif args.fuzz:
        scenarios = [(s, generated(s)) for s in range(args.seed, args.seed + args.fuzz)]
    else:
        scenarios = [(args.seed, generated(args.seed))]

    report_lines = []
    failed = None  # (seed, plan, report_text, shrinkable)
    if args.jobs > 1 and len(scenarios) > 1:
        # Fan the matrix out over worker processes; rows come back in
        # scenario order, so the printed lines match a serial run's (a
        # serial run stops at the first failure, a parallel one reports
        # every scenario it already paid for).
        from repro.chaos.parallel import run_scenarios_parallel

        rows = run_scenarios_parallel(scenarios, _chaos_trial_kwargs(args),
                                      jobs=args.jobs, progress=_progress)
        for (seed, plan), row in zip(scenarios, rows):
            if row.get("crashed"):
                line = f"seed={seed} worker {row['kind']}: {row['message']}"
            else:
                verdict = "OK" if row["ok"] else "FAIL"
                line = (f"seed={seed} events={row['events']} faults={row['faults_applied']} "
                        f"committed={row['committed']} aborted={row['aborted']} {verdict}")
            print(line)
            report_lines.append(line)
            if failed is None and not row.get("ok"):
                failed = (seed, plan, row.get("text", line), not row.get("crashed"))
    else:
        for seed, plan in scenarios:
            args.seed = seed  # the trial (workload/topology) seed tracks the scenario
            try:
                report = _run_chaos_plan(plan, args)
            except ConfigError as exc:
                print(f"plan not runnable against --system {args.system}: {exc}",
                      file=sys.stderr)
                return 2
            verdict = "OK" if report.ok else "FAIL"
            line = (f"seed={seed} events={len(plan)} faults={report.faults_applied} "
                    f"committed={report.committed} aborted={report.aborted} {verdict}")
            print(line)
            report_lines.append(line)
            if not report.ok:
                failed = (seed, plan, report.to_text(), True)
                break

    if failed is None:
        if args.out:
            with open(args.out, "w") as fh:
                fh.write("\n".join(report_lines) + "\nverdict: OK\n")
            print(f"wrote report to {args.out}")
        return 0

    seed, plan, report_text, shrinkable = failed
    args.seed = seed  # shrinker reruns must use the failing scenario's seed
    print()
    print(report_text)
    text = "\n".join(report_lines) + "\n\n" + report_text + "\n"
    if args.shrink and shrinkable:
        result = shrink_plan(
            plan, lambda p: not _run_chaos_plan(p, args).ok, max_runs=args.shrink_budget,
        )
        print()
        print(f"shrunk to {len(result.plan)} events in {result.runs} runs:")
        print(result.plan.timeline())
        print(result.plan.to_json())
        text += f"\nshrunk reproducer ({len(result.plan)} events):\n"
        text += result.plan.timeline() + "\n" + result.plan.to_json() + "\n"
        if args.shrunk_out:
            with open(args.shrunk_out, "w") as fh:
                fh.write(result.plan.to_json() + "\n")
            print(f"wrote shrunk plan to {args.shrunk_out}")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote report to {args.out}")
    return 1


def cmd_topo(args) -> int:
    """Run topology-churn scenarios: a plan file, one generated seed, or a
    fuzz matrix — every scenario gated by the serializability auditor."""
    from repro.chaos.shrink import shrink_plan
    from repro.errors import ConfigError
    from repro.topo import TopologyPlan, generate_topology_plan
    from repro.topo.runner import run_topo_trial

    for path, what in ((args.out, "--out"), (args.shrunk_out, "--shrunk-out"),
                       (args.emit_plan, "--emit-plan")):
        error = _check_out_path(path, what)
        if error:
            print(error, file=sys.stderr)
            return 2

    def generated(seed: int) -> "TopologyPlan":
        return generate_topology_plan(
            seed, num_regions=args.regions,
            shards_per_region=args.shards_per_region,
            spare_regions=args.spare_regions)

    def run_plan(plan, seed: int):
        return run_topo_trial(
            plan, workload=args.workload, num_regions=args.regions,
            shards_per_region=args.shards_per_region,
            spare_regions=args.spare_regions,
            users_per_region=args.users, arrival_rate_tps=args.rate,
            duration_ms=args.duration_ms, drain_ms=args.drain_ms,
            seed=seed, crt_ratio=args.crt_ratio)

    if args.emit_plan:
        plan = generated(args.seed)
        with open(args.emit_plan, "w") as fh:
            fh.write(plan.to_json() + "\n")
        print(plan.timeline())
        print(f"wrote plan to {args.emit_plan}")
        return 0

    if args.plan:
        try:
            with open(args.plan) as fh:
                scenarios = [(args.seed,
                              TopologyPlan.from_json(fh.read()).validate())]
        except (OSError, ConfigError) as exc:
            print(f"bad --plan: {exc}", file=sys.stderr)
            return 2
    elif args.fuzz:
        scenarios = [(s, generated(s))
                     for s in range(args.seed, args.seed + args.fuzz)]
    else:
        scenarios = [(args.seed, generated(args.seed))]

    report_lines = []
    failed = None  # (seed, plan, report_text)
    for seed, plan in scenarios:
        try:
            report = run_plan(plan, seed)
        except ConfigError as exc:
            print(f"plan not runnable: {exc}", file=sys.stderr)
            return 2
        verdict = "OK" if report.ok else "FAIL"
        c = report.counters
        line = (f"seed={seed} events={len(plan)} "
                f"applied={report.events_applied} "
                f"reshards={c.get('reshards', 0)} "
                f"handoffs={c.get('handoff_txns', 0)} "
                f"committed={report.committed} aborted={report.aborted} "
                f"{verdict}")
        print(line)
        report_lines.append(line)
        if not report.ok:
            failed = (seed, plan, report.to_text())
            break

    if failed is None:
        if args.out:
            with open(args.out, "w") as fh:
                fh.write("\n".join(report_lines) + "\nverdict: OK\n")
            print(f"wrote report to {args.out}")
        return 0

    seed, plan, report_text = failed
    print()
    print(report_text)
    text = "\n".join(report_lines) + "\n\n" + report_text + "\n"
    if args.shrink:
        # The chaos ddmin shrinker duck-types TopologyPlan (subset()); the
        # auditor verdict is the oracle.
        result = shrink_plan(
            plan, lambda p: not run_plan(p, seed).ok,
            max_runs=args.shrink_budget,
        )
        print()
        print(f"shrunk to {len(result.plan)} events in {result.runs} runs:")
        print(result.plan.timeline())
        print(result.plan.to_json())
        text += f"\nshrunk reproducer ({len(result.plan)} events):\n"
        text += result.plan.timeline() + "\n" + result.plan.to_json() + "\n"
        if args.shrunk_out:
            with open(args.shrunk_out, "w") as fh:
                fh.write(result.plan.to_json() + "\n")
            print(f"wrote shrunk plan to {args.shrunk_out}")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote report to {args.out}")
    return 1


def cmd_audit(args) -> int:
    args.system = "dast"
    result = run_trial(_build_trial(args))
    result.drain()
    report = audit_dast_run(result.system)
    print(format_table([result.summary.as_row()]))
    print(report)
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DAST (EuroSys 2021) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trial_args(p):
        p.add_argument("--workload", choices=["tpcc", "tpca", "payment", "ycsb"],
                       default="tpcc")
        p.add_argument("--regions", type=int, default=2)
        p.add_argument("--shards-per-region", type=int, default=2)
        p.add_argument("--clients", type=int, default=8)
        p.add_argument("--duration-ms", type=float, default=6000.0)
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--theta", type=float, default=0.5, help="TPC-A zipf coefficient")
        p.add_argument("--crt-ratio", type=float, default=0.1)
        p.add_argument("--open-loop-users", type=int, default=0, metavar="N",
                       help="simulated users per region; >0 replaces the "
                            "closed-loop clients with the open-loop arrival "
                            "engine (docs/WORKLOADS.md)")
        p.add_argument("--ol-rate", type=float, default=1.0, metavar="TPS",
                       help="open loop: transactions per user per second")
        p.add_argument("--ol-model", choices=["poisson", "mmpp"],
                       default="poisson", help="open loop: arrival process")
        p.add_argument("--ol-max-inflight", type=int, default=0, metavar="N",
                       help="open loop: per-region in-flight cap (0 = unlimited)")
        p.add_argument("--ol-flash-at", type=float, default=0.0, metavar="MS",
                       help="open loop: flash-crowd start (virtual ms; 0 = off)")
        p.add_argument("--ol-flash-duration", type=float, default=200.0,
                       metavar="MS", help="open loop: flash-crowd duration")
        p.add_argument("--ol-flash-mult", type=float, default=4.0, metavar="X",
                       help="open loop: flash-crowd rate multiplier")
        p.add_argument("--ol-flash-redirect", type=float, default=0.5,
                       metavar="P", help="open loop: fraction of flash-region "
                                         "arrivals redirected to the hot shard")
        p.add_argument("--batching", choices=["off", "on"], default="off",
                       help="coalesce batchable small messages per destination "
                            f"within a {BATCH_WINDOW_MS} ms flush window")
        p.add_argument("--topology", metavar="FILE", default=None,
                       help="execute a TopologyPlan JSON schedule mid-trial "
                            "(docs/TOPOLOGY.md); forces the serial kernel")
        p.add_argument("--rtt-profile", metavar="NAME", default=None,
                       help="named cross-region RTT preset (aws-like, "
                            "metro-edge)")
        p.add_argument("--service-profile", metavar="NAME", default=None,
                       help="named per-region CPU service-tier preset "
                            "(edge-tiers, uniform-slow)")
        p.add_argument("--spare-regions", type=int, default=0, metavar="N",
                       help="extra initially-empty regions available for "
                            "elastic region_join events")
        p.add_argument("-j", "--parallel-regions", type=int, default=0,
                       metavar="N",
                       help="run the kernel region-partitioned across N "
                            "partitions (docs/PARALLEL.md); virtual-time "
                            "results are identical to the serial kernel")
        p.add_argument("--backend", dest="parallel_backend",
                       choices=["auto", "serial", "lockstep", "threads",
                                "process"],
                       default="auto",
                       help="which partitioned backend executes -j windows "
                            "(docs/PARALLEL.md); 'process' forks one OS "
                            "process per partition")

    run_p = sub.add_parser("run", help="run one trial and print its summary")
    run_p.add_argument("--system", choices=sorted(SYSTEMS), default="dast")
    run_p.add_argument("--breakdown", action="store_true",
                       help="also print the CRT phase breakdown (DAST)")
    run_p.add_argument("--trace-out", metavar="PATH", default=None,
                       help="attach observability, print a phase/probe report, "
                            "and write the obs bundle as JSONL to PATH")
    add_trial_args(run_p)
    run_p.set_defaults(fn=cmd_run)

    obs_p = sub.add_parser(
        "obs", help="run one observed trial: phase spans, probes, exports")
    obs_p.add_argument("--system", choices=sorted(SYSTEMS), default="dast")
    obs_p.add_argument("--out", metavar="PATH", default=None,
                       help="write the obs bundle as JSONL to PATH")
    obs_p.add_argument("--csv-dir", metavar="DIR", default=None,
                       help="write spans/probes/counters CSV files into DIR")
    obs_p.add_argument("--interval", type=float, default=50.0,
                       help="probe sampling interval in virtual ms")
    add_trial_args(obs_p)
    obs_p.set_defaults(fn=cmd_obs)

    trace_p = sub.add_parser(
        "trace", help="run one causally-traced trial: critical-path "
                      "attribution + Chrome trace export")
    trace_p.add_argument("--system", choices=sorted(SYSTEMS), default="dast")
    trace_p.add_argument("--chrome-out", metavar="PATH", default="trace_events.json",
                         help="Chrome trace-event JSON output "
                              "(chrome://tracing / ui.perfetto.dev)")
    trace_p.add_argument("--no-chrome", dest="chrome_out", action="store_const",
                         const=None, help="skip the Chrome trace export")
    trace_p.add_argument("--jsonl-out", metavar="PATH", default=None,
                         help="also write the obs bundle as JSONL to PATH")
    trace_p.add_argument("--top", type=int, default=3,
                         help="slow-transaction exemplars to print")
    trace_p.add_argument("--limit", type=int, default=200,
                         help="max transactions in the Chrome export")
    add_trial_args(trace_p)
    trace_p.set_defaults(fn=cmd_trace)

    canary_p = sub.add_parser(
        "canary", help="golden-trace canary: capture pinned scenarios or "
                       "gate a candidate build against them")
    canary_p.add_argument("mode", choices=["capture", "compare"])
    canary_p.add_argument("--goldens", metavar="PATH", default="CANARY_golden.json",
                          help="golden document to write (capture) or read (compare)")
    canary_p.add_argument("--scenario", action="append", metavar="LABEL",
                          help="restrict to named pinned scenario(s); repeatable")
    canary_p.add_argument("--tolerance", type=float, default=None,
                          help="override every metric's relative tolerance band")
    canary_p.add_argument("--seeds", type=int, default=1, metavar="N",
                          help="capture: run each scenario at N sibling seeds "
                               "and store distribution-level tolerance bands "
                               "(min/max across seeds widen the gate)")
    canary_p.add_argument("--chrome-dir", metavar="DIR", default=None,
                          help="on failure, write the worst-regressing "
                               "scenario's Chrome trace into DIR")
    canary_p.set_defaults(fn=cmd_canary)

    def add_fleet_args(p):
        from repro.fleet import DEFAULT_CACHE_DIR

        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for trial fan-out (1 = in-process)")
        p.add_argument("--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
                       help="content-addressed result cache directory")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk result cache")
        p.add_argument("--refresh", action="store_true",
                       help="ignore cached results but store fresh ones")

    exp_p = sub.add_parser("experiment", help="regenerate paper tables/figures")
    exp_p.add_argument("names", nargs="+", metavar="NAME",
                       help=f"one of: {', '.join(sorted(EXPERIMENTS))}")
    add_fleet_args(exp_p)
    exp_p.set_defaults(fn=cmd_experiment)

    bench_p = sub.add_parser(
        "bench", help="run the pinned wall-clock benchmark matrix")
    bench_p.add_argument("--quick", action="store_true",
                         help="run the trimmed 6-trial matrix")
    bench_p.add_argument("--out", metavar="PATH", default="BENCH_fleet.json",
                         help="where to write the benchmark payload JSON")
    bench_p.add_argument("--timeout-s", type=float, default=None,
                         help="per-trial wall-clock timeout in seconds")
    bench_p.add_argument("-j", "--parallel-regions", type=int, default=0,
                         metavar="N",
                         help="rerun every serial multi-region spec with the "
                              "region-partitioned kernel across N partitions "
                              "(exploration knob; the pinned matrix carries "
                              "its own -j3 twins)")
    bench_p.add_argument("--backend", dest="parallel_backend",
                         choices=["auto", "serial", "lockstep", "threads",
                                  "process"],
                         default="auto",
                         help="backend for the -j override rows "
                              "(docs/PARALLEL.md)")
    add_fleet_args(bench_p)
    bench_p.set_defaults(fn=cmd_bench)

    profile_p = sub.add_parser(
        "profile", help="profile one trial: cProfile + kernel hot-callback report")
    profile_p.add_argument("--system", choices=sorted(SYSTEMS), default="dast")
    profile_p.add_argument("--spec", metavar="FILE", default=None,
                           help="profile a TrialSpec loaded from a JSON file "
                                "(overrides the trial flags)")
    profile_p.add_argument("--sort", choices=["tottime", "cumtime"],
                           default="tottime",
                           help="cProfile ranking for the hot-function table")
    profile_p.add_argument("--top", type=int, default=20,
                           help="hot functions to list")
    profile_p.add_argument("--callsites", type=int, default=15,
                           help="kernel callsites to list")
    profile_p.add_argument("--out", metavar="PATH", default=None,
                           help="also write the full report as JSON to PATH")
    add_trial_args(profile_p)
    profile_p.set_defaults(fn=cmd_profile)

    audit_p = sub.add_parser("audit", help="run DAST, drain, verify serializability")
    add_trial_args(audit_p)
    audit_p.set_defaults(fn=cmd_audit)

    chaos_p = sub.add_parser(
        "chaos", help="run fault scenarios against the audit oracle")
    chaos_p.add_argument("--system", choices=sorted(SYSTEMS), default="dast")
    chaos_p.add_argument("--plan", metavar="FILE", default=None,
                         help="run one fault plan from a JSON file")
    chaos_p.add_argument("--fuzz", type=int, metavar="N", default=0,
                         help="generate and run N seeded scenarios (seed..seed+N-1)")
    chaos_p.add_argument("--emit-plan", metavar="PATH", default=None,
                         help="write the generated plan as JSON and exit")
    chaos_p.add_argument("--drain-ms", type=float, default=6000.0,
                         help="extra virtual ms to drain before the audit")
    chaos_p.add_argument("--out", metavar="PATH", default=None,
                         help="write the audit report text to PATH")
    chaos_p.add_argument("--shrunk-out", metavar="PATH", default=None,
                         help="write the shrunk reproducer plan JSON to PATH")
    chaos_p.add_argument("--no-shrink", dest="shrink", action="store_false",
                         help="skip delta-debugging a failing scenario")
    chaos_p.add_argument("--shrink-budget", type=int, default=48,
                         help="max trial runs the shrinker may spend")
    chaos_p.add_argument("--jobs", type=int, default=1,
                         help="worker processes for --fuzz matrices (1 = serial)")
    add_trial_args(chaos_p)
    chaos_p.set_defaults(fn=cmd_chaos, shrink=True)

    topo_p = sub.add_parser(
        "topo", help="run topology-churn scenarios against the audit oracle "
                     "(docs/TOPOLOGY.md)")
    topo_p.add_argument("--plan", metavar="FILE", default=None,
                        help="run one TopologyPlan from a JSON file")
    topo_p.add_argument("--fuzz", type=int, metavar="N", default=0,
                        help="generate and run N seeded churn scenarios "
                             "(seed..seed+N-1)")
    topo_p.add_argument("--seed", type=int, default=1)
    topo_p.add_argument("--emit-plan", metavar="PATH", default=None,
                        help="write the generated plan as JSON and exit")
    topo_p.add_argument("--workload",
                        choices=["tpcc", "tpca", "payment", "ycsb"],
                        default="tpca")
    topo_p.add_argument("--regions", type=int, default=3)
    topo_p.add_argument("--shards-per-region", type=int, default=1)
    topo_p.add_argument("--spare-regions", type=int, default=1,
                        help="extra initially-empty regions for region_join")
    topo_p.add_argument("--users", type=int, default=60,
                        help="open-loop users per region")
    topo_p.add_argument("--rate", type=float, default=40.0,
                        help="aggregate arrivals per region per second")
    topo_p.add_argument("--crt-ratio", type=float, default=0.1)
    topo_p.add_argument("--duration-ms", type=float, default=3500.0)
    topo_p.add_argument("--drain-ms", type=float, default=9000.0,
                        help="extra virtual ms to drain before the audit")
    topo_p.add_argument("--out", metavar="PATH", default=None,
                        help="write the report text to PATH")
    topo_p.add_argument("--shrunk-out", metavar="PATH", default=None,
                        help="write the shrunk reproducer plan JSON to PATH")
    topo_p.add_argument("--no-shrink", dest="shrink", action="store_false",
                        help="skip delta-debugging a failing scenario")
    topo_p.add_argument("--shrink-budget", type=int, default=32,
                        help="max trial runs the shrinker may spend")
    topo_p.set_defaults(fn=cmd_topo, shrink=True)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
