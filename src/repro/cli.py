"""Command-line interface: ``python -m repro run|experiment|audit|obs|chaos``.

Examples::

    python -m repro run --system dast --workload tpcc --regions 3
    python -m repro run --system slog --workload payment --crt-ratio 0.4
    python -m repro run --regions 3 --trace-out trial.jsonl
    python -m repro experiment fig2 table3
    python -m repro audit --regions 2 --duration-ms 4000
    python -m repro obs --regions 3 --out trial.jsonl --csv-dir obs_csv
    python -m repro chaos --seed 7                  # one generated scenario
    python -m repro chaos --fuzz 10 --seed 0        # seeded scenario matrix
    python -m repro chaos --plan plan.json --out report.txt
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import experiments as exp
from repro.bench.auditor import audit_dast_run
from repro.bench.harness import SYSTEMS, Trial, run_trial
from repro.bench.report import format_series, format_table
from repro.workloads.tpca import TpcaWorkload
from repro.workloads.tpcc import PaymentOnlyWorkload, TpccWorkload

EXPERIMENTS = {
    "table1": lambda a: format_table(__import__("repro.bench.features", fromlist=["feature_rows"]).feature_rows()),
    "fig2": lambda a: format_table(exp.fig2_tail_latency()),
    "table2": lambda a: format_table(
        [{"txn_type": t, **v} for t, v in exp.table2_transaction_mix().items()]
    ),
    "fig5": lambda a: format_series(exp.fig5_client_sweep()),
    "table3": lambda a: format_table(
        [{"case": k, **v} for k, v in exp.table3_crt_breakdown().items() if v]
    ),
    "fig6": lambda a: format_series(exp.fig6_crt_ratio_sweep()),
    "table4": lambda a: format_table(
        [{"case": k, **v} for k, v in exp.table4_payment_breakdown().items() if v]
    ),
    "fig7": lambda a: format_series(exp.fig7_conflict_sweep()),
    "fig8": lambda a: format_series(exp.fig8_region_scalability()),
    "fig9a": lambda a: format_table(exp.fig9a_rtt_jitter()),
    "fig9b": lambda a: format_table(exp.fig9b_rtt_steps()),
    "fig10a": lambda a: format_table(exp.fig10a_clock_skew_timeline()),
    "fig10b": lambda a: format_table(exp.fig10b_asymmetric_delay()),
    "ablations": lambda a: format_table(exp.ablation_sweep()),
}


# Flush window (virtual ms) used when --batching on: just above the 1.0 ms
# PCT report period so consecutive same-destination clock reports coalesce,
# while adding at most ~1 ms to tail latency (within seed noise).
BATCH_WINDOW_MS = 1.25


def _workload_factory(args):
    if args.workload == "tpcc":
        return lambda topo: TpccWorkload(topo)
    if args.workload == "tpca":
        return lambda topo: TpcaWorkload(topo, theta=args.theta, crt_ratio=args.crt_ratio)
    return lambda topo: PaymentOnlyWorkload(topo, crt_ratio=args.crt_ratio)


def _build_trial(args, obs: bool = False) -> Trial:
    return Trial(
        args.system,
        _workload_factory(args),
        num_regions=args.regions,
        shards_per_region=args.shards_per_region,
        clients_per_region=args.clients,
        duration_ms=args.duration_ms,
        seed=args.seed,
        obs=obs,
        obs_interval=getattr(args, "interval", 50.0),
        batch_window=_batch_window(args),
    )


def _batch_window(args) -> float:
    return BATCH_WINDOW_MS if getattr(args, "batching", "off") == "on" else 0.0


def _check_out_path(path, what: str) -> Optional[str]:
    """Fail fast on an unwritable output location (before the trial runs)."""
    import os

    if path is None:
        return None
    parent = os.path.dirname(os.path.abspath(path))
    if not os.path.isdir(parent):
        return f"{what} directory does not exist: {parent}"
    return None


def cmd_run(args) -> int:
    trace_out = getattr(args, "trace_out", None)
    error = _check_out_path(trace_out, "--trace-out")
    if error:
        print(error, file=sys.stderr)
        return 2
    result = run_trial(_build_trial(args, obs=trace_out is not None))
    print(format_table([result.summary.as_row()]))
    if args.breakdown and args.system == "dast":
        for label, dep in (("without value deps", False), ("with value deps", True)):
            breakdown = result.recorder.phase_breakdown(with_dependency=dep)
            if breakdown:
                print(f"{label}: " + ", ".join(
                    f"{k}={v:.1f}" for k, v in breakdown.items()
                ))
    if result.obs is not None:
        from repro.obs import export_jsonl, render_report

        result.obs.stop()
        print()
        print(render_report(result.obs))
        n = export_jsonl(result.obs, trace_out)
        print(f"wrote {n} obs records to {trace_out}")
    return 0


def cmd_obs(args) -> int:
    """Run one observed trial and render/export the observability bundle."""
    from repro.obs import export_csv, export_jsonl, render_report

    if args.interval <= 0:
        print(f"--interval must be positive, got {args.interval}", file=sys.stderr)
        return 2
    error = _check_out_path(args.out, "--out")
    if error:
        print(error, file=sys.stderr)
        return 2
    result = run_trial(_build_trial(args, obs=True))
    bundle = result.obs
    bundle.stop()
    print(format_table([result.summary.as_row()]))
    print()
    print(render_report(bundle))
    if args.out:
        n = export_jsonl(bundle, args.out)
        print(f"wrote {n} obs records to {args.out}")
    if args.csv_dir:
        paths = export_csv(bundle, args.csv_dir)
        print(f"wrote CSV files: {', '.join(sorted(paths.values()))}")
    return 0


def cmd_experiment(args) -> int:
    unknown = [n for n in args.names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; choose from {sorted(EXPERIMENTS)}",
              file=sys.stderr)
        return 2
    for name in args.names:
        print(f"=== {name} ===")
        print(EXPERIMENTS[name](args))
        print()
    return 0


def _run_chaos_plan(plan, args):
    from repro.chaos import run_chaos_trial

    return run_chaos_trial(
        plan,
        system=args.system,
        workload=args.workload,
        num_regions=args.regions,
        shards_per_region=args.shards_per_region,
        clients_per_region=args.clients,
        duration_ms=args.duration_ms,
        drain_ms=args.drain_ms,
        seed=args.seed,
        crt_ratio=args.crt_ratio,
        batch_window=_batch_window(args),
    )


def cmd_chaos(args) -> int:
    """Run fault scenarios: a plan file, one generated seed, or a fuzz matrix."""
    from repro.chaos import ChaosProfile, FaultPlan, generate_plan, shrink_plan
    from repro.errors import ConfigError

    for path, what in ((args.out, "--out"), (args.shrunk_out, "--shrunk-out"),
                       (args.emit_plan, "--emit-plan")):
        error = _check_out_path(path, what)
        if error:
            print(error, file=sys.stderr)
            return 2

    def generated(seed: int) -> FaultPlan:
        # Baselines lack DAST's recovery paths (manager failover, replica
        # re-add), so generate only the generic network/crash faults for them.
        profile = ChaosProfile(allow_dast_faults=(args.system == "dast"))
        return generate_plan(seed, num_regions=args.regions,
                             shards_per_region=args.shards_per_region,
                             profile=profile)

    if args.emit_plan:
        plan = generated(args.seed)
        with open(args.emit_plan, "w") as fh:
            fh.write(plan.to_json() + "\n")
        print(plan.timeline())
        print(f"wrote plan to {args.emit_plan}")
        return 0

    if args.plan:
        with open(args.plan) as fh:
            scenarios = [(args.seed, FaultPlan.from_json(fh.read()))]
    elif args.fuzz:
        scenarios = [(s, generated(s)) for s in range(args.seed, args.seed + args.fuzz)]
    else:
        scenarios = [(args.seed, generated(args.seed))]

    report_lines = []
    failed = None
    for seed, plan in scenarios:
        args.seed = seed  # the trial (workload/topology) seed tracks the scenario
        try:
            report = _run_chaos_plan(plan, args)
        except ConfigError as exc:
            print(f"plan not runnable against --system {args.system}: {exc}",
                  file=sys.stderr)
            return 2
        verdict = "OK" if report.ok else "FAIL"
        line = (f"seed={seed} events={len(plan)} faults={report.faults_applied} "
                f"committed={report.committed} aborted={report.aborted} {verdict}")
        print(line)
        report_lines.append(line)
        if not report.ok:
            failed = (seed, plan, report)
            break

    if failed is None:
        if args.out:
            with open(args.out, "w") as fh:
                fh.write("\n".join(report_lines) + "\nverdict: OK\n")
            print(f"wrote report to {args.out}")
        return 0

    seed, plan, report = failed
    print()
    print(report.to_text())
    text = "\n".join(report_lines) + "\n\n" + report.to_text() + "\n"
    if args.shrink:
        result = shrink_plan(
            plan, lambda p: not _run_chaos_plan(p, args).ok, max_runs=args.shrink_budget,
        )
        print()
        print(f"shrunk to {len(result.plan)} events in {result.runs} runs:")
        print(result.plan.timeline())
        print(result.plan.to_json())
        text += f"\nshrunk reproducer ({len(result.plan)} events):\n"
        text += result.plan.timeline() + "\n" + result.plan.to_json() + "\n"
        if args.shrunk_out:
            with open(args.shrunk_out, "w") as fh:
                fh.write(result.plan.to_json() + "\n")
            print(f"wrote shrunk plan to {args.shrunk_out}")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote report to {args.out}")
    return 1


def cmd_audit(args) -> int:
    args.system = "dast"
    result = run_trial(_build_trial(args))
    result.drain()
    report = audit_dast_run(result.system)
    print(format_table([result.summary.as_row()]))
    print(report)
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DAST (EuroSys 2021) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trial_args(p):
        p.add_argument("--workload", choices=["tpcc", "tpca", "payment"], default="tpcc")
        p.add_argument("--regions", type=int, default=2)
        p.add_argument("--shards-per-region", type=int, default=2)
        p.add_argument("--clients", type=int, default=8)
        p.add_argument("--duration-ms", type=float, default=6000.0)
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--theta", type=float, default=0.5, help="TPC-A zipf coefficient")
        p.add_argument("--crt-ratio", type=float, default=0.1)
        p.add_argument("--batching", choices=["off", "on"], default="off",
                       help="coalesce batchable small messages per destination "
                            f"within a {BATCH_WINDOW_MS} ms flush window")

    run_p = sub.add_parser("run", help="run one trial and print its summary")
    run_p.add_argument("--system", choices=sorted(SYSTEMS), default="dast")
    run_p.add_argument("--breakdown", action="store_true",
                       help="also print the CRT phase breakdown (DAST)")
    run_p.add_argument("--trace-out", metavar="PATH", default=None,
                       help="attach observability, print a phase/probe report, "
                            "and write the obs bundle as JSONL to PATH")
    add_trial_args(run_p)
    run_p.set_defaults(fn=cmd_run)

    obs_p = sub.add_parser(
        "obs", help="run one observed trial: phase spans, probes, exports")
    obs_p.add_argument("--system", choices=sorted(SYSTEMS), default="dast")
    obs_p.add_argument("--out", metavar="PATH", default=None,
                       help="write the obs bundle as JSONL to PATH")
    obs_p.add_argument("--csv-dir", metavar="DIR", default=None,
                       help="write spans/probes/counters CSV files into DIR")
    obs_p.add_argument("--interval", type=float, default=50.0,
                       help="probe sampling interval in virtual ms")
    add_trial_args(obs_p)
    obs_p.set_defaults(fn=cmd_obs)

    exp_p = sub.add_parser("experiment", help="regenerate paper tables/figures")
    exp_p.add_argument("names", nargs="+", metavar="NAME",
                       help=f"one of: {', '.join(sorted(EXPERIMENTS))}")
    exp_p.set_defaults(fn=cmd_experiment)

    audit_p = sub.add_parser("audit", help="run DAST, drain, verify serializability")
    add_trial_args(audit_p)
    audit_p.set_defaults(fn=cmd_audit)

    chaos_p = sub.add_parser(
        "chaos", help="run fault scenarios against the audit oracle")
    chaos_p.add_argument("--system", choices=sorted(SYSTEMS), default="dast")
    chaos_p.add_argument("--plan", metavar="FILE", default=None,
                         help="run one fault plan from a JSON file")
    chaos_p.add_argument("--fuzz", type=int, metavar="N", default=0,
                         help="generate and run N seeded scenarios (seed..seed+N-1)")
    chaos_p.add_argument("--emit-plan", metavar="PATH", default=None,
                         help="write the generated plan as JSON and exit")
    chaos_p.add_argument("--drain-ms", type=float, default=6000.0,
                         help="extra virtual ms to drain before the audit")
    chaos_p.add_argument("--out", metavar="PATH", default=None,
                         help="write the audit report text to PATH")
    chaos_p.add_argument("--shrunk-out", metavar="PATH", default=None,
                         help="write the shrunk reproducer plan JSON to PATH")
    chaos_p.add_argument("--no-shrink", dest="shrink", action="store_false",
                         help="skip delta-debugging a failing scenario")
    chaos_p.add_argument("--shrink-budget", type=int, default=48,
                         help="max trial runs the shrinker may spend")
    add_trial_args(chaos_p)
    chaos_p.set_defaults(fn=cmd_chaos, shrink=True)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
