"""Per-table / per-figure experiment runners (the §6 evaluation).

Each function regenerates one paper artifact at simulation scale and returns
the same rows/series the paper reports.  EXPERIMENTS.md records the measured
values next to the paper's.  Scales are parameterised so the benchmark suite
can run quickly while `examples/full_evaluation.py` can run closer to paper
scale.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.harness import Trial, run_trial
from repro.bench.metrics import percentile
from repro.config import Topology, TopologyConfig
from repro.workloads.base import Workload
from repro.workloads.tpca import TpcaWorkload
from repro.workloads.tpcc import PaymentOnlyWorkload, TpccWorkload

__all__ = [
    "fig2_tail_latency",
    "table2_transaction_mix",
    "fig5_client_sweep",
    "table3_crt_breakdown",
    "fig6_crt_ratio_sweep",
    "table4_payment_breakdown",
    "fig7_conflict_sweep",
    "fig8_region_scalability",
    "fig9a_rtt_jitter",
    "fig9b_rtt_steps",
    "fig10a_clock_skew_timeline",
    "fig10b_asymmetric_delay",
    "ablation_sweep",
]


def _tpcc(topology: Topology) -> Workload:
    return TpccWorkload(topology, seed=topology.config.seed)


# ----------------------------------------------------------------------
# Figure 2: 99th-percentile IRT and CRT latency, TPC-C, all four systems
# ----------------------------------------------------------------------
def fig2_tail_latency(
    systems: Sequence[str] = ("dast", "janus", "tapir", "slog"),
    num_regions: int = 3,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 8000.0,
    seed: int = 1,
) -> List[Dict[str, float]]:
    rows = []
    for system in systems:
        result = run_trial(Trial(
            system, _tpcc,
            num_regions=num_regions, shards_per_region=shards_per_region,
            clients_per_region=clients_per_region, duration_ms=duration_ms,
            seed=seed,
        ))
        rows.append(result.summary.as_row())
    return rows


# ----------------------------------------------------------------------
# Table 2: TPC-C transaction mix, IRT vs CRT share per type
# ----------------------------------------------------------------------
def table2_transaction_mix(
    num_regions: int = 10,
    shards_per_region: int = 2,
    samples: int = 20000,
    seed: int = 1,
) -> Dict[str, Dict[str, float]]:
    config = TopologyConfig(
        num_regions=num_regions, shards_per_region=shards_per_region,
        clients_per_region=4, seed=seed,
    )
    topology = Topology(config)
    workload = TpccWorkload(topology, seed=seed)
    bindings = workload.bind_clients()
    rng = random.Random(seed)
    counts: Dict[str, Dict[str, int]] = {}
    spr = shards_per_region
    for i in range(samples):
        binding = bindings[i % len(bindings)]
        txn = workload.next_transaction(binding, rng)
        regions = {topology.shard_index(s) // spr for s in txn.shard_ids}
        home_region = binding.home_shard_index // spr
        is_crt = regions != {home_region}
        slot = counts.setdefault(txn.txn_type, {"irt": 0, "crt": 0})
        slot["crt" if is_crt else "irt"] += 1
    table: Dict[str, Dict[str, float]] = {}
    for txn_type, slot in sorted(counts.items()):
        total = slot["irt"] + slot["crt"]
        table[txn_type] = {
            "irt_ratio": slot["irt"] / samples,
            "crt_ratio": slot["crt"] / samples,
            "total_ratio": total / samples,
        }
    return table


# ----------------------------------------------------------------------
# Figure 5: throughput + median latencies vs client count; CRT CDFs
# ----------------------------------------------------------------------
def fig5_client_sweep(
    client_counts: Sequence[int] = (2, 4, 8, 16),
    systems: Sequence[str] = ("dast", "janus", "tapir", "slog"),
    num_regions: int = 2,
    shards_per_region: int = 2,
    duration_ms: float = 6000.0,
    seed: int = 1,
) -> Dict[str, List[Dict[str, float]]]:
    series: Dict[str, List[Dict[str, float]]] = {s: [] for s in systems}
    for system in systems:
        for clients in client_counts:
            result = run_trial(Trial(
                system, _tpcc,
                num_regions=num_regions, shards_per_region=shards_per_region,
                clients_per_region=clients, duration_ms=duration_ms, seed=seed,
            ))
            row = result.summary.as_row()
            row["clients_per_region"] = clients
            row["crt_cdf"] = result.recorder.cdf(crt=True, points=20)
            series[system].append(row)
    return series


# ----------------------------------------------------------------------
# Tables 3 & 4: DAST CRT latency phase breakdown
# ----------------------------------------------------------------------
def table3_crt_breakdown(
    num_regions: int = 3,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 8000.0,
    seed: int = 1,
    workload_factory: Optional[Callable[[Topology], Workload]] = None,
) -> Dict[str, Dict[str, float]]:
    result = run_trial(Trial(
        "dast", workload_factory or _tpcc,
        num_regions=num_regions, shards_per_region=shards_per_region,
        clients_per_region=clients_per_region, duration_ms=duration_ms, seed=seed,
    ))
    return {
        "without_dependency": result.recorder.phase_breakdown(with_dependency=False),
        "with_dependency": result.recorder.phase_breakdown(with_dependency=True),
    }


def table4_payment_breakdown(
    crt_ratio: float = 0.4,
    num_regions: int = 3,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 8000.0,
    seed: int = 1,
) -> Dict[str, Dict[str, float]]:
    factory = lambda topo: PaymentOnlyWorkload(topo, seed=seed, crt_ratio=crt_ratio)
    return table3_crt_breakdown(
        num_regions=num_regions, shards_per_region=shards_per_region,
        clients_per_region=clients_per_region, duration_ms=duration_ms,
        seed=seed, workload_factory=factory,
    )


# ----------------------------------------------------------------------
# Figure 6: payment-only, CRT ratio sweep
# ----------------------------------------------------------------------
def fig6_crt_ratio_sweep(
    ratios: Sequence[float] = (0.01, 0.1, 0.4, 0.8),
    systems: Sequence[str] = ("dast", "janus", "tapir", "slog"),
    num_regions: int = 2,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 6000.0,
    seed: int = 1,
) -> Dict[str, List[Dict[str, float]]]:
    series: Dict[str, List[Dict[str, float]]] = {s: [] for s in systems}
    for system in systems:
        for ratio in ratios:
            factory = lambda topo, r=ratio: PaymentOnlyWorkload(topo, seed=seed, crt_ratio=r)
            result = run_trial(Trial(
                system, factory,
                num_regions=num_regions, shards_per_region=shards_per_region,
                clients_per_region=clients_per_region, duration_ms=duration_ms,
                seed=seed,
            ))
            row = result.summary.as_row()
            row["crt_ratio"] = ratio
            series[system].append(row)
    return series


# ----------------------------------------------------------------------
# Figure 7: TPC-A, zipf conflict-rate sweep
# ----------------------------------------------------------------------
def fig7_conflict_sweep(
    thetas: Sequence[float] = (0.5, 0.7, 0.9, 0.99),
    systems: Sequence[str] = ("dast", "janus", "tapir", "slog"),
    num_regions: int = 2,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 6000.0,
    seed: int = 1,
) -> Dict[str, List[Dict[str, float]]]:
    series: Dict[str, List[Dict[str, float]]] = {s: [] for s in systems}
    for system in systems:
        for theta in thetas:
            factory = lambda topo, t=theta: TpcaWorkload(topo, seed=seed, theta=t, crt_ratio=0.1)
            result = run_trial(Trial(
                system, factory,
                num_regions=num_regions, shards_per_region=shards_per_region,
                clients_per_region=clients_per_region, duration_ms=duration_ms,
                seed=seed,
            ))
            row = result.summary.as_row()
            row["theta"] = theta
            series[system].append(row)
    return series


# ----------------------------------------------------------------------
# Figure 8: scalability with the number of regions
# ----------------------------------------------------------------------
def fig8_region_scalability(
    region_counts: Sequence[int] = (2, 4, 8),
    systems: Sequence[str] = ("dast", "janus", "tapir", "slog"),
    shards_per_region: int = 1,
    clients_per_region: int = 6,
    duration_ms: float = 5000.0,
    seed: int = 1,
) -> Dict[str, List[Dict[str, float]]]:
    series: Dict[str, List[Dict[str, float]]] = {s: [] for s in systems}
    for system in systems:
        for regions in region_counts:
            result = run_trial(Trial(
                system, _tpcc,
                num_regions=regions, shards_per_region=shards_per_region,
                clients_per_region=clients_per_region, duration_ms=duration_ms,
                seed=seed,
            ))
            row = result.summary.as_row()
            row["regions"] = regions
            series[system].append(row)
    return series


# ----------------------------------------------------------------------
# Figure 9a: uniform cross-region RTT jitter +/- x
# ----------------------------------------------------------------------
def fig9a_rtt_jitter(
    jitters: Sequence[float] = (0.0, 10.0, 30.0, 50.0),
    num_regions: int = 2,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 6000.0,
    seed: int = 1,
) -> List[Dict[str, float]]:
    rows = []
    for jitter in jitters:
        def hooks(system, recorder, j=jitter):
            system.network.jitter = j

        result = run_trial(Trial(
            "dast", _tpcc,
            num_regions=num_regions, shards_per_region=shards_per_region,
            clients_per_region=clients_per_region, duration_ms=duration_ms,
            seed=seed,
        ), hooks=hooks)
        row = result.summary.as_row()
        row["jitter_ms"] = jitter
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 9b: abrupt RTT steps over time (100 -> 150 -> 100 -> 50 -> 100)
# ----------------------------------------------------------------------
def fig9b_rtt_steps(
    num_regions: int = 2,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    phase_ms: float = 3000.0,
    seed: int = 1,
) -> List[Dict[str, float]]:
    duration = 5 * phase_ms

    def hooks(system, recorder):
        sim = system.sim
        base = system.network.cross_region_rtt
        sim.schedule(1 * phase_ms, system.network.set_cross_region_rtt, base * 1.5)
        sim.schedule(2 * phase_ms, system.network.set_cross_region_rtt, base)
        sim.schedule(3 * phase_ms, system.network.set_cross_region_rtt, base * 0.5)
        sim.schedule(4 * phase_ms, system.network.set_cross_region_rtt, base)

    result = run_trial(Trial(
        "dast", _tpcc,
        num_regions=num_regions, shards_per_region=shards_per_region,
        clients_per_region=clients_per_region, duration_ms=duration,
        warmup_ms=500.0, cooldown_ms=200.0, seed=seed,
    ), hooks=hooks)
    return result.recorder.timeseries(bucket_ms=phase_ms / 4)


# ----------------------------------------------------------------------
# Figure 10a: 200 ms clock-skew step injected at runtime
# ----------------------------------------------------------------------
def fig10a_clock_skew_timeline(
    skew_ms: float = 200.0,
    inject_at_ms: float = 4000.0,
    num_regions: int = 2,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 10000.0,
    seed: int = 1,
) -> List[Dict[str, float]]:
    def hooks(system, recorder):
        def inject():
            # Advance the second region's manager system clock (Fig 10a:
            # "we advanced the system clock of the manager node in the
            # second region by 200ms and shut down its NTP process").
            mgr = system.managers[system.topology.regions[1]]
            system.clock_sources[mgr.host].adjust(skew_ms)

        system.sim.schedule(inject_at_ms, inject)

    result = run_trial(Trial(
        "dast", _tpcc,
        num_regions=num_regions, shards_per_region=shards_per_region,
        clients_per_region=clients_per_region, duration_ms=duration_ms,
        warmup_ms=500.0, cooldown_ms=200.0, seed=seed,
    ), hooks=hooks)
    return result.recorder.timeseries(bucket_ms=500.0)


# ----------------------------------------------------------------------
# Figure 10b: constant skew + asymmetric one-way delay
# ----------------------------------------------------------------------
def fig10b_asymmetric_delay(
    forward_fractions: Sequence[float] = (0.5, 0.6, 0.7),
    skew_ms: float = 200.0,
    num_regions: int = 2,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 6000.0,
    seed: int = 1,
) -> List[Dict[str, float]]:
    rows = []
    for fraction in forward_fractions:
        def hooks(system, recorder, f=fraction):
            system.network.forward_fraction = f
            second = system.topology.regions[1]
            for host, source in system.clock_sources.items():
                if host.startswith(second + "."):
                    source.adjust(skew_ms)

        result = run_trial(Trial(
            "dast", _tpcc,
            num_regions=num_regions, shards_per_region=shards_per_region,
            clients_per_region=clients_per_region, duration_ms=duration_ms,
            seed=seed,
        ), hooks=hooks)
        row = result.summary.as_row()
        row["forward_fraction"] = fraction
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Ablations: stretchable clock / anticipation / calibration
# ----------------------------------------------------------------------
def ablation_sweep(
    num_regions: int = 2,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 6000.0,
    seed: int = 1,
) -> List[Dict[str, float]]:
    variants = [
        ("full", None),
        ("no-stretch", {"stretch": False}),
        ("no-anticipation", {"anticipation": False}),
        ("no-calibration", {"calibration": False}),
    ]
    rows = []
    for name, variant in variants:
        result = run_trial(Trial(
            "dast", _tpcc,
            num_regions=num_regions, shards_per_region=shards_per_region,
            clients_per_region=clients_per_region, duration_ms=duration_ms,
            seed=seed, variant=variant,
        ))
        row = result.summary.as_row()
        row["variant"] = name
        row["stretches"] = result.system.total_stretches()
        rows.append(row)
    return rows
