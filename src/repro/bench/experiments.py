"""Per-table / per-figure experiment runners (the §6 evaluation).

Each function regenerates one paper artifact at simulation scale and returns
the same rows/series the paper reports.  EXPERIMENTS.md records the measured
values next to the paper's.  Scales are parameterised so the benchmark suite
can run quickly while `examples/full_evaluation.py` can run closer to paper
scale.

Every trial-shaped artifact is expressed as a list of JSON-serializable
:class:`repro.fleet.spec.TrialSpec` objects (``<name>_specs`` builders) plus
a reduction over the resulting :class:`~repro.fleet.spec.TrialOutcome` rows.
Passing ``fleet=FleetExecutor(jobs=N, cache=...)`` fans the trials out over
worker processes and serves unchanged configurations from the result cache;
the default ``fleet=None`` runs the same specs serially in-process, so
serial and parallel runs reduce identical outcomes (same seeds ⇒ same
numbers).  ``table2_transaction_mix`` samples the workload generator
directly (no trial) and stays serial.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.harness import Trial, run_trial
from repro.config import Topology, TopologyConfig
from repro.fleet.executor import run_specs
from repro.fleet.spec import TrialSpec
from repro.workloads.base import Workload
from repro.workloads.tpcc import TpccWorkload

__all__ = [
    "fig2_tail_latency",
    "table2_transaction_mix",
    "fig5_client_sweep",
    "table3_crt_breakdown",
    "fig6_crt_ratio_sweep",
    "table4_payment_breakdown",
    "fig7_conflict_sweep",
    "fig8_region_scalability",
    "fig9a_rtt_jitter",
    "fig9b_rtt_steps",
    "fig10a_clock_skew_timeline",
    "fig10b_asymmetric_delay",
    "ablation_sweep",
]


# ----------------------------------------------------------------------
# Figure 2: 99th-percentile IRT and CRT latency, TPC-C, all four systems
# ----------------------------------------------------------------------
def fig2_specs(
    systems: Sequence[str] = ("dast", "janus", "tapir", "slog"),
    num_regions: int = 3,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 8000.0,
    seed: int = 1,
) -> List[TrialSpec]:
    return [
        TrialSpec(
            system=system, workload="tpcc",
            num_regions=num_regions, shards_per_region=shards_per_region,
            clients_per_region=clients_per_region, duration_ms=duration_ms,
            seed=seed, label=f"fig2/{system}",
        )
        for system in systems
    ]


def fig2_tail_latency(
    systems: Sequence[str] = ("dast", "janus", "tapir", "slog"),
    num_regions: int = 3,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 8000.0,
    seed: int = 1,
    fleet=None,
) -> List[Dict[str, float]]:
    specs = fig2_specs(systems, num_regions, shards_per_region,
                       clients_per_region, duration_ms, seed)
    return [outcome.row for outcome in run_specs(specs, fleet=fleet)]


# ----------------------------------------------------------------------
# Table 2: TPC-C transaction mix, IRT vs CRT share per type
# ----------------------------------------------------------------------
def table2_transaction_mix(
    num_regions: int = 10,
    shards_per_region: int = 2,
    samples: int = 20000,
    seed: int = 1,
) -> Dict[str, Dict[str, float]]:
    config = TopologyConfig(
        num_regions=num_regions, shards_per_region=shards_per_region,
        clients_per_region=4, seed=seed,
    )
    topology = Topology(config)
    workload = TpccWorkload(topology, seed=seed)
    bindings = workload.bind_clients()
    rng = random.Random(seed)
    counts: Dict[str, Dict[str, int]] = {}
    spr = shards_per_region
    for i in range(samples):
        binding = bindings[i % len(bindings)]
        txn = workload.next_transaction(binding, rng)
        regions = {topology.shard_index(s) // spr for s in txn.shard_ids}
        home_region = binding.home_shard_index // spr
        is_crt = regions != {home_region}
        slot = counts.setdefault(txn.txn_type, {"irt": 0, "crt": 0})
        slot["crt" if is_crt else "irt"] += 1
    table: Dict[str, Dict[str, float]] = {}
    for txn_type, slot in sorted(counts.items()):
        total = slot["irt"] + slot["crt"]
        table[txn_type] = {
            "irt_ratio": slot["irt"] / samples,
            "crt_ratio": slot["crt"] / samples,
            "total_ratio": total / samples,
        }
    return table


# ----------------------------------------------------------------------
# Figure 5: throughput + median latencies vs client count; CRT CDFs
# ----------------------------------------------------------------------
def fig5_specs(
    client_counts: Sequence[int] = (2, 4, 8, 16),
    systems: Sequence[str] = ("dast", "janus", "tapir", "slog"),
    num_regions: int = 2,
    shards_per_region: int = 2,
    duration_ms: float = 6000.0,
    seed: int = 1,
) -> List[TrialSpec]:
    return [
        TrialSpec(
            system=system, workload="tpcc",
            num_regions=num_regions, shards_per_region=shards_per_region,
            clients_per_region=clients, duration_ms=duration_ms, seed=seed,
            collect={"crt_cdf": {"points": 20}},
            label=f"fig5/{system}/c{clients}",
        )
        for system in systems
        for clients in client_counts
    ]


def fig5_client_sweep(
    client_counts: Sequence[int] = (2, 4, 8, 16),
    systems: Sequence[str] = ("dast", "janus", "tapir", "slog"),
    num_regions: int = 2,
    shards_per_region: int = 2,
    duration_ms: float = 6000.0,
    seed: int = 1,
    fleet=None,
) -> Dict[str, List[Dict[str, float]]]:
    specs = fig5_specs(client_counts, systems, num_regions,
                       shards_per_region, duration_ms, seed)
    outcomes = run_specs(specs, fleet=fleet)
    series: Dict[str, List[Dict[str, float]]] = {s: [] for s in systems}
    it = iter(outcomes)
    for system in systems:
        for clients in client_counts:
            outcome = next(it)
            row = outcome.row
            row["clients_per_region"] = clients
            row["crt_cdf"] = outcome.extras["crt_cdf"]
            series[system].append(row)
    return series


# ----------------------------------------------------------------------
# Tables 3 & 4: DAST CRT latency phase breakdown
# ----------------------------------------------------------------------
def table3_crt_breakdown(
    num_regions: int = 3,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 8000.0,
    seed: int = 1,
    workload_factory: Optional[Callable[[Topology], Workload]] = None,
    workload: str = "tpcc",
    workload_params: Optional[Dict] = None,
    fleet=None,
) -> Dict[str, Dict[str, float]]:
    if workload_factory is not None:
        # Legacy escape hatch: an arbitrary callable cannot cross a process
        # boundary, so run it serially in-process.
        result = run_trial(Trial(
            "dast", workload_factory,
            num_regions=num_regions, shards_per_region=shards_per_region,
            clients_per_region=clients_per_region, duration_ms=duration_ms,
            seed=seed,
        ))
        return {
            "without_dependency": result.recorder.phase_breakdown(with_dependency=False),
            "with_dependency": result.recorder.phase_breakdown(with_dependency=True),
        }
    spec = TrialSpec(
        system="dast", workload=workload, workload_params=workload_params or {},
        num_regions=num_regions, shards_per_region=shards_per_region,
        clients_per_region=clients_per_region, duration_ms=duration_ms,
        seed=seed, collect={"phase_breakdown": {}},
        label=f"table3/{workload}",
    )
    [outcome] = run_specs([spec], fleet=fleet)
    return outcome.extras["phase_breakdown"]


def table4_payment_breakdown(
    crt_ratio: float = 0.4,
    num_regions: int = 3,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 8000.0,
    seed: int = 1,
    fleet=None,
) -> Dict[str, Dict[str, float]]:
    return table3_crt_breakdown(
        num_regions=num_regions, shards_per_region=shards_per_region,
        clients_per_region=clients_per_region, duration_ms=duration_ms,
        seed=seed, workload="payment", workload_params={"crt_ratio": crt_ratio},
        fleet=fleet,
    )


# ----------------------------------------------------------------------
# Figure 6: payment-only, CRT ratio sweep
# ----------------------------------------------------------------------
def fig6_specs(
    ratios: Sequence[float] = (0.01, 0.1, 0.4, 0.8),
    systems: Sequence[str] = ("dast", "janus", "tapir", "slog"),
    num_regions: int = 2,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 6000.0,
    seed: int = 1,
) -> List[TrialSpec]:
    return [
        TrialSpec(
            system=system, workload="payment",
            workload_params={"crt_ratio": ratio},
            num_regions=num_regions, shards_per_region=shards_per_region,
            clients_per_region=clients_per_region, duration_ms=duration_ms,
            seed=seed, label=f"fig6/{system}/crt{ratio}",
        )
        for system in systems
        for ratio in ratios
    ]


def fig6_crt_ratio_sweep(
    ratios: Sequence[float] = (0.01, 0.1, 0.4, 0.8),
    systems: Sequence[str] = ("dast", "janus", "tapir", "slog"),
    num_regions: int = 2,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 6000.0,
    seed: int = 1,
    fleet=None,
) -> Dict[str, List[Dict[str, float]]]:
    specs = fig6_specs(ratios, systems, num_regions, shards_per_region,
                       clients_per_region, duration_ms, seed)
    outcomes = run_specs(specs, fleet=fleet)
    series: Dict[str, List[Dict[str, float]]] = {s: [] for s in systems}
    it = iter(outcomes)
    for system in systems:
        for ratio in ratios:
            row = next(it).row
            row["crt_ratio"] = ratio
            series[system].append(row)
    return series


# ----------------------------------------------------------------------
# Figure 7: TPC-A, zipf conflict-rate sweep
# ----------------------------------------------------------------------
def fig7_specs(
    thetas: Sequence[float] = (0.5, 0.7, 0.9, 0.99),
    systems: Sequence[str] = ("dast", "janus", "tapir", "slog"),
    num_regions: int = 2,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 6000.0,
    seed: int = 1,
) -> List[TrialSpec]:
    return [
        TrialSpec(
            system=system, workload="tpca",
            workload_params={"theta": theta, "crt_ratio": 0.1},
            num_regions=num_regions, shards_per_region=shards_per_region,
            clients_per_region=clients_per_region, duration_ms=duration_ms,
            seed=seed, label=f"fig7/{system}/theta{theta}",
        )
        for system in systems
        for theta in thetas
    ]


def fig7_conflict_sweep(
    thetas: Sequence[float] = (0.5, 0.7, 0.9, 0.99),
    systems: Sequence[str] = ("dast", "janus", "tapir", "slog"),
    num_regions: int = 2,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 6000.0,
    seed: int = 1,
    fleet=None,
) -> Dict[str, List[Dict[str, float]]]:
    specs = fig7_specs(thetas, systems, num_regions, shards_per_region,
                       clients_per_region, duration_ms, seed)
    outcomes = run_specs(specs, fleet=fleet)
    series: Dict[str, List[Dict[str, float]]] = {s: [] for s in systems}
    it = iter(outcomes)
    for system in systems:
        for theta in thetas:
            row = next(it).row
            row["theta"] = theta
            series[system].append(row)
    return series


# ----------------------------------------------------------------------
# Figure 8: scalability with the number of regions
# ----------------------------------------------------------------------
def fig8_specs(
    region_counts: Sequence[int] = (2, 4, 8),
    systems: Sequence[str] = ("dast", "janus", "tapir", "slog"),
    shards_per_region: int = 1,
    clients_per_region: int = 6,
    duration_ms: float = 5000.0,
    seed: int = 1,
) -> List[TrialSpec]:
    return [
        TrialSpec(
            system=system, workload="tpcc",
            num_regions=regions, shards_per_region=shards_per_region,
            clients_per_region=clients_per_region, duration_ms=duration_ms,
            seed=seed, label=f"fig8/{system}/r{regions}",
        )
        for system in systems
        for regions in region_counts
    ]


def fig8_region_scalability(
    region_counts: Sequence[int] = (2, 4, 8),
    systems: Sequence[str] = ("dast", "janus", "tapir", "slog"),
    shards_per_region: int = 1,
    clients_per_region: int = 6,
    duration_ms: float = 5000.0,
    seed: int = 1,
    fleet=None,
) -> Dict[str, List[Dict[str, float]]]:
    specs = fig8_specs(region_counts, systems, shards_per_region,
                       clients_per_region, duration_ms, seed)
    outcomes = run_specs(specs, fleet=fleet)
    series: Dict[str, List[Dict[str, float]]] = {s: [] for s in systems}
    it = iter(outcomes)
    for system in systems:
        for regions in region_counts:
            row = next(it).row
            row["regions"] = regions
            series[system].append(row)
    return series


# ----------------------------------------------------------------------
# Figure 9a: uniform cross-region RTT jitter +/- x
# ----------------------------------------------------------------------
def fig9a_specs(
    jitters: Sequence[float] = (0.0, 10.0, 30.0, 50.0),
    num_regions: int = 2,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 6000.0,
    seed: int = 1,
) -> List[TrialSpec]:
    return [
        TrialSpec(
            system="dast", workload="tpcc",
            num_regions=num_regions, shards_per_region=shards_per_region,
            clients_per_region=clients_per_region, duration_ms=duration_ms,
            seed=seed, hook="rtt_jitter", hook_params={"jitter": jitter},
            label=f"fig9a/jitter{jitter}",
        )
        for jitter in jitters
    ]


def fig9a_rtt_jitter(
    jitters: Sequence[float] = (0.0, 10.0, 30.0, 50.0),
    num_regions: int = 2,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 6000.0,
    seed: int = 1,
    fleet=None,
) -> List[Dict[str, float]]:
    specs = fig9a_specs(jitters, num_regions, shards_per_region,
                        clients_per_region, duration_ms, seed)
    rows = []
    for jitter, outcome in zip(jitters, run_specs(specs, fleet=fleet)):
        row = outcome.row
        row["jitter_ms"] = jitter
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 9b: abrupt RTT steps over time (100 -> 150 -> 100 -> 50 -> 100)
# ----------------------------------------------------------------------
def fig9b_specs(
    num_regions: int = 2,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    phase_ms: float = 3000.0,
    seed: int = 1,
) -> List[TrialSpec]:
    return [TrialSpec(
        system="dast", workload="tpcc",
        num_regions=num_regions, shards_per_region=shards_per_region,
        clients_per_region=clients_per_region, duration_ms=5 * phase_ms,
        warmup_ms=500.0, cooldown_ms=200.0, seed=seed,
        hook="rtt_steps", hook_params={"phase_ms": phase_ms},
        collect={"timeseries": {"bucket_ms": phase_ms / 4}},
        label="fig9b/rtt-steps",
    )]


def fig9b_rtt_steps(
    num_regions: int = 2,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    phase_ms: float = 3000.0,
    seed: int = 1,
    fleet=None,
) -> List[Dict[str, float]]:
    specs = fig9b_specs(num_regions, shards_per_region, clients_per_region,
                        phase_ms, seed)
    [outcome] = run_specs(specs, fleet=fleet)
    return outcome.extras["timeseries"]


# ----------------------------------------------------------------------
# Figure 10a: 200 ms clock-skew step injected at runtime
# ----------------------------------------------------------------------
def fig10a_specs(
    skew_ms: float = 200.0,
    inject_at_ms: float = 4000.0,
    num_regions: int = 2,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 10000.0,
    seed: int = 1,
) -> List[TrialSpec]:
    return [TrialSpec(
        system="dast", workload="tpcc",
        num_regions=num_regions, shards_per_region=shards_per_region,
        clients_per_region=clients_per_region, duration_ms=duration_ms,
        warmup_ms=500.0, cooldown_ms=200.0, seed=seed,
        hook="clock_skew_step",
        hook_params={"skew_ms": skew_ms, "inject_at_ms": inject_at_ms,
                     "region_index": 1},
        collect={"timeseries": {"bucket_ms": 500.0}},
        label="fig10a/clock-skew",
    )]


def fig10a_clock_skew_timeline(
    skew_ms: float = 200.0,
    inject_at_ms: float = 4000.0,
    num_regions: int = 2,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 10000.0,
    seed: int = 1,
    fleet=None,
) -> List[Dict[str, float]]:
    specs = fig10a_specs(skew_ms, inject_at_ms, num_regions,
                         shards_per_region, clients_per_region,
                         duration_ms, seed)
    [outcome] = run_specs(specs, fleet=fleet)
    return outcome.extras["timeseries"]


# ----------------------------------------------------------------------
# Figure 10b: constant skew + asymmetric one-way delay
# ----------------------------------------------------------------------
def fig10b_specs(
    forward_fractions: Sequence[float] = (0.5, 0.6, 0.7),
    skew_ms: float = 200.0,
    num_regions: int = 2,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 6000.0,
    seed: int = 1,
) -> List[TrialSpec]:
    return [
        TrialSpec(
            system="dast", workload="tpcc",
            num_regions=num_regions, shards_per_region=shards_per_region,
            clients_per_region=clients_per_region, duration_ms=duration_ms,
            seed=seed, hook="asym_delay",
            hook_params={"forward_fraction": fraction, "skew_ms": skew_ms,
                         "region_index": 1},
            label=f"fig10b/fwd{fraction}",
        )
        for fraction in forward_fractions
    ]


def fig10b_asymmetric_delay(
    forward_fractions: Sequence[float] = (0.5, 0.6, 0.7),
    skew_ms: float = 200.0,
    num_regions: int = 2,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 6000.0,
    seed: int = 1,
    fleet=None,
) -> List[Dict[str, float]]:
    specs = fig10b_specs(forward_fractions, skew_ms, num_regions,
                         shards_per_region, clients_per_region,
                         duration_ms, seed)
    rows = []
    for fraction, outcome in zip(forward_fractions, run_specs(specs, fleet=fleet)):
        row = outcome.row
        row["forward_fraction"] = fraction
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Ablations: stretchable clock / anticipation / calibration
# ----------------------------------------------------------------------
ABLATION_VARIANTS = [
    ("full", None),
    ("no-stretch", {"stretch": False}),
    ("no-anticipation", {"anticipation": False}),
    ("no-calibration", {"calibration": False}),
]


def ablation_specs(
    num_regions: int = 2,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 6000.0,
    seed: int = 1,
) -> List[TrialSpec]:
    return [
        TrialSpec(
            system="dast", workload="tpcc",
            num_regions=num_regions, shards_per_region=shards_per_region,
            clients_per_region=clients_per_region, duration_ms=duration_ms,
            seed=seed, variant=variant, collect={"stretches": {}},
            label=f"ablation/{name}",
        )
        for name, variant in ABLATION_VARIANTS
    ]


def ablation_sweep(
    num_regions: int = 2,
    shards_per_region: int = 2,
    clients_per_region: int = 8,
    duration_ms: float = 6000.0,
    seed: int = 1,
    fleet=None,
) -> List[Dict[str, float]]:
    specs = ablation_specs(num_regions, shards_per_region,
                           clients_per_region, duration_ms, seed)
    rows = []
    for (name, _), outcome in zip(ABLATION_VARIANTS, run_specs(specs, fleet=fleet)):
        row = outcome.row
        row["variant"] = name
        row["stretches"] = outcome.extras["stretches"]
        rows.append(row)
    return rows
