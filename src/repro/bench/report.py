"""Plain-text table rendering for experiment output (paper-style rows)."""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "format_series"]


def format_table(rows: Sequence[Dict], columns: Sequence[str] = ()) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns else sorted({k for r in rows for k in r})
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(col), max((len(line[i]) for line in cells), default=0))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in cells)
    return f"{header}\n{sep}\n{body}"


def format_series(series: Dict[str, List[Dict]], columns: Sequence[str] = ()) -> str:
    """Render a {system: rows} mapping as stacked labelled tables."""
    chunks = []
    for system in sorted(series):
        chunks.append(f"== {system} ==")
        chunks.append(format_table(series[system], columns))
    return "\n".join(chunks)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    if isinstance(value, dict):
        return ",".join(f"{k}:{v}" for k, v in value.items()) or "-"
    if isinstance(value, (list, tuple)):
        return f"[{len(value)} pts]"
    return str(value)
