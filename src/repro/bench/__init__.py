"""Benchmark harness: metrics, trials, per-figure experiments, auditor."""

from repro.bench.auditor import AuditReport, audit_dast_run, replay_serial
from repro.bench.features import FEATURE_MATRIX, IMPLEMENTED, feature_rows
from repro.bench.harness import SYSTEMS, Trial, TrialResult, run_trial
from repro.bench.metrics import LatencyRecorder, Summary, percentile
from repro.bench.plots import ascii_cdf, ascii_plot, sparkline
from repro.bench.report import format_series, format_table
from repro.bench.traffic import hotspot_ratio, traffic_report

__all__ = [
    "AuditReport",
    "FEATURE_MATRIX",
    "IMPLEMENTED",
    "LatencyRecorder",
    "SYSTEMS",
    "Summary",
    "Trial",
    "TrialResult",
    "ascii_cdf",
    "ascii_plot",
    "hotspot_ratio",
    "sparkline",
    "traffic_report",
    "audit_dast_run",
    "feature_rows",
    "format_series",
    "format_table",
    "percentile",
    "replay_serial",
    "run_trial",
]
