"""Experiment harness: build a system, drive clients, reduce to paper rows.

One :class:`Trial` = one (system, workload, topology, duration) run with a
warm-up/cool-down window, exactly mirroring §6's methodology ("we ran each
experiment for 30 seconds and collected the result in the middle 15s").
Durations here are virtual milliseconds, scaled down for simulation speed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

from repro.baselines.janus import JanusSystem
from repro.baselines.slog import SlogSystem
from repro.baselines.tapir import TapirSystem
from repro.bench.metrics import LatencyRecorder, Summary
from repro.config import TimingConfig, Topology, TopologyConfig
from repro.core.system import DastSystem
from repro.workloads.base import Workload
from repro.workloads.client import ClosedLoopClient, spawn_clients

__all__ = ["SYSTEMS", "Trial", "TrialResult", "run_trial"]

SYSTEMS: Dict[str, Type] = {
    "dast": DastSystem,
    "janus": JanusSystem,
    "tapir": TapirSystem,
    "slog": SlogSystem,
}


class Trial:
    """Specification of one experiment trial."""

    def __init__(
        self,
        system: str,
        workload_factory: Callable[[Topology], Workload],
        num_regions: int = 2,
        shards_per_region: int = 2,
        replication: int = 3,
        clients_per_region: int = 8,
        duration_ms: float = 8000.0,
        warmup_ms: float = 1500.0,
        cooldown_ms: float = 500.0,
        seed: int = 1,
        timing: Optional[TimingConfig] = None,
        clock_skew: float = 0.0,
        variant: Optional[dict] = None,
        obs: bool = False,
        obs_interval: float = 50.0,
        obs_capacity: int = 500_000,
        obs_causal: bool = False,
        obs_wire: bool = False,
        fault_plan=None,
        request_timeout: float = 10000.0,
        batch_window: float = 0.0,
        open_loop: Optional[dict] = None,
        parallel_regions: int = 0,
        parallel_backend: str = "auto",
        topology_plan=None,
        rtt_profile: Optional[str] = None,
        service_multipliers=None,
        spare_regions: int = 0,
    ):
        self.system = system
        self.workload_factory = workload_factory
        self.num_regions = num_regions
        self.shards_per_region = shards_per_region
        self.replication = replication
        self.clients_per_region = clients_per_region
        self.duration_ms = duration_ms
        self.warmup_ms = warmup_ms
        self.cooldown_ms = cooldown_ms
        self.seed = seed
        self.timing = timing or TimingConfig()
        self.clock_skew = clock_skew
        self.variant = variant  # DAST ablation flags (ignored by baselines)
        # Observability: when True the trial runs with a tracer + metrics
        # registry + periodic probes attached and exposes the bundle on the
        # TrialResult.  Off by default: an unobserved trial does zero
        # instrumentation work.
        self.obs = obs
        self.obs_interval = obs_interval
        self.obs_capacity = obs_capacity
        # Causal tracing: record cross-node span trees (implies obs).  The
        # trace context rides the RPC envelopes in a separate byte lane, so
        # latency/byte results are identical with this on or off.
        self.obs_causal = obs_causal
        # Wire-stream capture: record every delivered frame as a
        # (time, src, dst, type, size) tuple on network.wire_log.  The
        # golden canary digests this stream, so protocol changes that
        # happen not to move any span tree still trip the gate.
        self.obs_wire = obs_wire
        # A repro.chaos.FaultPlan compiled onto the system after start; with
        # lossy plans a short request timeout keeps closed-loop clients live.
        self.fault_plan = fault_plan
        self.request_timeout = request_timeout
        # Endpoint-level message coalescing (repro.wire batching).  A
        # non-zero window overrides timing.batch_window for this trial.
        if batch_window:
            self.timing.batch_window = batch_window
        # Open-loop mode: a non-None dict of OpenLoopConfig knobs replaces
        # the closed-loop clients with the aggregate arrival engine and the
        # LatencyRecorder with the (coordinated-omission-free) open-loop
        # recorder.  None (the default) leaves every existing trial —
        # including all pinned golden digests — byte-identical.
        self.open_loop = open_loop
        # Region-partitioned execution (--parallel-regions/-j): >= 2
        # requests the repro.sim.par kernel; repro.sim.par.resolve_mode
        # decides the backend (or declines with a named reason).  Virtual
        # -time outputs are identical either way; only wall-clock changes.
        # parallel_backend picks *which* eligible backend runs the windows
        # ("auto"/"serial"/"lockstep"/"threads"/"process"); it narrows but
        # never widens eligibility.
        self.parallel_regions = parallel_regions
        self.parallel_backend = parallel_backend
        # Dynamic topology (repro.topo): a TopologyPlan of mid-trial events
        # (forces the serial kernel when present), a named cross-region RTT
        # profile, per-region CPU service-time multipliers (name, list, or
        # {region: factor} dict), and spare (initially empty) regions that
        # region_join events can reshard work onto.
        self.topology_plan = topology_plan
        self.rtt_profile = rtt_profile
        self.service_multipliers = service_multipliers
        self.spare_regions = spare_regions


class TrialResult:
    """What a trial produces: the recorder, the system, and the summary."""

    def __init__(self, trial: Trial, system, recorder: LatencyRecorder,
                 clients: List[ClosedLoopClient], obs=None, chaos=None,
                 parallel_mode: str = "serial", serial_reason=None, topo=None):
        self.trial = trial
        self.system = system
        self.recorder = recorder
        self.clients = clients
        self.obs = obs  # ObsBundle when the trial ran with obs=True
        self.chaos = chaos  # ChaosRunner when the trial ran a fault plan
        self.topo = topo  # TopoRunner when the trial ran a topology plan
        # How the kernel actually executed ("serial"/"lockstep"/"threads")
        # and, when parallelism was requested but declined, why.
        self.parallel_mode = parallel_mode
        self.serial_reason = serial_reason
        self.summary: Summary = recorder.summarize(trial.system)
        self.summary.attach_network(getattr(system.network, "stats", None))
        self._attach_topo()

    def _attach_topo(self) -> None:
        counters = getattr(self.system, "topo_counters", None)
        if counters is not None:
            self.summary.attach_topology(counters())

    def drain(self, extra_ms: float = 4000.0) -> None:
        """Stop clients and let in-flight transactions finish (for audits)."""
        for client in self.clients:
            client.stop()
        orderer = getattr(self.system, "orderer", None)
        if orderer is not None:
            orderer.stop()
        # Batch windows coalesce small messages for up to batch_window
        # virtual ms per destination.  Disable coalescing and flush every
        # pending buffer so the post-drain audit can never miss tail
        # messages that were still sitting in an open window.
        for endpoint in getattr(self.system.network, "endpoints", ()):
            endpoint.batch_window = 0.0
            endpoint.flush()
        par_group = getattr(self.system, "par_group", None)
        if par_group is not None:
            # Under the process backend the stops/flushes above only
            # touched the parent's copies; repeat them inside the workers.
            par_group.drain_prep()
        self.system.run(until=self.system.sim.now + extra_ms)
        # Topology events may still be completing when the measured window
        # closes; refresh the summary's churn counters after the drain.
        self._attach_topo()

    def close(self) -> None:
        """Release kernel workers (thread pools / partition processes).

        Idempotent; safe on serial trials.  Process-backend workers are
        also reaped by an atexit hook, but callers that run many trials
        in one process should close each result when done with it.
        """
        par_group = getattr(self.system, "par_group", None)
        if par_group is not None:
            par_group.shutdown()


def _reset_global_id_streams() -> None:
    """Rewind every process-global id stream before a trial.

    Txn/rpc/history ids are drawn from class-level counters, and several
    leak into a trial's *output* — txn ids are strings whose length feeds
    the virtual wire-size model, so a trial's byte accounting would depend
    on how many trials ran earlier in the same process.  Resetting per
    trial makes results position-independent: an in-process run, a fleet
    worker run, and a cached result are byte-identical (the fleet's
    cross-process determinism guard asserts exactly this).
    """
    import itertools

    from repro.core.node import DastNode
    from repro.sim.rpc import Endpoint
    from repro.txn.model import Transaction
    from repro.workloads.tpca import TpcaWorkload
    from repro.workloads.tpcc import transactions as tpcc_transactions

    Transaction._ids = itertools.count(1)
    Endpoint._ids = itertools.count(1)
    DastNode._obl_ids = itertools.count(1)
    TpcaWorkload._history_ids = itertools.count(1)
    tpcc_transactions._history_ids = itertools.count(1)


def run_trial(trial: Trial, hooks: Optional[Callable] = None) -> TrialResult:
    """Execute one trial; ``hooks(system, recorder)`` runs after start (for
    fault/anomaly injection schedules)."""
    _reset_global_id_streams()
    config = TopologyConfig(
        num_regions=trial.num_regions,
        shards_per_region=trial.shards_per_region,
        replication=trial.replication,
        clients_per_region=trial.clients_per_region,
        seed=trial.seed,
        timing=trial.timing,
        spare_regions=getattr(trial, "spare_regions", 0),
    )
    topology = Topology(config)
    workload = trial.workload_factory(topology)
    system_cls = SYSTEMS[trial.system]
    kwargs = {}
    if trial.system == "dast" and trial.variant:
        kwargs["variant"] = trial.variant
    from repro.sim.par import MODE_SERIAL, plan_partitions, resolve_mode

    mode, serial_reason = resolve_mode(
        trial, getattr(trial, "parallel_regions", 0), hooks=hooks is not None)
    if mode != MODE_SERIAL:
        kwargs["parallel"] = mode
        # Sub-region sharding: a single populated region splits into shard
        # partitions (resolve_mode already gated eligibility); None keeps
        # the one-partition-per-region default.
        parts = plan_partitions(topology, getattr(trial, "parallel_regions", 0))
        if parts is not None:
            kwargs["parallel_parts"] = parts
    system = system_cls(
        topology, workload.schemas(), workload.load,
        seed=trial.seed, clock_skew=trial.clock_skew, **kwargs,
    )
    topo_plan = getattr(trial, "topology_plan", None)
    rtt_profile = getattr(trial, "rtt_profile", None)
    service_mults = getattr(trial, "service_multipliers", None)
    if rtt_profile:
        from repro.topo import apply_rtt_profile

        apply_rtt_profile(system.network, topology.regions, rtt_profile)
    if service_mults:
        from repro.topo import (apply_service_multipliers,
                                resolve_service_multipliers)

        apply_service_multipliers(
            system, resolve_service_multipliers(service_mults, topology.regions))
    open_cfg = None
    if trial.open_loop is not None:
        from repro.bench.metrics import OpenLoopRecorder
        from repro.workloads.openloop import OpenLoopConfig

        open_cfg = OpenLoopConfig.from_dict(trial.open_loop)
        if topo_plan is not None or service_mults:
            # The express path bypasses the submit-side freeze check and
            # models a uniform CPU cost; dynamic topology and heterogeneous
            # service times both need the fully general path.
            open_cfg.express = False
        recorder = OpenLoopRecorder(
            warm_start=trial.warmup_ms,
            warm_end=trial.duration_ms - trial.cooldown_ms,
            # Audits need the TxnResults; safe only off the express path
            # (express recycles result objects through a pool).
            keep_results=open_cfg.keep_records and not open_cfg.express,
        )
    else:
        recorder = LatencyRecorder(
            warm_start=trial.warmup_ms,
            warm_end=trial.duration_ms - trial.cooldown_ms,
        )
    bundle = None
    if trial.obs or trial.obs_causal:
        from repro.obs import attach_obs

        bundle = attach_obs(system, capacity=trial.obs_capacity,
                            probe_interval=trial.obs_interval,
                            causal=trial.obs_causal)
    if getattr(trial, "obs_wire", False):
        system.network.wire_log = []
    system.start()
    engine = None
    if open_cfg is not None:
        from repro.workloads.openloop import OpenLoopEngine

        engine = OpenLoopEngine(system, workload, open_cfg, recorder,
                                request_timeout=trial.request_timeout)
        engine.start(until=trial.duration_ms)
        clients = [engine]
    else:
        clients = spawn_clients(system, workload, recorder.record,
                                request_timeout=trial.request_timeout)
    chaos = None
    if trial.fault_plan is not None:
        from repro.chaos.runner import ChaosRunner

        chaos = ChaosRunner(system, trial.fault_plan, origin=0.0).install()
    topo_runner = None
    if topo_plan is not None and getattr(topo_plan, "events", None):
        from repro.topo import TopoRunner

        topo_runner = TopoRunner(system, topo_plan, engine=engine,
                                 origin=0.0).install()
    if hooks is not None:
        hooks(system, recorder)
    par_group = getattr(system, "par_group", None)
    if par_group is not None:
        # The process backend forks at first run; register the runtime
        # objects its workers must reach (recorder, clients, engine,
        # nodes) before that snapshot is taken.  In-process backends
        # share memory, so for them this is pure bookkeeping.
        par_group.register_runtime(recorder=recorder, clients=clients,
                                   engine=engine,
                                   nodes=getattr(system, "nodes", None))
    if open_cfg is not None:
        # Open-loop trials churn through millions of short-lived objects
        # whose lifetimes are purely refcounted (pools hold the rest);
        # cyclic-GC passes are pure overhead at that rate.
        import gc

        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            system.run(until=trial.duration_ms)
        finally:
            if gc_was_enabled:
                gc.enable()
        # The express path batches its traffic accounting; fold it into
        # network.stats before the summary below reads the totals.
        engine.flush_stats()
    else:
        system.run(until=trial.duration_ms)
    return TrialResult(trial, system, recorder, clients, obs=bundle, chaos=chaos,
                       parallel_mode=mode, serial_reason=serial_reason,
                       topo=topo_runner)
