"""Correctness auditor: verifies one-copy serializability of a finished run.

Checks, in increasing strength:

1. **Replica agreement** — all replicas of a shard reach identical state
   digests and executed identical transaction sequences (one-copy).
2. **Timestamp order** — each node executed its transactions in strictly
   increasing timestamp order (Lemma 1's consequence).
3. **Serial equivalence** — replaying all executed transactions *serially*
   in global timestamp order on a freshly loaded database reproduces the
   exact final state of every shard.  Because DAST's serial order *is* the
   timestamp order, any divergence here is a serializability violation.

The serial replay handles cross-shard value dependencies by executing each
transaction's pieces in index order with a shared variable environment —
the sequential semantics the concurrent execution must be equivalent to.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.storage.shard import Shard
from repro.storage.table import TableSchema
from repro.txn.executor import execute_serially
from repro.txn.model import Transaction

__all__ = ["AuditReport", "audit_dast_run", "replay_serial"]


class AuditReport:
    """Findings of one audit: empty lists everywhere means the run is
    one-copy serializable."""

    def __init__(self) -> None:
        self.replica_mismatches: List[str] = []
        self.order_violations: List[str] = []
        self.replay_mismatches: List[str] = []

    @property
    def ok(self) -> bool:
        return not (self.replica_mismatches or self.order_violations or self.replay_mismatches)

    def __repr__(self) -> str:
        if self.ok:
            return "AuditReport(ok)"
        return (
            f"AuditReport(replica={self.replica_mismatches}, "
            f"order={self.order_violations}, replay={self.replay_mismatches})"
        )


def replay_serial(
    transactions: Sequence[Transaction],
    schemas: Sequence[TableSchema],
    loader: Callable[[Shard, int], None],
    shard_ids: Iterable[str],
    shard_index: Callable[[str], int],
) -> Dict[str, Shard]:
    """Execute ``transactions`` one at a time (globally serially)."""
    shards = {}
    for shard_id in shard_ids:
        shard = Shard(shard_id, schemas)
        loader(shard, shard_index(shard_id))
        shards[shard_id] = shard
    for txn in transactions:
        execute_serially(txn, shards)
    return shards


def audit_dast_run(system) -> AuditReport:
    """Audit a finished (quiescent) DastSystem run."""
    report = AuditReport()
    topology = system.topology

    # 1 & 2: replica agreement and per-node timestamp monotonicity.
    retired = getattr(system, "retired_replicas", None) or {}
    executed_by_shard: Dict[str, List[Tuple]] = {}
    for shard_id in topology.all_shards():
        logs = []
        for host in system.catalog.replicas_of(shard_id):
            node = system.nodes.get(host)
            if node is None:
                continue
            log = node.executed_log
            for (a, b) in zip(log, log[1:]):
                if not a[0] < b[0]:
                    report.order_violations.append(
                        f"{host}: executed {b[1]} at {b[0]} after {a[1]} at {a[0]}"
                    )
            logs.append((host, log))
        retired_batches = retired.get(shard_id, [])
        retired_logs = [(host, log)
                        for batch in retired_batches
                        for host, log, _d in batch]
        for host, log in retired_logs:
            for (a, b) in zip(log, log[1:]):
                if not a[0] < b[0]:
                    report.order_violations.append(
                        f"{host}: executed {b[1]} at {b[0]} after {a[1]} at {a[0]}"
                    )
        if not logs and not retired_logs:
            continue
        if retired_logs:
            # The shard was elastically moved (repro.topo): its canonical
            # sequence is the union of retired donors' logs (the prefix,
            # frozen at removal) and live replicas' logs (the suffix, from
            # the checkpoint on).  Every individual log — retired or live —
            # must be a contiguous slice of the merged sequence.
            merged: Dict[str, object] = {}
            for _host, log in retired_logs + logs:
                for ts, txn_id in log:
                    prev = merged.get(txn_id)
                    if prev is not None and prev != ts:
                        report.order_violations.append(
                            f"{txn_id}: executed at different timestamps {prev} vs {ts}"
                        )
                    merged[txn_id] = ts
            baseline = sorted(((ts, t) for t, ts in merged.items()))
            baseline_ids = [t for _, t in baseline]
            for host, log in retired_logs + logs:
                ids = [t for _, t in log]
                if not ids:
                    continue
                start = baseline_ids.index(ids[0]) if ids[0] in merged else -1
                if start < 0 or baseline_ids[start:start + len(ids)] != ids:
                    report.replica_mismatches.append(
                        f"{shard_id}: {host} executed a sequence inconsistent "
                        f"with the merged reshard log"
                    )
            for batch in retired_batches:
                if len({d for _h, _l, d in batch}) > 1:
                    report.replica_mismatches.append(
                        f"{shard_id}: retired replica digests diverge")
        else:
            # A replica added mid-run (Algorithm 4) starts from a
            # checkpoint, so its log is a suffix of the full sequence;
            # compare accordingly.
            baseline_host, baseline = max(logs, key=lambda hl: len(hl[1]))
            baseline_ids = [t for _, t in baseline]
            for host, log in logs:
                ids = [t for _, t in log]
                if ids and baseline_ids[-len(ids):] != ids:
                    report.replica_mismatches.append(
                        f"{shard_id}: {host} executed a different sequence than {baseline_host}"
                    )
        digests = {
            system.nodes[h].shard.digest()
            for h, _log in logs
        }
        if len(digests) > 1:
            report.replica_mismatches.append(f"{shard_id}: replica digests diverge")
        executed_by_shard[shard_id] = baseline

    # 3: serial replay in global timestamp order.
    seen = {}
    for shard_id, log in executed_by_shard.items():
        for ts, txn_id in log:
            prev = seen.get(txn_id)
            if prev is not None and prev != ts:
                report.order_violations.append(
                    f"{txn_id}: executed at different timestamps {prev} vs {ts}"
                )
            seen[txn_id] = ts
    ordered_ids = [txn_id for txn_id, _ts in sorted(seen.items(), key=lambda kv: kv[1])]
    transactions = [system.submitted[t] for t in ordered_ids if t in system.submitted]
    replayed = replay_serial(
        transactions,
        system.schemas,
        system.loader,
        topology.all_shards(),
        topology.shard_index,
    )
    for shard_id in topology.all_shards():
        hosts = [h for h in system.catalog.replicas_of(shard_id) if h in system.nodes]
        if not hosts:
            continue
        live = system.nodes[hosts[0]].shard.digest()
        if live != replayed[shard_id].digest():
            report.replay_mismatches.append(
                f"{shard_id}: concurrent execution differs from the serial replay"
            )
    return report
