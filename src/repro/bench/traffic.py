"""Per-node traffic accounting (the paper's R3 bandwidth argument).

§6.1 reports that each DAST node consumed at most ~41 Mbps, "which can be
fulfilled by existing edge data centers".  The simulator does not model
message bytes, but per-node message *rates* expose the same structural
facts: DAST's traffic is spread across nodes and managers (no hotspot),
while SLOG concentrates every CRT on its global ordering leader.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["traffic_report", "hotspot_ratio"]


def traffic_report(system, window_ms: float) -> List[Dict[str, float]]:
    """Messages sent/received per host, normalized to per-second rates."""
    stats = system.network.stats
    seconds = max(window_ms / 1000.0, 1e-9)
    hosts = set(stats.per_host_sent) | set(stats.per_host_received)
    rows = []
    for host in sorted(hosts):
        rows.append({
            "host": host,
            "sent_per_s": stats.per_host_sent.get(host, 0) / seconds,
            "received_per_s": stats.per_host_received.get(host, 0) / seconds,
        })
    return rows


def hotspot_ratio(system, window_ms: float, role_filter: str = "") -> float:
    """Max over mean received-message rate across (filtered) hosts.

    A ratio near 1 means traffic is evenly spread; a large ratio means one
    host is a hotspot.  ``role_filter`` selects hosts whose name contains
    the substring (e.g. ``".n"`` for data nodes, ``"seq"`` for sequencers).
    """
    rows = [
        r for r in traffic_report(system, window_ms)
        if role_filter in r["host"]
    ]
    if not rows:
        return 0.0
    rates = [r["received_per_s"] for r in rows]
    mean = sum(rates) / len(rates)
    if mean <= 0:
        return 0.0
    return max(rates) / mean
