"""Measurement: latency percentiles split by IRT/CRT, throughput, CDFs.

Follows the paper's methodology (§6): client-side latency including
retries, measured inside a warm window (the paper uses the middle 15 s of a
30 s run), with 99th-percentile tail latency as the headline metric.
"""

from __future__ import annotations

import math
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from repro.txn.result import TxnResult

__all__ = ["LatencyRecorder", "OpenLoopRecorder", "OpenLoopSummary",
           "percentile", "Summary"]


def percentile(values: Sequence[float], p: float, interpolate: bool = False) -> float:
    """Percentile of ``values``; 0 for empty input.

    The default is the classic **nearest-rank** estimator (what the paper's
    figures use, and what every existing call site expects).  With
    ``interpolate=True`` the estimator switches to linear interpolation
    between closest ranks (numpy's default "linear" method), which the
    observability layer uses for histogram/span quantiles where smooth
    estimates matter more than reproducing a sample exactly.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if interpolate:
        rank = max(0.0, min(1.0, p / 100.0)) * (len(ordered) - 1)
        lo = int(math.floor(rank))
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] + (ordered[hi] - ordered[lo]) * frac
    k = max(0, min(len(ordered) - 1, math.ceil(p / 100.0 * len(ordered)) - 1))
    return ordered[k]


class Summary:
    """One experiment trial's headline numbers."""

    def __init__(self, system: str, window: float):
        self.system = system
        self.window = window
        self.throughput = 0.0
        self.irt_median = 0.0
        self.irt_p99 = 0.0
        self.crt_median = 0.0
        self.crt_p99 = 0.0
        self.abort_rate = 0.0
        self.committed = 0
        self.aborted = 0
        self.mean_retries = 0.0
        # Wire traffic totals, filled in by attach_network() when the trial's
        # NetworkStats is available (virtual-byte model of repro.wire).
        self.msgs_total = 0
        self.bytes_total = 0
        self.msg_top_types: List[Tuple[str, int]] = []
        # Topology-churn counters (repro.topo): reshards, region joins and
        # leaves, migrated users, CRT handoffs.  Empty for every trial
        # without topology events, and then absent from as_row().
        self.topo: Dict[str, int] = {}

    def attach_network(self, net_stats) -> "Summary":
        """Fold a :class:`repro.sim.network.NetworkStats` into the summary."""
        if net_stats is not None:
            self.msgs_total = net_stats.messages_sent
            self.bytes_total = net_stats.bytes_sent
            self.msg_top_types = net_stats.top_types(5)
        return self

    def attach_topology(self, counters: Optional[Dict[str, int]]) -> "Summary":
        """Fold a system's ``topo_*`` counter bag into the summary."""
        if counters:
            self.topo = {key: int(value) for key, value in sorted(counters.items())}
        return self

    def as_row(self) -> Dict[str, float]:
        row = {
            "system": self.system,
            "throughput_tps": round(self.throughput, 1),
            "irt_p50_ms": round(self.irt_median, 2),
            "irt_p99_ms": round(self.irt_p99, 2),
            "crt_p50_ms": round(self.crt_median, 2),
            "crt_p99_ms": round(self.crt_p99, 2),
            "abort_rate": round(self.abort_rate, 4),
            "mean_retries": round(self.mean_retries, 3),
            "msgs_total": self.msgs_total,
            "bytes_total": self.bytes_total,
            "msg_top_types": {name: count for name, count in self.msg_top_types},
        }
        if self.topo:
            row["topo"] = dict(self.topo)
        return row

    def __repr__(self) -> str:
        return (
            f"Summary({self.system}: {self.throughput:.0f} tps, "
            f"IRT p50/p99 {self.irt_median:.1f}/{self.irt_p99:.1f} ms, "
            f"CRT p50/p99 {self.crt_median:.1f}/{self.crt_p99:.1f} ms)"
        )


class LatencyRecorder:
    """Collects TxnResults and reduces them to paper-style metrics."""

    def __init__(self, warm_start: float = 0.0, warm_end: float = float("inf")):
        self.warm_start = warm_start
        self.warm_end = warm_end
        self.results: List[TxnResult] = []
        # Out-of-window results are only *counted*; kept as list appends
        # (not a scalar +=) so concurrent region partitions (repro.sim.par
        # threaded backend) can record without a read-modify-write race.
        self._out_of_window: List[None] = []

    @property
    def all_count(self) -> int:
        return len(self.results) + len(self._out_of_window)

    def record(self, result: TxnResult) -> None:
        if self.warm_start <= result.finish_time <= self.warm_end:
            self.results.append(result)
        else:
            self._out_of_window.append(None)

    # ------------------------------------------------------------------
    def _committed(self, crt: Optional[bool] = None) -> List[TxnResult]:
        out = []
        for r in self.results:
            if not r.committed and r.abort_reason != "":
                # Conditional aborts still count as completions (TPC-C
                # new-order rollbacks are part of the workload).
                pass
            if crt is not None and r.is_crt != crt:
                continue
            out.append(r)
        return out

    def latencies(self, crt: Optional[bool] = None) -> List[float]:
        return [r.latency for r in self._committed(crt)]

    def summarize(self, system: str = "") -> Summary:
        window = min(self.warm_end, max((r.finish_time for r in self.results), default=0.0))
        window -= self.warm_start
        window = max(window, 1e-9)
        summary = Summary(system, window)
        summary.committed = sum(1 for r in self.results if r.committed)
        summary.aborted = sum(1 for r in self.results if not r.committed)
        total = summary.committed + summary.aborted
        summary.throughput = total / (window / 1000.0)
        irts = self.latencies(crt=False)
        crts = self.latencies(crt=True)
        summary.irt_median = percentile(irts, 50)
        summary.irt_p99 = percentile(irts, 99)
        summary.crt_median = percentile(crts, 50)
        summary.crt_p99 = percentile(crts, 99)
        summary.abort_rate = (summary.aborted / total) if total else 0.0
        summary.mean_retries = (
            sum(r.retries for r in self.results) / total if total else 0.0
        )
        return summary

    # ------------------------------------------------------------------
    def cdf(self, crt: Optional[bool] = None, points: int = 50) -> List[Tuple[float, float]]:
        """(latency_ms, cumulative fraction) pairs for CDF plots (Fig 5d)."""
        values = sorted(self.latencies(crt))
        if not values:
            return []
        step = max(1, len(values) // points)
        out = []
        for i in range(0, len(values), step):
            out.append((values[i], (i + 1) / len(values)))
        out.append((values[-1], 1.0))
        return out

    def timeseries(self, bucket_ms: float = 500.0) -> List[Dict[str, float]]:
        """Per-bucket throughput and median latency (Figs 9b, 10a)."""
        if not self.results:
            return []
        buckets: Dict[int, List[TxnResult]] = {}
        for r in self.results:
            buckets.setdefault(int(r.finish_time // bucket_ms), []).append(r)
        series = []
        for b in sorted(buckets):
            rs = buckets[b]
            irts = [r.latency for r in rs if not r.is_crt]
            crts = [r.latency for r in rs if r.is_crt]
            series.append(
                {
                    "t_ms": b * bucket_ms,
                    "throughput_tps": len(rs) / (bucket_ms / 1000.0),
                    "irt_p50_ms": percentile(irts, 50),
                    "irt_p99_ms": percentile(irts, 99),
                    "crt_p50_ms": percentile(crts, 50),
                    "crt_p99_ms": percentile(crts, 99),
                }
            )
        return series

    def phase_breakdown(self, with_dependency: Optional[bool] = None) -> Dict[str, float]:
        """Mean CRT phase durations (Tables 3 and 4)."""
        rows = [r for r in self.results if r.is_crt and r.phases]
        if with_dependency is not None:
            rows = [r for r in rows if bool(r.phases.get("has_dep")) == with_dependency]
        if not rows:
            return {}
        keys = ["local_prepare", "remote_prepare", "wait_exec", "wait_input", "wait_output"]
        out = {k: sum(r.phases.get(k, 0.0) for r in rows) / len(rows) for k in keys}
        out["total"] = sum(r.latency for r in rows) / len(rows)
        out["count"] = float(len(rows))
        return out


class OpenLoopSummary(Summary):
    """Summary for open-loop trials.

    The headline IRT/CRT percentiles are anchored at the **intended
    arrival time**, not the submit time — the coordinated-omission-free
    measurement.  The service-anchored (submit→finish) percentiles and the
    queue delay (intended→submit) are carried alongside, so a stalled
    system shows up as a widening open-vs-service gap rather than being
    hidden by deferred submissions.
    """

    def __init__(self, system: str, window: float):
        super().__init__(system, window)
        self.irt_p50_svc = 0.0
        self.irt_p99_svc = 0.0
        self.crt_p99_svc = 0.0
        self.queue_p99 = 0.0
        self.arrivals = 0
        self.failed = 0

    def as_row(self) -> Dict[str, float]:
        row = super().as_row()
        row["open_loop"] = True
        row["irt_p50_svc_ms"] = round(self.irt_p50_svc, 2)
        row["irt_p99_svc_ms"] = round(self.irt_p99_svc, 2)
        row["crt_p99_svc_ms"] = round(self.crt_p99_svc, 2)
        row["queue_p99_ms"] = round(self.queue_p99, 2)
        row["arrivals"] = self.arrivals
        row["failed"] = self.failed
        return row


class _RegionSeries:
    """Compact per-region latency arrays (8 bytes/sample, not a TxnResult)."""

    __slots__ = ("irt_open", "irt_svc", "irt_finish",
                 "crt_open", "crt_svc", "crt_finish",
                 "committed", "aborted", "arrivals", "failures")

    def __init__(self) -> None:
        self.irt_open = array("d")
        self.irt_svc = array("d")
        self.irt_finish = array("d")
        self.crt_open = array("d")
        self.crt_svc = array("d")
        self.crt_finish = array("d")
        self.committed = 0
        self.aborted = 0
        self.arrivals = 0
        self.failures = 0


class OpenLoopRecorder:
    """Aggregate recorder for open-loop trials.

    Unlike :class:`LatencyRecorder` it never retains TxnResult objects —
    at millions of transactions that would dominate memory — only packed
    float arrays of (intended-anchored, submit-anchored, finish) samples,
    split per region so coordinated-omission tests can compare a stalled
    region against the rest.
    """

    def __init__(self, warm_start: float = 0.0, warm_end: float = float("inf"),
                 keep_results: bool = False):
        self.warm_start = warm_start
        self.warm_end = warm_end
        self._regions: Dict[str, _RegionSeries] = {}
        # Post-hoc audits (repro.topo churn trials) need the TxnResult
        # objects themselves.  Only safe off the express path (express
        # recycles results through a pool); the harness enables it for
        # keep_records trials where express is forced off.
        self.keep_results = keep_results
        self.results: List[TxnResult] = []

    # All-arrival and failure totals live in the per-region series (one
    # writer per region under the partitioned kernel's threaded backend);
    # the process-wide view is a sum, never a racy shared scalar.
    @property
    def all_count(self) -> int:
        return sum(s.arrivals for s in self._regions.values())

    @property
    def failed(self) -> int:
        return sum(s.failures for s in self._regions.values())

    def _series(self, region: str) -> _RegionSeries:
        series = self._regions.get(region)
        if series is None:
            series = self._regions[region] = _RegionSeries()
        return series

    # ------------------------------------------------------------------
    def record_result(self, result: TxnResult, intended: float, region: str) -> None:
        """Fold one completed transaction in; ``result`` may be recycled by
        the caller immediately after this returns."""
        series = self._series(region)
        series.arrivals += 1
        if self.keep_results:
            self.results.append(result)
        finish = result.finish_time
        if not (self.warm_start <= finish <= self.warm_end):
            return
        if result.committed:
            series.committed += 1
        else:
            series.aborted += 1
        if result.is_crt:
            series.crt_open.append(finish - intended)
            series.crt_svc.append(finish - result.submit_time)
            series.crt_finish.append(finish)
        else:
            series.irt_open.append(finish - intended)
            series.irt_svc.append(finish - result.submit_time)
            series.irt_finish.append(finish)

    def record_irt(self, committed: bool, intended: float, submit: float,
                   finish: float, region: str) -> None:
        """Express fast path: fold one non-CRT completion from scalars,
        without materialising (or recycling) a TxnResult at all."""
        series = self._series(region)
        series.arrivals += 1
        if finish < self.warm_start or finish > self.warm_end:
            return
        if committed:
            series.committed += 1
        else:
            series.aborted += 1
        series.irt_open.append(finish - intended)
        series.irt_svc.append(finish - submit)
        series.irt_finish.append(finish)

    def record_failure(self, region: str = "") -> None:
        series = self._series(region)
        series.arrivals += 1
        series.failures += 1

    # ------------------------------------------------------------------
    def _merged(self, field: str, region: Optional[str] = None) -> List[float]:
        if region is not None:
            series = self._regions.get(region)
            return list(getattr(series, field)) if series is not None else []
        out: List[float] = []
        for name in sorted(self._regions):
            out.extend(getattr(self._regions[name], field))
        return out

    def open_latencies(self, crt: Optional[bool] = None,
                       region: Optional[str] = None) -> List[float]:
        """Intended-arrival-anchored latencies (the open-loop measurement)."""
        if crt is True:
            return self._merged("crt_open", region)
        if crt is False:
            return self._merged("irt_open", region)
        return self._merged("irt_open", region) + self._merged("crt_open", region)

    def service_latencies(self, crt: Optional[bool] = None,
                          region: Optional[str] = None) -> List[float]:
        """Submit-anchored latencies (what a closed-loop client would see)."""
        if crt is True:
            return self._merged("crt_svc", region)
        if crt is False:
            return self._merged("irt_svc", region)
        return self._merged("irt_svc", region) + self._merged("crt_svc", region)

    # Compatibility with LatencyRecorder call sites (CDF export & CLI):
    # open-loop latencies are the honest headline numbers.
    def latencies(self, crt: Optional[bool] = None) -> List[float]:
        return self.open_latencies(crt)

    # ------------------------------------------------------------------
    def summarize(self, system: str = "") -> OpenLoopSummary:
        finishes = self._merged("irt_finish") + self._merged("crt_finish")
        window = min(self.warm_end, max(finishes, default=0.0)) - self.warm_start
        window = max(window, 1e-9)
        summary = OpenLoopSummary(system, window)
        summary.committed = sum(s.committed for s in self._regions.values())
        summary.aborted = sum(s.aborted for s in self._regions.values())
        summary.arrivals = self.all_count
        summary.failed = self.failed
        total = summary.committed + summary.aborted
        summary.throughput = total / (window / 1000.0)
        irts_open = self.open_latencies(crt=False)
        crts_open = self.open_latencies(crt=True)
        irts_svc = self.service_latencies(crt=False)
        crts_svc = self.service_latencies(crt=True)
        summary.irt_median = percentile(irts_open, 50)
        summary.irt_p99 = percentile(irts_open, 99)
        summary.crt_median = percentile(crts_open, 50)
        summary.crt_p99 = percentile(crts_open, 99)
        summary.irt_p50_svc = percentile(irts_svc, 50)
        summary.irt_p99_svc = percentile(irts_svc, 99)
        summary.crt_p99_svc = percentile(crts_svc, 99)
        queue = [o - s for o, s in zip(irts_open, irts_svc)]
        queue.extend(o - s for o, s in zip(crts_open, crts_svc))
        summary.queue_p99 = percentile(queue, 99)
        summary.abort_rate = (summary.aborted / total) if total else 0.0
        summary.mean_retries = 0.0
        return summary

    # ------------------------------------------------------------------
    def cdf(self, crt: Optional[bool] = None, points: int = 50) -> List[Tuple[float, float]]:
        values = sorted(self.open_latencies(crt))
        if not values:
            return []
        step = max(1, len(values) // points)
        out = []
        for i in range(0, len(values), step):
            out.append((values[i], (i + 1) / len(values)))
        out.append((values[-1], 1.0))
        return out

    def timeseries(self, bucket_ms: float = 500.0) -> List[Dict[str, float]]:
        buckets: Dict[int, Dict[str, List[float]]] = {}
        for crt, fin_field, lat_field in (
            (False, "irt_finish", "irt_open"),
            (True, "crt_finish", "crt_open"),
        ):
            key = "crt" if crt else "irt"
            for finish, lat in zip(self._merged(fin_field), self._merged(lat_field)):
                bucket = buckets.setdefault(int(finish // bucket_ms), {"irt": [], "crt": []})
                bucket[key].append(lat)
        series = []
        for b in sorted(buckets):
            irts, crts = buckets[b]["irt"], buckets[b]["crt"]
            series.append({
                "t_ms": b * bucket_ms,
                "throughput_tps": (len(irts) + len(crts)) / (bucket_ms / 1000.0),
                "irt_p50_ms": percentile(irts, 50),
                "irt_p99_ms": percentile(irts, 99),
                "crt_p50_ms": percentile(crts, 50),
                "crt_p99_ms": percentile(crts, 99),
            })
        return series

    def phase_breakdown(self, with_dependency: Optional[bool] = None) -> Dict[str, float]:
        return {}  # open-loop trials do not retain per-txn phase maps
