"""Measurement: latency percentiles split by IRT/CRT, throughput, CDFs.

Follows the paper's methodology (§6): client-side latency including
retries, measured inside a warm window (the paper uses the middle 15 s of a
30 s run), with 99th-percentile tail latency as the headline metric.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.txn.result import TxnResult

__all__ = ["LatencyRecorder", "percentile", "Summary"]


def percentile(values: Sequence[float], p: float, interpolate: bool = False) -> float:
    """Percentile of ``values``; 0 for empty input.

    The default is the classic **nearest-rank** estimator (what the paper's
    figures use, and what every existing call site expects).  With
    ``interpolate=True`` the estimator switches to linear interpolation
    between closest ranks (numpy's default "linear" method), which the
    observability layer uses for histogram/span quantiles where smooth
    estimates matter more than reproducing a sample exactly.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if interpolate:
        rank = max(0.0, min(1.0, p / 100.0)) * (len(ordered) - 1)
        lo = int(math.floor(rank))
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] + (ordered[hi] - ordered[lo]) * frac
    k = max(0, min(len(ordered) - 1, math.ceil(p / 100.0 * len(ordered)) - 1))
    return ordered[k]


class Summary:
    """One experiment trial's headline numbers."""

    def __init__(self, system: str, window: float):
        self.system = system
        self.window = window
        self.throughput = 0.0
        self.irt_median = 0.0
        self.irt_p99 = 0.0
        self.crt_median = 0.0
        self.crt_p99 = 0.0
        self.abort_rate = 0.0
        self.committed = 0
        self.aborted = 0
        self.mean_retries = 0.0
        # Wire traffic totals, filled in by attach_network() when the trial's
        # NetworkStats is available (virtual-byte model of repro.wire).
        self.msgs_total = 0
        self.bytes_total = 0
        self.msg_top_types: List[Tuple[str, int]] = []

    def attach_network(self, net_stats) -> "Summary":
        """Fold a :class:`repro.sim.network.NetworkStats` into the summary."""
        if net_stats is not None:
            self.msgs_total = net_stats.messages_sent
            self.bytes_total = net_stats.bytes_sent
            self.msg_top_types = net_stats.top_types(5)
        return self

    def as_row(self) -> Dict[str, float]:
        return {
            "system": self.system,
            "throughput_tps": round(self.throughput, 1),
            "irt_p50_ms": round(self.irt_median, 2),
            "irt_p99_ms": round(self.irt_p99, 2),
            "crt_p50_ms": round(self.crt_median, 2),
            "crt_p99_ms": round(self.crt_p99, 2),
            "abort_rate": round(self.abort_rate, 4),
            "mean_retries": round(self.mean_retries, 3),
            "msgs_total": self.msgs_total,
            "bytes_total": self.bytes_total,
            "msg_top_types": {name: count for name, count in self.msg_top_types},
        }

    def __repr__(self) -> str:
        return (
            f"Summary({self.system}: {self.throughput:.0f} tps, "
            f"IRT p50/p99 {self.irt_median:.1f}/{self.irt_p99:.1f} ms, "
            f"CRT p50/p99 {self.crt_median:.1f}/{self.crt_p99:.1f} ms)"
        )


class LatencyRecorder:
    """Collects TxnResults and reduces them to paper-style metrics."""

    def __init__(self, warm_start: float = 0.0, warm_end: float = float("inf")):
        self.warm_start = warm_start
        self.warm_end = warm_end
        self.results: List[TxnResult] = []
        self.all_count = 0

    def record(self, result: TxnResult) -> None:
        self.all_count += 1
        if self.warm_start <= result.finish_time <= self.warm_end:
            self.results.append(result)

    # ------------------------------------------------------------------
    def _committed(self, crt: Optional[bool] = None) -> List[TxnResult]:
        out = []
        for r in self.results:
            if not r.committed and r.abort_reason != "":
                # Conditional aborts still count as completions (TPC-C
                # new-order rollbacks are part of the workload).
                pass
            if crt is not None and r.is_crt != crt:
                continue
            out.append(r)
        return out

    def latencies(self, crt: Optional[bool] = None) -> List[float]:
        return [r.latency for r in self._committed(crt)]

    def summarize(self, system: str = "") -> Summary:
        window = min(self.warm_end, max((r.finish_time for r in self.results), default=0.0))
        window -= self.warm_start
        window = max(window, 1e-9)
        summary = Summary(system, window)
        summary.committed = sum(1 for r in self.results if r.committed)
        summary.aborted = sum(1 for r in self.results if not r.committed)
        total = summary.committed + summary.aborted
        summary.throughput = total / (window / 1000.0)
        irts = self.latencies(crt=False)
        crts = self.latencies(crt=True)
        summary.irt_median = percentile(irts, 50)
        summary.irt_p99 = percentile(irts, 99)
        summary.crt_median = percentile(crts, 50)
        summary.crt_p99 = percentile(crts, 99)
        summary.abort_rate = (summary.aborted / total) if total else 0.0
        summary.mean_retries = (
            sum(r.retries for r in self.results) / total if total else 0.0
        )
        return summary

    # ------------------------------------------------------------------
    def cdf(self, crt: Optional[bool] = None, points: int = 50) -> List[Tuple[float, float]]:
        """(latency_ms, cumulative fraction) pairs for CDF plots (Fig 5d)."""
        values = sorted(self.latencies(crt))
        if not values:
            return []
        step = max(1, len(values) // points)
        out = []
        for i in range(0, len(values), step):
            out.append((values[i], (i + 1) / len(values)))
        out.append((values[-1], 1.0))
        return out

    def timeseries(self, bucket_ms: float = 500.0) -> List[Dict[str, float]]:
        """Per-bucket throughput and median latency (Figs 9b, 10a)."""
        if not self.results:
            return []
        buckets: Dict[int, List[TxnResult]] = {}
        for r in self.results:
            buckets.setdefault(int(r.finish_time // bucket_ms), []).append(r)
        series = []
        for b in sorted(buckets):
            rs = buckets[b]
            irts = [r.latency for r in rs if not r.is_crt]
            crts = [r.latency for r in rs if r.is_crt]
            series.append(
                {
                    "t_ms": b * bucket_ms,
                    "throughput_tps": len(rs) / (bucket_ms / 1000.0),
                    "irt_p50_ms": percentile(irts, 50),
                    "irt_p99_ms": percentile(irts, 99),
                    "crt_p50_ms": percentile(crts, 50),
                    "crt_p99_ms": percentile(crts, 99),
                }
            )
        return series

    def phase_breakdown(self, with_dependency: Optional[bool] = None) -> Dict[str, float]:
        """Mean CRT phase durations (Tables 3 and 4)."""
        rows = [r for r in self.results if r.is_crt and r.phases]
        if with_dependency is not None:
            rows = [r for r in rows if bool(r.phases.get("has_dep")) == with_dependency]
        if not rows:
            return {}
        keys = ["local_prepare", "remote_prepare", "wait_exec", "wait_input", "wait_output"]
        out = {k: sum(r.phases.get(k, 0.0) for r in rows) / len(rows) for k in keys}
        out["total"] = sum(r.latency for r in rows) / len(rows)
        out["count"] = float(len(rows))
        return out
