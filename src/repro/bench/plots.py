"""ASCII plotting for timelines and CDFs — terminal-friendly figures.

Used by the examples and the experiment CLI to render Fig 5d-style CDFs
and Fig 9b/10a-style timelines without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["sparkline", "ascii_plot", "ascii_cdf"]

_TICKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line bar rendering of a series (empty string for no data)."""
    values = [v for v in values if v == v]  # drop NaNs
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi - lo < 1e-12:
        return _TICKS[0] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / (hi - lo) * (len(_TICKS) - 1))
        out.append(_TICKS[idx])
    return "".join(out)


def ascii_plot(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 64,
    height: int = 12,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Multi-series scatter/line plot on a character grid.

    ``series`` maps a label to (x, y) points; each series is drawn with its
    label's first character.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for label, pts in sorted(series.items()):
        mark = label[0]
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = mark
    lines = []
    for i, row in enumerate(grid):
        y_val = y_hi - (y_hi - y_lo) * i / (height - 1)
        lines.append(f"{y_val:10.1f} |{''.join(row)}")
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(f"{'':11}{x_lo:<10.1f}{x_label:^{max(0, width - 20)}}{x_hi:>10.1f}")
    if y_label:
        lines.insert(0, f"[{y_label}]")
    legend = "  ".join(f"{label[0]}={label}" for label in sorted(series))
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def ascii_cdf(values: Sequence[float], width: int = 60, label: str = "") -> str:
    """Cumulative distribution rendered as rows of percent -> bar + value."""
    if not values:
        return "(no data)"
    ordered = sorted(values)
    lines = [f"CDF{' of ' + label if label else ''} ({len(ordered)} samples)"]
    for pct in (10, 25, 50, 75, 90, 95, 99, 100):
        idx = min(len(ordered) - 1, max(0, int(len(ordered) * pct / 100) - 1))
        value = ordered[idx]
        bar = "#" * int(width * pct / 100)
        lines.append(f"  p{pct:<3} {bar:<{width}} {value:10.1f}")
    return "\n".join(lines)
