"""Table 1: the qualitative comparison matrix of DAST vs. existing systems.

The rows are derived from machine-checkable feature flags declared by the
implementations in this repository (for the four systems we built) plus the
paper's published analysis for systems we did not build.  The benchmark
`benchmarks/test_table1_features.py` cross-checks the implemented systems'
flags against measured behaviour (e.g. R2 ⇔ zero conflict aborts).
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["FEATURE_MATRIX", "IMPLEMENTED", "feature_rows"]

# serializable / R1 (IRTs not blocked by CRTs) / R2 (no conflict aborts of
# CRTs) / R3 (scalable to many regions)
FEATURE_MATRIX: Dict[str, Dict[str, bool]] = {
    "dast": {"serializable": True, "r1": True, "r2": True, "r3": True},
    "tapir": {"serializable": True, "r1": True, "r2": False, "r3": True},
    "carousel": {"serializable": True, "r1": False, "r2": False, "r3": True},
    "calvin": {"serializable": True, "r1": False, "r2": True, "r3": False},
    "spanner": {"serializable": True, "r1": False, "r2": True, "r3": False},
    "janus": {"serializable": True, "r1": False, "r2": True, "r3": True},
    "slog": {"serializable": True, "r1": False, "r2": True, "r3": False},
    "ocean-vista": {"serializable": True, "r1": False, "r2": True, "r3": False},
}

IMPLEMENTED = ("dast", "tapir", "janus", "slog")


def feature_rows() -> List[Dict[str, object]]:
    rows = []
    for system, flags in FEATURE_MATRIX.items():
        row = {"system": system, "implemented": system in IMPLEMENTED}
        row.update(flags)
        rows.append(row)
    return rows
