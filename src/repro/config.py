"""Topology and timing configuration shared by every system under test.

The default values mirror the paper's deployment (§6): intra-region RTT 5 ms,
cross-region RTT 100 ms, shards replicated 3x inside their host region, one
manager per region.  The Python simulator runs the same protocols at reduced
scale (fewer regions/nodes/clients), which DESIGN.md documents as a
substitution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigError

__all__ = ["TimingConfig", "TopologyConfig", "Topology"]


@dataclass
class TimingConfig:
    """Network and node timing knobs (all milliseconds)."""

    intra_region_rtt: float = 5.0
    cross_region_rtt: float = 100.0
    client_rtt: float = 5.0  # client <-> node, intra-region
    service_time: float = 0.05  # per-message CPU cost at a node
    pct_interval: float = 1.0  # period of PCT clock reports (DAST)
    rpc_timeout: float = 500.0  # generic retransmission timeout
    slog_batch_interval: float = 5.0  # SLOG global-log exchange interval (§6)
    anticipation_margin: float = 5.0  # slack added to anticipated timestamps
    drop_probability: float = 0.0
    # Endpoint-level message batching: coalesce batchable one-way messages
    # per destination for this many virtual ms (0 disables batching).
    batch_window: float = 0.0

    def validate(self) -> None:
        if self.intra_region_rtt <= 0 or self.cross_region_rtt <= 0:
            raise ConfigError("RTTs must be positive")
        if self.batch_window < 0:
            raise ConfigError("batch_window must be >= 0")
        if self.intra_region_rtt > self.cross_region_rtt:
            raise ConfigError("edge model expects intra-region RTT << cross-region RTT")
        if self.service_time < 0 or self.pct_interval <= 0:
            raise ConfigError("service_time must be >= 0 and pct_interval > 0")


@dataclass
class TopologyConfig:
    """How many regions/shards/replicas/clients to build."""

    num_regions: int = 2
    shards_per_region: int = 2
    replication: int = 3
    clients_per_region: int = 4
    seed: int = 1
    timing: TimingConfig = field(default_factory=TimingConfig)
    # Spare regions start with a manager but no shards or data nodes: they
    # are join targets for mid-trial topology plans (repro.topo).  Shard
    # numbering ignores spares, so enabling them changes no workload
    # partitioning.
    spare_regions: int = 0

    def validate(self) -> None:
        if self.num_regions < 1:
            raise ConfigError("need at least one region")
        if self.spare_regions < 0:
            raise ConfigError("spare_regions must be >= 0")
        if self.shards_per_region < 1:
            raise ConfigError("need at least one shard per region")
        if self.replication < 1 or self.replication % 2 == 0:
            raise ConfigError("replication must be odd (2f+1)")
        if self.clients_per_region < 0:
            raise ConfigError("clients_per_region must be >= 0")
        self.timing.validate()


class Topology:
    """Deterministic naming of regions, nodes, managers, shards, clients.

    One node hosts one shard replica (the paper's layout: each edge server
    holds a database shard).  Shards are numbered globally so workload
    partitioners can map keys to shard indexes directly:
    shard ``k`` lives in region ``k // shards_per_region``.
    """

    def __init__(self, config: TopologyConfig):
        config.validate()
        self.config = config
        self.regions: List[str] = [
            f"r{i}" for i in range(config.num_regions + config.spare_regions)
        ]
        self._region_nodes: Dict[str, List[str]] = {}
        self._shard_region: Dict[str, str] = {}
        self._shard_replicas: Dict[str, Tuple[str, ...]] = {}
        self._node_shard: Dict[str, str] = {}
        for ri, region in enumerate(self.regions[: config.num_regions]):
            nodes = []
            for sj in range(config.shards_per_region):
                shard_id = self.shard_name(ri * config.shards_per_region + sj)
                replicas = []
                for rep in range(config.replication):
                    node = f"{region}.n{sj * config.replication + rep}"
                    nodes.append(node)
                    replicas.append(node)
                    self._node_shard[node] = shard_id
                self._shard_region[shard_id] = region
                self._shard_replicas[shard_id] = tuple(replicas)
            self._region_nodes[region] = nodes
        for region in self.regions[config.num_regions:]:
            self._region_nodes[region] = []  # spare: join target, no shards yet

    # ------------------------------------------------------------------
    @staticmethod
    def shard_name(index: int) -> str:
        return f"s{index}"

    def shard_index(self, shard_id: str) -> int:
        return int(shard_id[1:])

    @property
    def num_shards(self) -> int:
        return self.config.num_regions * self.config.shards_per_region

    def all_shards(self) -> List[str]:
        return [self.shard_name(i) for i in range(self.num_shards)]

    def shards_in_region(self, region: str) -> List[str]:
        return [s for s, r in self._shard_region.items() if r == region]

    def region_of_shard(self, shard_id: str) -> str:
        try:
            return self._shard_region[shard_id]
        except KeyError:
            raise ConfigError(f"unknown shard {shard_id!r}") from None

    def replicas_of(self, shard_id: str) -> Tuple[str, ...]:
        return self._shard_replicas[shard_id]

    def nodes_in_region(self, region: str) -> List[str]:
        return list(self._region_nodes[region])

    def shard_of_node(self, node: str) -> str:
        return self._node_shard[node]

    def region_of_node(self, node: str) -> str:
        return node.split(".", 1)[0]

    def manager_of(self, region: str) -> str:
        return f"{region}.mgr"

    def manager_backup_of(self, region: str, k: int = 0) -> str:
        return f"{region}.mgrb{k}"

    def clients_in_region(self, region: str) -> List[str]:
        return [f"{region}.c{k}" for k in range(self.config.clients_per_region)]

    def all_clients(self) -> List[str]:
        out: List[str] = []
        for region in self.regions:
            out.extend(self.clients_in_region(region))
        return out
