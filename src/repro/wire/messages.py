"""The message taxonomy: every protocol hop in DAST and the baselines.

One dataclass per message, registered by name in :mod:`repro.wire.schema`.
Field names match the historical dict keys one-to-one, so handler bodies map
``payload["ts"]`` to ``msg.ts`` mechanically.  ``docs/WIRE.md`` holds the
full taxonomy table (direction, fields, batchable).

Conventions:

* ``Optional`` fields with a ``None`` default are genuinely optional on the
  wire — the receiving handler treats absence as "not supplied";
* ``batchable=True`` marks small one-way fan-out messages the endpoint
  batcher may coalesce within its flush window (clock reports, executed /
  announce / commit-log / abort fan-outs) — never request/response traffic.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.clock.hlc import Timestamp
from repro.txn.model import Transaction
from repro.wire.schema import WireMessage, message

__all__ = [
    # clients
    "Submit",
    # DAST data path
    "IrtPrepare", "IrtCommit", "CrtLocallog", "CrtCommitlog", "PrepRemote",
    "PrepCrt", "CrtAck", "CrtCommit", "CrtAnnounce", "CrtUpdate",
    "CrtExecuted", "CrtInputReady", "SendOutput", "ExecDone", "PctReport",
    "AbortCrt", "Ping", "Suspect",
    # DAST failover / recovery
    "RemovePrep", "RemoveCommit", "MgrTakeover", "TransferCkpt",
    "InstallCkpt", "AddPrep", "AddCommit", "ReplicaCatchup", "ViewSync",
    # SMR
    "SmrPut", "SmrGet", "SmrAppend", "SmrElect",
    # SLOG
    "SlogSubmit", "SlogGlobalSubmit", "SlogGlobalBatch", "RaftAppend",
    "SlogLog",
    # Tapir
    "TapirExec", "TapirPrepare", "TapirCommit", "TapirAbort",
    # Janus
    "JanusPreaccept", "JanusAccept", "JanusCommit",
]


# ----------------------------------------------------------------------
# Client traffic
# ----------------------------------------------------------------------
@message("submit")
class Submit(WireMessage):
    """Client -> coordinator node: run this transaction."""

    txn: Transaction


# ----------------------------------------------------------------------
# DAST data path (Algorithms 1 and 2)
# ----------------------------------------------------------------------
@message("irt_prepare")
class IrtPrepare(WireMessage):
    """Coordinator -> participant: prepare an IRT at timestamp ``ts``."""

    txn: Transaction
    ts: Timestamp
    coord: str
    vid: int


@message("irt_commit")
class IrtCommit(WireMessage):
    """Coordinator -> participant: commit decision for an IRT."""

    txn_id: str
    ts: Timestamp
    vid: int


@message("crt_locallog")
class CrtLocallog(WireMessage):
    """Coordinator -> home-region replicas: failover-retrieval log entry."""

    txn: Transaction
    coord: str


@message("crt_commitlog", batchable=True)
class CrtCommitlog(WireMessage):
    """Coordinator -> home-region replicas: commit decision for the log."""

    txn_id: str
    commit_ts: Timestamp


@message("prep_remote")
class PrepRemote(WireMessage):
    """Coordinator -> each region manager: 2DA phase-1 dispatch request."""

    txn: Transaction
    src_ts: Timestamp
    coord: str
    vid: int
    phys: Optional[float] = None  # coordinator's physical clock tag


@message("prep_crt")
class PrepCrt(WireMessage):
    """Manager -> local participants: prepare a CRT at the anticipation."""

    txn: Transaction
    anticipated_ts: Timestamp
    coord: str
    vid: int
    clock_tag: Optional[Timestamp] = None


@message("crt_ack")
class CrtAck(WireMessage):
    """Participant -> coordinator: prep-crt ACK with our anticipation."""

    txn_id: str
    node: str
    shard: str
    anticipated_ts: Timestamp
    region: str
    phys_tag: Optional[float] = None


@message("crt_commit")
class CrtCommit(WireMessage):
    """Coordinator -> participants: CRT commit at the max anticipation."""

    txn_id: str
    commit_ts: Timestamp
    txn: Optional[Transaction] = None
    coord: Optional[str] = None
    phys_tag: Optional[float] = None


@message("crt_announce", batchable=True)
class CrtAnnounce(WireMessage):
    """Participant -> intra-region peers: stretch your dclocks too (§4.3)."""

    txn_id: str
    anticipated_ts: Timestamp


@message("crt_update")
class CrtUpdate(WireMessage):
    """Participant -> peers + manager: relay of a committed CRT (Lemma 1)."""

    txn_id: str
    txn: Transaction
    coord: str
    commit_ts: Timestamp
    input_ready: bool


@message("crt_executed", batchable=True)
class CrtExecuted(WireMessage):
    """Participant -> peers + manager: CRT executed, drop its floor."""

    txn_id: str


@message("crt_input_ready")
class CrtInputReady(WireMessage):
    """Participant -> peers: a committed CRT's inputs completed."""

    txn_id: str


@message("send_output")
class SendOutput(WireMessage):
    """Producer replica -> consumer replicas: pushed piece outputs (§4.1)."""

    txn_id: str
    values: Dict[str, Any]


@message("exec_done")
class ExecDone(WireMessage):
    """Participant -> coordinator: execution report for one shard."""

    txn_id: str
    shard: str
    outputs: Dict[str, Any]
    aborted: bool
    reason: str
    node: Optional[str] = None
    # (t_committed, t_order_ready, t_input_ready, t_executed) phase stamps;
    # DAST fills them, the baselines do not.
    phases: Optional[Tuple[float, float, float, float]] = None


@message("pct_report", batchable=True)
class PctReport(WireMessage):
    """Node/manager -> intra-region members: periodic capped clock report."""

    value: Timestamp


@message("abort_crt")
class AbortCrt(WireMessage):
    """Manager/participant fan-out: abort a CRT (failover policy, §4.4)."""

    txn_id: str


@message("ping")
class Ping(WireMessage):
    """Failure-detector probe."""


@message("suspect")
class Suspect(WireMessage):
    """Report a suspected-dead node to the region manager."""

    node: str


# ----------------------------------------------------------------------
# DAST failover / recovery (Algorithms 3 and 4, §4.4)
# ----------------------------------------------------------------------
@message("remove_prep")
class RemovePrep(WireMessage):
    """Manager -> members: phase 1 of view change removing nodes."""

    vid: int
    to_remove: List[str]


@message("remove_commit")
class RemoveCommit(WireMessage):
    """Manager -> members: install the view without the removed nodes."""

    vid: int
    removed: List[str]
    members: List[str]
    commit_irts: List[dict]
    abort_crts: List[dict]
    commit_crts: List[dict]


@message("mgr_takeover")
class MgrTakeover(WireMessage):
    """Standby manager -> members: I am taking over; report your view."""

    vid: int


@message("transfer_ckpt")
class TransferCkpt(WireMessage):
    """Manager -> donor replica: checkpoint your shard to ``node``."""

    node: str
    shard: str


@message("install_ckpt")
class InstallCkpt(WireMessage):
    """Donor replica -> new replica: the checkpoint itself."""

    snapshot: Any
    ts_ckpt: Timestamp
    shard: str


@message("add_prep")
class AddPrep(WireMessage):
    """Manager -> members: the fake-CRT freeze below ``ts_ins``."""

    vid: int
    node: str
    ts_ins: Timestamp


@message("add_commit")
class AddCommit(WireMessage):
    """Manager -> members: admit the new replica at ``ts_ins``."""

    vid: int
    node: str
    ts_ins: Timestamp
    members: List[str]
    shard: str


@message("replica_catchup")
class ReplicaCatchup(WireMessage):
    """Donor replica -> new replica: post-checkpoint transactions."""

    entries: List[dict]


@message("view_sync")
class ViewSync(WireMessage):
    """Reshard view flip (repro.topo): adopt this manager/member set.

    Sent at the end of an elastic shard move, after the donor region's
    replicas retired: the migrated replicas switch from the source region's
    manager to ``manager`` and every affected node installs the explicit
    ``members`` list (full symmetry — asymmetric member sets wedge the PCT
    watermark).  ``manager=None`` means "keep your current manager"."""

    shard: str
    region: str
    manager: Optional[str] = None
    members: Optional[List[str]] = None


# ----------------------------------------------------------------------
# SMR (view/state replication off the critical path)
# ----------------------------------------------------------------------
@message("smr_put")
class SmrPut(WireMessage):
    """Client (manager) -> SMR leader: replicate a key/value durably."""

    key: str
    value: Any


@message("smr_get")
class SmrGet(WireMessage):
    """Client (manager) -> SMR leader: read a replicated key."""

    key: str


@message("smr_append")
class SmrAppend(WireMessage):
    """SMR leader -> followers: append one log entry (Raft-style)."""

    term: int
    index: int
    entry: Tuple[int, str, Any]
    commit_index: int


@message("smr_elect")
class SmrElect(WireMessage):
    """Election notice: adopt ``leader`` for ``term``."""

    term: int
    leader: str


# ----------------------------------------------------------------------
# SLOG baseline
# ----------------------------------------------------------------------
@message("slog_submit")
class SlogSubmit(WireMessage):
    """Coordinator -> regional sequencer: order this transaction."""

    txn: Transaction
    coord: str


@message("slog_global_submit")
class SlogGlobalSubmit(WireMessage):
    """Regional sequencer -> global orderer: a multi-home transaction."""

    txn: Transaction
    coord: str
    seq: Optional[int] = None  # stamped by the orderer when batched


@message("slog_global_batch")
class SlogGlobalBatch(WireMessage):
    """Global orderer -> every regional sequencer: one ordered batch."""

    entries: List[SlogGlobalSubmit]


@message("raft_append")
class RaftAppend(WireMessage):
    """Global orderer -> followers: durability ack round for a batch."""

    n: int


@message("slog_log", batchable=True)
class SlogLog(WireMessage):
    """Regional sequencer -> region nodes: one regional log entry."""

    index: int
    txn: Transaction
    coord: str


# ----------------------------------------------------------------------
# Tapir baseline
# ----------------------------------------------------------------------
@message("tapir_exec")
class TapirExec(WireMessage):
    """Coordinator -> nearest replica: execute pieces, record accesses."""

    txn: Transaction
    inputs: Dict[str, Any]
    piece_indexes: List[int]
    prior_ops: List[tuple]


@message("tapir_prepare")
class TapirPrepare(WireMessage):
    """Coordinator -> every replica: OCC validation round."""

    txn_id: str
    reads: Dict[Any, int]
    writes: List[Any]


@message("tapir_commit", batchable=True)
class TapirCommit(WireMessage):
    """Coordinator -> every replica: apply buffered ops (async)."""

    txn_id: str
    ops_by_shard: Dict[str, list]


@message("tapir_abort", batchable=True)
class TapirAbort(WireMessage):
    """Coordinator -> every replica: drop prepared state."""

    txn_id: str


# ----------------------------------------------------------------------
# Janus baseline
# ----------------------------------------------------------------------
@message("janus_preaccept")
class JanusPreaccept(WireMessage):
    """Coordinator -> every replica: gather dependency sets."""

    txn: Transaction
    coord: str


@message("janus_accept")
class JanusAccept(WireMessage):
    """Coordinator -> every replica: fix the unioned dependency set."""

    txn_id: str
    deps: Dict[str, Tuple]


@message("janus_commit")
class JanusCommit(WireMessage):
    """Coordinator -> every replica: commit with final dependencies."""

    txn_id: str
    txn: Transaction
    coord: str
    deps: Dict[str, Tuple]
