"""Typed wire protocol: schemas, codec, size model, and batching.

``repro.wire.schema`` holds the registry/codec machinery, and
``repro.wire.messages`` the concrete taxonomy (importing it registers every
message).  See ``docs/WIRE.md`` for the taxonomy table and the virtual-byte
size model.
"""

from repro.wire import messages  # noqa: F401  (imports register all schemas)
from repro.wire.messages import *  # noqa: F401,F403
from repro.wire.schema import (
    TRACE_CTX_BYTES,
    Encoded,
    WireError,
    WireMessage,
    batch_size,
    decode,
    encode,
    message,
    registered_messages,
    schema_for,
    sizeof,
)

__all__ = [
    "Encoded",
    "WireError",
    "WireMessage",
    "batch_size",
    "decode",
    "encode",
    "message",
    "registered_messages",
    "schema_for",
    "sizeof",
    "TRACE_CTX_BYTES",
] + messages.__all__
