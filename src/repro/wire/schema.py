"""Typed wire schemas: the message registry, codec, and size model.

Every protocol hop in the repo used to be an untyped ``dict`` dispatched by
string method name; malformed fields surfaced as deep ``KeyError``s and the
network model could not account for wire bytes.  This module provides:

* a **versioned registry** of message schemas — one frozen-field dataclass
  per message, declared with the :func:`message` decorator;
* :func:`encode` / :func:`decode` — the codec.  ``encode`` snapshots a
  message's fields into an :class:`Encoded` frame (with a deterministic
  virtual byte size); ``decode`` validates the frame against the registry
  and reconstructs the typed message, raising :class:`WireError` naming the
  offending message on any unknown name, version mismatch, or missing /
  unexpected field;
* :func:`sizeof` — a **deterministic size model in virtual bytes**.  The
  simulator never serializes real bytes, but per-message sizes let the
  network account for bandwidth and serialization costs.  The model (see
  ``docs/WIRE.md``) is: ``None``/``bool`` = 1, numbers = 8, strings =
  4 + length, containers = 4 + contents, objects with a ``wire_size()``
  method delegate, anything else a flat 64-byte blob.

Messages double as *read-only mappings* (``msg["ts"]``, ``msg.get("txn")``)
— the thin adapter that kept handler bodies diff-compatible during the
migration off raw dicts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import MISSING, dataclass
from typing import Any, Callable, ClassVar, Dict, FrozenSet, Optional, Tuple, Type

from repro.clock.hlc import Timestamp
from repro.errors import ProtocolError

__all__ = [
    "WireError",
    "WireMessage",
    "Encoded",
    "message",
    "encode",
    "decode",
    "sizeof",
    "schema_for",
    "registered_messages",
    "TRACE_CTX_BYTES",
]

# Size-model constants (virtual bytes); documented in docs/WIRE.md.
_SIZE_SCALAR = 8
_SIZE_TINY = 1
_CONTAINER_OVERHEAD = 4
_OPAQUE_SIZE = 64
_FRAME_OVERHEAD = 4

# Envelope schema v2 trace context (see repro.sim.rpc / docs/TRACING.md):
# a container holding (trace-id hash, span id, parent span id), each modelled
# as an 8-byte scalar.  Accounted in NetworkStats.trace_bytes_sent — a
# separate lane from bytes_sent, so enabling tracing never moves a golden.
TRACE_CTX_BYTES = _CONTAINER_OVERHEAD + 3 * _SIZE_SCALAR


class WireError(ProtocolError):
    """Decode/encode failure, always naming the message involved."""

    def __init__(self, reason: str, message_name: str = "<unknown>"):
        super().__init__(f"wire message {message_name!r}: {reason}")
        self.message_name = message_name
        self.reason = reason


_REGISTRY: Dict[str, Type["WireMessage"]] = {}


class WireMessage:
    """Base class for registered wire messages (see :func:`message`).

    Subclasses are dataclasses; ``NAME``/``VERSION``/``BATCHABLE`` are set by
    the decorator.  The mapping-style accessors keep pre-migration handler
    bodies (``payload["ts"]``, ``payload.get("txn")``) working on typed
    messages.
    """

    NAME: ClassVar[str] = ""
    VERSION: ClassVar[int] = 1
    BATCHABLE: ClassVar[bool] = False
    # Shape metadata precomputed by the :func:`message` decorator so the hot
    # codec paths never re-walk ``dataclasses.fields`` per message instance.
    _WIRE_FIELDS: ClassVar[Optional[Tuple[str, ...]]] = None
    _WIRE_FIELD_SET: ClassVar[FrozenSet[str]] = frozenset()
    _WIRE_BASE: ClassVar[int] = 0

    def __getitem__(self, key: str) -> Any:
        try:
            return getattr(self, key)
        except AttributeError:
            raise KeyError(key) from None

    def __contains__(self, key: str) -> bool:
        return hasattr(self, key)

    def get(self, key: str, default: Any = None) -> Any:
        return getattr(self, key, default)

    def wire_size(self) -> int:
        """Virtual wire size of this message's encoded frame."""
        names = self._WIRE_FIELDS
        if names is None:  # unregistered subclass: fall back to introspection
            size = _FRAME_OVERHEAD + len(self.NAME) + _SIZE_TINY  # name + version
            for field in dataclasses.fields(self):
                size += sizeof(getattr(self, field.name))
            return size
        size = self._WIRE_BASE
        values = self.__dict__
        for name in names:
            size += sizeof(values[name])
        return size


def message(name: str, *, version: int = 1, batchable: bool = False) -> Callable:
    """Class decorator: register a dataclass schema under ``name``.

    ``batchable`` marks small one-way messages the endpoint batcher may
    coalesce (clock reports, commit/abort fan-outs).
    """

    def wrap(cls: type) -> type:
        cls = dataclass(cls)
        if not issubclass(cls, WireMessage):
            raise WireError("schema must subclass WireMessage", name)
        if name in _REGISTRY:
            raise WireError("duplicate schema registration", name)
        cls.NAME = name
        cls.VERSION = version
        cls.BATCHABLE = batchable
        # Shape precomputation: field-name tuple, the set used by the decode
        # fast path, and the size-model constant part of every frame.
        cls._WIRE_FIELDS = tuple(f.name for f in dataclasses.fields(cls))
        cls._WIRE_FIELD_SET = frozenset(cls._WIRE_FIELDS)
        cls._WIRE_BASE = _FRAME_OVERHEAD + len(name) + _SIZE_TINY  # name + version
        _REGISTRY[name] = cls
        return cls

    return wrap


def schema_for(name: str) -> Optional[Type[WireMessage]]:
    return _REGISTRY.get(name)


def registered_messages() -> Dict[str, Type[WireMessage]]:
    """Snapshot of the registry (used by docs/tests)."""
    return dict(_REGISTRY)


class Encoded:
    """One encoded message frame travelling over the simulated network."""

    __slots__ = ("name", "version", "fields", "size")

    def __init__(self, name: str, version: int, fields: Dict[str, Any], size: int):
        self.name = name
        self.version = version
        self.fields = fields
        self.size = size

    @property
    def type_name(self) -> str:
        return self.name

    def wire_size(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"Encoded({self.name!r}, v{self.version}, {self.size}B)"


def encode(msg: WireMessage) -> Encoded:
    """Snapshot ``msg`` into an :class:`Encoded` frame."""
    cls = type(msg)
    if _REGISTRY.get(msg.NAME) is not cls:
        raise WireError("message type is not registered", msg.NAME or cls.__name__)
    values = msg.__dict__
    fields = {name: values[name] for name in cls._WIRE_FIELDS}
    return Encoded(msg.NAME, msg.VERSION, fields, msg.wire_size())


def decode(frame: Encoded) -> WireMessage:
    """Validate ``frame`` against the registry and rebuild the typed message.

    Raises :class:`WireError` (naming the message) for an unknown message
    name, a version mismatch, a missing required field, or an unexpected
    field — the typed replacement for the old deep ``KeyError``s.
    """
    cls = _REGISTRY.get(frame.name)
    if cls is None:
        raise WireError("unknown message name", frame.name)
    if frame.version != cls.VERSION:
        raise WireError(
            f"version mismatch (got v{frame.version}, schema is v{cls.VERSION})",
            frame.name,
        )
    fields = frame.fields
    if fields.keys() == cls._WIRE_FIELD_SET:
        # Fast path: the frame carries exactly the declared shape (always
        # true for frames produced by :func:`encode`), so skip field
        # validation and ``__init__`` and restore the instance directly.
        msg = object.__new__(cls)
        msg.__dict__.update(fields)
        return msg
    declared = {f.name: f for f in dataclasses.fields(cls)}
    unexpected = set(fields) - set(declared)
    if unexpected:
        raise WireError(f"unexpected field(s) {sorted(unexpected)}", frame.name)
    missing = [
        n for n, f in declared.items()
        if n not in fields
        and f.default is MISSING
        and f.default_factory is MISSING
    ]
    if missing:
        raise WireError(f"missing required field(s) {missing}", frame.name)
    return cls(**fields)


# Exact-type dispatch for the hot sizeof cases.  Keyed by ``value.__class__``
# so subclasses still take the general path below (bool before int, custom
# ``wire_size`` hooks, Timestamp-like named tuples) with unchanged results.
_TS_SIZE = _CONTAINER_OVERHEAD + 3 * _SIZE_SCALAR  # (time, frac, nid)
_SCALAR_SIZES: Dict[type, int] = {
    type(None): _SIZE_TINY,
    bool: _SIZE_TINY,
    int: _SIZE_SCALAR,
    float: _SIZE_SCALAR,
    Timestamp: _TS_SIZE,
}


def sizeof(value: Any) -> int:
    """Deterministic virtual byte size of an arbitrary payload value."""
    cls = value.__class__
    size = _SCALAR_SIZES.get(cls)
    if size is not None:
        return size
    if cls is str or cls is bytes:
        return _CONTAINER_OVERHEAD + len(value)
    if cls is Encoded:
        return value.size
    if cls is dict:
        return _CONTAINER_OVERHEAD + sum(sizeof(k) + sizeof(v) for k, v in value.items())
    if cls is tuple or cls is list or cls is set or cls is frozenset:
        return _CONTAINER_OVERHEAD + sum(sizeof(item) for item in value)
    return _sizeof_general(value)


def _sizeof_general(value: Any) -> int:
    """The original isinstance-based model, kept for subclasses and objects
    with a ``wire_size()`` hook; byte-for-byte identical results."""
    if value is None or isinstance(value, bool):
        return _SIZE_TINY
    if isinstance(value, (int, float)):
        return _SIZE_SCALAR
    if isinstance(value, (str, bytes)):
        return _CONTAINER_OVERHEAD + len(value)
    wire_size = getattr(value, "wire_size", None)
    if callable(wire_size):
        return wire_size()
    if isinstance(value, dict):
        return _CONTAINER_OVERHEAD + sum(sizeof(k) + sizeof(v) for k, v in value.items())
    if isinstance(value, (tuple, list, set, frozenset)):
        return _CONTAINER_OVERHEAD + sum(sizeof(item) for item in value)
    return _OPAQUE_SIZE


def batch_size(frames: Tuple[Encoded, ...]) -> int:
    """Virtual size of a coalesced batch: per-entry frames plus one header."""
    return _CONTAINER_OVERHEAD + sum(f.size for f in frames)
