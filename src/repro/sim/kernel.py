"""Discrete-event simulation kernel.

A tiny, dependency-free cousin of SimPy: the simulator owns a binary heap of
scheduled callbacks and a virtual clock in **milliseconds**.  Protocol code is
written as generator coroutines ("processes") that ``yield`` :class:`Event`
objects to suspend until the event triggers.

Example::

    sim = Simulator()

    def worker():
        yield sim.timeout(5.0)
        return "done"

    proc = sim.spawn(worker())
    sim.run()
    assert proc.value == "done"
    assert sim.now == 5.0

Determinism: events scheduled for the same instant fire in scheduling order
(FIFO), so runs are reproducible given seeded randomness.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import SimulationError

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Simulator",
]


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; it is *triggered* exactly once with either a
    value (:meth:`succeed`) or an exception (:meth:`fail`).  Triggering a
    second time is an error — protocols that may race to complete an event
    should guard with :attr:`triggered`.
    """

    __slots__ = ("sim", "_callbacks", "triggered", "ok", "value", "_exc")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callbacks: List[Callable[["Event"], None]] = []
        self.triggered = False
        self.ok = False
        self.value: Any = None
        self._exc: Optional[BaseException] = None

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.triggered:
            # Fire on the next scheduler tick to preserve run-to-completion
            # semantics for the caller.
            self.sim.call_soon(fn, self)
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None) -> "Event":
        self._trigger(True, value, None)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if not isinstance(exc, BaseException):
            raise SimulationError(f"Event.fail expects an exception, got {exc!r}")
        self._trigger(False, None, exc)
        return self

    def _trigger(self, ok: bool, value: Any, exc: Optional[BaseException]) -> None:
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.ok = ok
        self.value = value
        self._exc = exc
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self.sim.call_soon(fn, self)

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc


class Timeout(Event):
    """An event that triggers after a fixed virtual delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(sim)
        sim.schedule(delay, self.succeed, value)


class Process(Event):
    """A running generator coroutine.

    The process is itself an event: it triggers with the generator's return
    value when the generator finishes, or fails with the uncaught exception.
    Other processes may therefore ``yield`` a process to join it.
    """

    __slots__ = ("_gen", "name")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        sim.call_soon(self._resume, None)

    def _resume(self, trigger: Optional[Event]) -> None:
        if self.triggered:
            return  # interrupted or already finished
        try:
            if trigger is None:
                target = self._gen.send(None)
            elif trigger.ok:
                target = self._gen.send(trigger.value)
            else:
                target = self._gen.throw(trigger.exception)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - surfaced via the event
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self._gen.close()
            self.fail(SimulationError(f"process {self.name} yielded non-event {target!r}"))
            return
        target.add_callback(self._resume)

    def interrupt(self, exc: Optional[BaseException] = None) -> None:
        """Cancel the process.

        The process event fails with ``exc`` (default
        :class:`ProcessInterrupted`); the underlying generator is closed so
        its ``finally`` blocks run.
        """
        if self.triggered:
            return
        self._gen.close()
        self.fail(exc if exc is not None else ProcessInterrupted(self.name))


class ProcessInterrupted(SimulationError):
    """A process was cancelled via :meth:`Process.interrupt`."""


class AllOf(Event):
    """Triggers when every child event has triggered.

    Succeeds with the list of child values (in input order).  Fails with the
    first child failure.
    """

    __slots__ = ("_pending", "_values")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        self._pending = len(events)
        self._values: List[Any] = [None] * len(events)
        if not events:
            self.succeed([])
            return
        for i, ev in enumerate(events):
            ev.add_callback(self._make_child_callback(i))

    def _make_child_callback(self, index: int) -> Callable[[Event], None]:
        def on_child(ev: Event) -> None:
            if self.triggered:
                return
            if not ev.ok:
                self.fail(ev.exception)
                return
            self._values[index] = ev.value
            self._pending -= 1
            if self._pending == 0:
                self.succeed(list(self._values))

        return on_child


class AnyOf(Event):
    """Triggers when the first child event triggers (success or failure)."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        for ev in events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev.ok:
            self.succeed(ev.value)
        else:
            self.fail(ev.exception)


class Simulator:
    """The event loop: a heap of ``(time, seq, callback)`` entries plus a
    FIFO "ready" deque for same-instant work.

    Zero-delay callbacks (``call_soon``, ``schedule(0, ...)``) dominate the
    event count in protocol-heavy trials — every event trigger and process
    resume is one.  Pushing them through the heap costs a tuple sift per
    event; the deque appends/pops in O(1).  Both structures share one
    monotone sequence counter, and the run loop merges them by ``(time,
    seq)``, so global firing order is byte-identical to the heap-only
    kernel (ready entries always carry ``time == now``; a heap entry due at
    the same instant with a smaller seq fires first).
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List = []
        # Same-instant FIFO: (seq, fn, args) entries, all due at self.now.
        self._ready: deque = deque()
        self._seq = itertools.count()
        self._stopped = False
        # Opt-in hot-callback accounting (repro.perf); None = zero overhead.
        self._acct = None

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` virtual milliseconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        if delay == 0:
            self._ready.append((next(self._seq), fn, args))
        else:
            heapq.heappush(self._heap, (self.now + delay, next(self._seq), fn, args))

    def call_soon(self, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at the current instant, after the running callback."""
        self._ready.append((next(self._seq), fn, args))

    def schedule_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute virtual time ``when``.

        A ``when`` already in the past fires at the current instant — used by
        fault-plan compilation, where an event's nominal time may precede the
        moment the plan is installed.
        """
        self.schedule(max(0.0, when - self.now), fn, *args)

    def schedule_abs(self, when: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at **exactly** absolute virtual time ``when``.

        Unlike :meth:`schedule_at` there is no ``now + (when - now)`` float
        round-trip: the heap entry carries ``when`` verbatim.  The open-loop
        workload engine uses this so arrival instants drawn from a seeded
        stream replay bit-identically no matter when the pump was scheduled.
        """
        if when < self.now:
            raise SimulationError(
                f"cannot schedule into the past (when={when} < now={self.now})")
        if when == self.now:
            self._ready.append((next(self._seq), fn, args))
        else:
            heapq.heappush(self._heap, (when, next(self._seq), fn, args))

    def peek_time(self) -> Optional[float]:
        """The instant the next scheduled callback fires, or None when idle."""
        if self._ready:
            return self.now
        return self._heap[0][0] if self._heap else None

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def every(self, interval: float, fn: Callable[[], Any], name: str = "timer") -> Process:
        """Run ``fn()`` every ``interval`` virtual ms until interrupted.

        Returns the timer :class:`Process`; cancel with
        :meth:`Process.interrupt`.  Used by periodic samplers (observability
        probes) that must not keep their own scheduling state.
        """
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive, got {interval}")

        def ticker():
            while True:
                yield self.timeout(interval)
                fn()

        return self.spawn(ticker(), name=name)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next scheduled callback; return False when idle."""
        ready = self._ready
        heap = self._heap
        if ready:
            # A heap entry due at the current instant with a smaller seq
            # predates everything in the ready deque: run it first.
            if heap and heap[0][0] <= self.now and heap[0][1] < ready[0][0]:
                t, _seq, fn, args = heapq.heappop(heap)
                if t < self.now:
                    raise SimulationError("scheduler heap corrupted: time went backwards")
                fn(*args)
            else:
                _seq, fn, args = ready.popleft()
                fn(*args)
            return True
        if not heap:
            return False
        t, _seq, fn, args = heapq.heappop(heap)
        if t < self.now:
            raise SimulationError("scheduler heap corrupted: time went backwards")
        self.now = t
        fn(*args)
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until both queues drain or virtual time reaches ``until``.

        Returns the final virtual time.  When ``until`` is given, the clock
        is advanced to exactly ``until`` even if the queues drained earlier,
        so repeated ``run(until=...)`` calls observe monotonic time.
        """
        self._stopped = False
        if self._acct is not None:
            self._run_accounted(until)
        else:
            # Hot loop: locals + inlined step() to avoid per-event attribute
            # lookups; semantics identical to step() in a while-loop.
            ready = self._ready
            heap = self._heap
            heappop = heapq.heappop
            while not self._stopped:
                if ready:
                    now = self.now
                    if until is not None and now > until:
                        break
                    if heap and heap[0][0] <= now and heap[0][1] < ready[0][0]:
                        t, _seq, fn, args = heappop(heap)
                        if t < now:
                            raise SimulationError(
                                "scheduler heap corrupted: time went backwards")
                        fn(*args)
                    else:
                        _seq, fn, args = ready.popleft()
                        fn(*args)
                    continue
                if not heap:
                    break
                if until is not None and heap[0][0] > until:
                    break
                t, _seq, fn, args = heappop(heap)
                if t < self.now:
                    raise SimulationError("scheduler heap corrupted: time went backwards")
                self.now = t
                fn(*args)
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def run_window(self, bound: float) -> float:
        """Run every callback due **strictly before** ``bound``, then advance
        the clock to exactly ``bound``.

        This is the partition-execution primitive of the region-parallel
        kernel (:mod:`repro.sim.par`): conservative lookahead guarantees no
        other partition can inject an event earlier than ``bound``, so
        everything below it is safe to execute.  Events scheduled *at*
        ``bound`` stay queued for the next window — unlike :meth:`run`,
        whose ``until`` is inclusive.  Ready-deque entries always carry
        ``time == now < bound``, so only the heap needs the boundary check.
        """
        if bound < self.now:
            raise SimulationError(
                f"window bound {bound} precedes current time {self.now}")
        self._stopped = False
        ready = self._ready
        heap = self._heap
        heappop = heapq.heappop
        while not self._stopped:
            if ready:
                now = self.now
                if heap and heap[0][0] <= now and heap[0][1] < ready[0][0]:
                    t, _seq, fn, args = heappop(heap)
                    if t < now:
                        raise SimulationError(
                            "scheduler heap corrupted: time went backwards")
                    fn(*args)
                else:
                    _seq, fn, args = ready.popleft()
                    fn(*args)
                continue
            if not heap or heap[0][0] >= bound:
                break
            t, _seq, fn, args = heappop(heap)
            if t < self.now:
                raise SimulationError("scheduler heap corrupted: time went backwards")
            self.now = t
            fn(*args)
        if self.now < bound:
            self.now = bound
        return self.now

    def _run_accounted(self, until: Optional[float]) -> None:
        """The run loop with per-event accounting (see :mod:`repro.perf`)."""
        acct = self._acct
        ready = self._ready
        heap = self._heap
        heappop = heapq.heappop
        while not self._stopped:
            hlen = len(heap)
            if hlen > acct.heap_peak:
                acct.heap_peak = hlen
            if ready:
                now = self.now
                if until is not None and now > until:
                    break
                if heap and heap[0][0] <= now and heap[0][1] < ready[0][0]:
                    t, _seq, fn, args = heappop(heap)
                    if t < now:
                        raise SimulationError(
                            "scheduler heap corrupted: time went backwards")
                    acct.record(fn, False, False)
                    fn(*args)
                else:
                    _seq, fn, args = ready.popleft()
                    acct.record(fn, True, False)
                    fn(*args)
                continue
            if not heap:
                break
            if until is not None and heap[0][0] > until:
                break
            t, _seq, fn, args = heappop(heap)
            if t < self.now:
                raise SimulationError("scheduler heap corrupted: time went backwards")
            advanced = t > self.now
            self.now = t
            acct.record(fn, False, advanced)
            fn(*args)

    def attach_accounting(self, acct) -> None:
        """Enable opt-in hot-callback accounting for subsequent :meth:`run`
        calls.  ``acct`` duck-types :class:`repro.perf.KernelAccounting`."""
        self._acct = acct

    def detach_accounting(self) -> None:
        self._acct = None

    def stop(self) -> None:
        """Stop the current :meth:`run` after the running callback returns."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        return len(self._heap) + len(self._ready)
