"""Structured event tracing for protocol debugging.

A :class:`Tracer` collects ``(time, host, kind, fields)`` events with cheap
filtering.  DAST nodes/managers emit traces when a tracer is attached to
the system (``DastSystem.attach_tracer()``); nothing is recorded otherwise.

Typical debugging session::

    tracer = system.attach_tracer(kinds={"execute", "commit"})
    ... run ...
    for ev in tracer.query(host="r0.n0", txn="t42"):
        print(ev)
    print(tracer.timeline("t42"))    # one transaction's full story
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set

__all__ = ["TraceEvent", "Tracer"]


class TraceEvent:
    """One recorded protocol event: (time, host, kind, fields)."""

    __slots__ = ("time", "host", "kind", "fields")

    def __init__(self, time: float, host: str, kind: str, fields: Dict[str, Any]):
        self.time = time
        self.host = host
        self.kind = kind
        self.fields = fields

    @property
    def txn_id(self) -> Optional[str]:
        return self.fields.get("txn")

    def __repr__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"[{self.time:10.3f}] {self.host:<10} {self.kind:<14} {extra}"


class Tracer:
    """Collects trace events, optionally restricted to certain kinds/hosts."""

    def __init__(
        self,
        kinds: Optional[Iterable[str]] = None,
        hosts: Optional[Iterable[str]] = None,
        capacity: int = 200_000,
    ):
        self.kinds: Optional[Set[str]] = set(kinds) if kinds else None
        self.hosts: Optional[Set[str]] = set(hosts) if hosts else None
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        self.dropped = 0

    # ------------------------------------------------------------------
    def emit(self, time: float, host: str, kind: str, **fields: Any) -> None:
        if self.kinds is not None and kind not in self.kinds:
            return
        if self.hosts is not None and host not in self.hosts:
            return
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, host, kind, fields))

    # ------------------------------------------------------------------
    def query(
        self,
        kind: Optional[str] = None,
        host: Optional[str] = None,
        txn: Optional[str] = None,
        since: float = 0.0,
    ) -> List[TraceEvent]:
        out = []
        for ev in self.events:
            if ev.time < since:
                continue
            if kind is not None and ev.kind != kind:
                continue
            if host is not None and ev.host != host:
                continue
            if txn is not None and ev.txn_id != txn:
                continue
            out.append(ev)
        return out

    def timeline(self, txn_id: str) -> str:
        """A transaction's events across all hosts, rendered as text."""
        events = self.query(txn=txn_id)
        if not events:
            return f"(no events for {txn_id})"
        return "\n".join(repr(ev) for ev in sorted(events, key=lambda e: e.time))

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
