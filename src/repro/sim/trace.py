"""Structured event tracing for protocol debugging.

A :class:`Tracer` collects ``(time, host, kind, fields)`` events with cheap
filtering.  DAST nodes/managers emit traces when a tracer is attached to
the system (``DastSystem.attach_tracer()``); nothing is recorded otherwise.

Typical debugging session::

    tracer = system.attach_tracer(kinds={"execute", "commit"})
    ... run ...
    for ev in tracer.query(host="r0.n0", txn="t42"):
        print(ev)
    print(tracer.timeline("t42"))    # one transaction's full story
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Iterable, List, Optional, Set

__all__ = ["TraceEvent", "Tracer", "trace_client_rpc"]


def trace_client_rpc(sim, tracer: "Tracer", client: str, txn_id: str, event) -> None:
    """Emit the client-side ``submit``/``reply`` span-boundary events.

    Called by the systems' ``submit()`` when a tracer is attached: the pair
    brackets the exact client-observed latency, so assembled phase spans
    telescope to it precisely (including both client<->coordinator hops).
    """
    tracer.emit(sim.now, client, "submit", txn=txn_id)

    def on_reply(ev) -> None:
        crt = getattr(ev.value, "is_crt", None) if ev.ok else None
        tracer.emit(sim.now, client, "reply", txn=txn_id, ok=ev.ok, crt=crt)

    event.add_callback(on_reply)


class TraceEvent:
    """One recorded protocol event: (time, host, kind, fields)."""

    __slots__ = ("time", "host", "kind", "fields")

    def __init__(self, time: float, host: str, kind: str, fields: Dict[str, Any]):
        self.time = time
        self.host = host
        self.kind = kind
        self.fields = fields

    @property
    def txn_id(self) -> Optional[str]:
        return self.fields.get("txn")

    def __repr__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"[{self.time:10.3f}] {self.host:<10} {self.kind:<14} {extra}"


class Tracer:
    """Collects trace events, optionally restricted to certain kinds/hosts."""

    # Flat tracers carry no causal span tree; repro.obs.trace.CausalTracer
    # overrides this.  Attach sites (system.submit, the RPC layer) check the
    # flag instead of importing the obs layer.
    causal = False

    def __init__(
        self,
        kinds: Optional[Iterable[str]] = None,
        hosts: Optional[Iterable[str]] = None,
        capacity: int = 200_000,
    ):
        self.kinds: Optional[Set[str]] = set(kinds) if kinds else None
        self.hosts: Optional[Set[str]] = set(hosts) if hosts else None
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        self.dropped = 0
        self._warned = False

    # ------------------------------------------------------------------
    def emit(self, time: float, host: str, kind: str, **fields: Any) -> None:
        if self.kinds is not None and kind not in self.kinds:
            return
        if self.hosts is not None and host not in self.hosts:
            return
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, host, kind, fields))

    @property
    def truncated(self) -> bool:
        """True when at least one event was dropped at capacity."""
        return self.dropped > 0

    def truncation_notice(self) -> str:
        """One-line description of event loss (empty when none occurred)."""
        if not self.dropped:
            return ""
        return (f"(warning: {self.dropped} trace events dropped at capacity "
                f"{self.capacity}; results are incomplete)")

    def _warn_if_truncated(self) -> None:
        if self.dropped and not self._warned:
            self._warned = True
            warnings.warn(self.truncation_notice(), RuntimeWarning, stacklevel=3)

    # ------------------------------------------------------------------
    def query(
        self,
        kind: Optional[str] = None,
        host: Optional[str] = None,
        txn: Optional[str] = None,
        since: float = 0.0,
    ) -> List[TraceEvent]:
        self._warn_if_truncated()
        out = []
        for ev in self.events:
            if ev.time < since:
                continue
            if kind is not None and ev.kind != kind:
                continue
            if host is not None and ev.host != host:
                continue
            if txn is not None and ev.txn_id != txn:
                continue
            out.append(ev)
        return out

    def timeline(self, txn_id: str) -> str:
        """A transaction's events across all hosts, rendered as text."""
        events = self.query(txn=txn_id)
        if not events:
            text = f"(no events for {txn_id})"
        else:
            text = "\n".join(repr(ev) for ev in sorted(events, key=lambda e: e.time))
        notice = self.truncation_notice()
        return f"{text}\n{notice}" if notice else text

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
        self._warned = False
