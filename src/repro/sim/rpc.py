"""Asynchronous RPC endpoints on top of the simulated network.

Mirrors the paper's implementation (§5): "all of DAST's protocol messages are
implemented with asynchronous RPC calls", with each node running one thread
for I/O.  Here each :class:`Endpoint` serializes message *processing* through
a single virtual CPU with a configurable per-message service time — that
service time is what makes throughput saturate as client counts grow, which
the evaluation (Fig 5, Fig 8) depends on.

Handlers are registered per method name and may be plain functions (returning
the response directly) or generator coroutines (spawned as kernel processes;
their return value is the response).

Wire layer: payloads travel as typed envelopes.  A sender may pass a
:class:`repro.wire.WireMessage` (the method name is taken from the schema and
the payload is encoded into a sized frame), or a legacy
``(method, payload)`` pair whose payload rides opaquely.  Encoded frames are
decoded back into typed messages at delivery — an unknown or malformed frame
raises :class:`repro.wire.WireError` naming the message.

Batching: with ``batch_window > 0`` the endpoint coalesces *batchable*
one-way messages (see ``repro.wire.messages``) per destination; the buffer
flushes ``batch_window`` virtual ms after its first message as a single
network message carrying all frames, which the receiver unpacks in order.

Envelope schema v2 (causal tracing): every envelope carries an optional
``trace_ctx`` — a compact ``(trace_id, span_id)`` pair stamped at send time
when a :class:`repro.obs.trace.CausalTracer` is attached to the network
(``network.causal``), and ``None`` otherwise.  The context's virtual wire
cost is modelled by ``repro.wire.schema.TRACE_CTX_BYTES`` and accounted in
the *separate* ``NetworkStats.trace_bytes_sent`` lane, so ``wire_size()``
(and therefore every golden byte count) is identical with tracing on or
off.  All tracing work below is guarded by a single ``network.causal is
None`` check per site: a detached run does no extra work.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import ProtocolError, RpcTimeout
from repro.sim.kernel import Event, Process, Simulator
from repro.sim.network import Network
from repro.wire.schema import (
    Encoded,
    WireMessage,
    batch_size,
    decode,
    encode,
    schema_for,
    sizeof,
)

__all__ = ["Endpoint", "RpcRemoteError", "ENVELOPE_VERSION"]

# Virtual bytes of framing around a payload (kind tag, rpc id, method name).
_ENVELOPE_OVERHEAD = 16
# Envelope schema version: bumped to 2 when the optional trace_ctx field was
# added (see module docstring and docs/WIRE.md).  The context is a local
# object reference in the simulator, so no version negotiation is needed —
# the constant documents the wire-format lineage for the size model.
ENVELOPE_VERSION = 2


class RpcRemoteError(ProtocolError):
    """The remote handler raised; the error text travels back to the caller."""


class _Request:
    __slots__ = ("rpc_id", "method", "payload", "trace_ctx")

    def __init__(self, rpc_id: int, method: str, payload: Any, trace_ctx=None):
        self.rpc_id = rpc_id
        self.method = method
        self.payload = payload
        self.trace_ctx = trace_ctx

    @property
    def type_name(self) -> str:
        return self.method

    def wire_size(self) -> int:
        payload = self.payload
        inner = payload.size if payload.__class__ is Encoded else sizeof(payload)
        return _ENVELOPE_OVERHEAD + len(self.method) + inner


class _Response:
    __slots__ = ("rpc_id", "method", "ok", "value", "trace_ctx")

    def __init__(self, rpc_id: int, method: str, ok: bool, value: Any,
                 trace_ctx=None):
        self.rpc_id = rpc_id
        self.method = method
        self.ok = ok
        self.value = value
        self.trace_ctx = trace_ctx

    @property
    def type_name(self) -> str:
        return f"resp:{self.method}"

    def wire_size(self) -> int:
        return _ENVELOPE_OVERHEAD + len(self.method) + sizeof(self.value)


class _Oneway:
    __slots__ = ("method", "payload", "trace_ctx")

    def __init__(self, method: str, payload: Any, trace_ctx=None):
        self.method = method
        self.payload = payload
        self.trace_ctx = trace_ctx

    @property
    def type_name(self) -> str:
        return self.method

    def wire_size(self) -> int:
        payload = self.payload
        inner = payload.size if payload.__class__ is Encoded else sizeof(payload)
        return _ENVELOPE_OVERHEAD + len(self.method) + inner


class _Batch:
    __slots__ = ("frames", "trace_ctx")

    def __init__(self, frames: Tuple[Encoded, ...]):
        self.frames = frames
        self.trace_ctx = None  # batches aggregate many txns; never traced

    @property
    def type_name(self) -> str:
        return "batch"

    def wire_size(self) -> int:
        return _ENVELOPE_OVERHEAD + batch_size(self.frames)


class Endpoint:
    """One RPC endpoint per simulated host."""

    # Class-level id stream: rpc ids are globally unique across endpoints,
    # so a late response can never be mistaken for a newer call's response.
    _ids = itertools.count(1)

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        host: str,
        region: str,
        service_time: float = 0.0,
        batch_window: float = 0.0,
    ):
        self.sim = sim
        self.network = network
        self.host = host
        self.region = region
        self.service_time = service_time
        self.batch_window = batch_window
        self._busy_until = 0.0
        self._cheap: set = set()
        self._handlers: Dict[str, Callable] = {}
        self._pending: Dict[int, Event] = {}
        self._batch_buf: Dict[str, List[Encoded]] = {}
        network.register(host, region, self._on_message)
        network.endpoints.append(self)

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    def register(self, method: str, handler: Callable, cheap: bool = False) -> None:
        """Register ``handler(src, payload)`` for ``method``.

        ``cheap`` methods bypass the CPU service-time queue — used for
        control-plane traffic (clock reports) that a real implementation
        piggybacks on other messages at negligible cost.
        """
        if method in self._handlers:
            raise ProtocolError(f"{self.host}: handler for {method!r} already registered")
        self._handlers[method] = handler
        if cheap:
            self._cheap.add(method)

    def charge(self, cost: float) -> None:
        """Consume ``cost`` ms of this node's CPU (sender-side work such as
        a leader fanning a batch out to many followers)."""
        self._busy_until = max(self.sim.now, self._busy_until) + cost

    def _is_cheap(self, envelope: Any) -> bool:
        kind = envelope.__class__
        if kind is _Oneway:
            return envelope.method in self._cheap
        if kind is _Batch:
            return all(frame.name in self._cheap for frame in envelope.frames)
        return False

    def _on_message(self, src: str, envelope: Any) -> None:
        causal = self.network.causal
        # Cheap one-ways (clock reports) dominate traffic: dispatch them
        # inline without the _is_cheap/_process indirection.
        if envelope.__class__ is _Oneway and envelope.method in self._cheap:
            payload = envelope.payload
            if payload.__class__ is Encoded:
                payload = decode(payload)
            if causal is None:
                self._invoke(envelope.method, src, payload)
                return
            ctx = envelope.trace_ctx
            if ctx is not None:
                causal.end_hop(ctx, self.sim.now, 0.0, 0.0)
            causal.push_active(ctx)
            try:
                self._invoke(envelope.method, src, payload)
            finally:
                causal.pop_active()
            return
        if envelope.__class__ is _Batch and self._is_cheap(envelope):
            self._process(src, envelope)
            return
        # Serialize processing through the node's single CPU.
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + self.service_time
        if causal is not None:
            ctx = envelope.trace_ctx
            if ctx is not None:
                # The receive-side split: CPU queueing behind earlier
                # messages, then this message's own service time.
                causal.end_hop(ctx, self.sim.now,
                               start - self.sim.now, self.service_time)
        self.sim.schedule(self._busy_until - self.sim.now, self._process, src, envelope)

    def _process(self, src: str, envelope: Any) -> None:
        causal = self.network.causal
        if causal is None:
            self._dispatch(src, envelope)
            return
        # Handlers run under the envelope's trace context so every send they
        # make synchronously parents to this hop (repro.obs.trace).
        causal.push_active(envelope.trace_ctx)
        try:
            self._dispatch(src, envelope)
        finally:
            causal.pop_active()

    def _dispatch(self, src: str, envelope: Any) -> None:
        # Dispatch ordered by observed frequency: one-way fan-outs (clock
        # reports) dominate, then request/response pairs, then batches.
        kind = envelope.__class__
        if kind is _Oneway:
            self._invoke(envelope.method, src, self._decode(envelope.payload))
        elif kind is _Request:
            self._handle_request(src, envelope)
        elif kind is _Response:
            self._handle_response(envelope.rpc_id, envelope.ok, envelope.value)
        elif kind is _Batch:
            for frame in envelope.frames:
                self._invoke(frame.name, src, decode(frame))
        else:
            raise ProtocolError(f"{self.host}: bad envelope {envelope!r}")

    @staticmethod
    def _decode(payload: Any) -> Any:
        return decode(payload) if payload.__class__ is Encoded else payload

    def _invoke(self, method: str, src: str, payload: Any):
        handler = self._handlers.get(method)
        if handler is None:
            raise ProtocolError(f"{self.host}: no handler for method {method!r}")
        result = handler(src, payload)
        if hasattr(result, "send") and hasattr(result, "throw"):
            return self.sim.spawn(result, name=f"{self.host}.{method}")
        return result

    def _handle_request(self, src: str, req: _Request) -> None:
        result = self._invoke(req.method, src, self._decode(req.payload))
        if isinstance(result, Process):
            result.add_callback(
                lambda ev: self._reply(
                    src, req, ev.ok, ev.value if ev.ok else str(ev.exception)
                )
            )
        else:
            self._reply(src, req, True, result)

    def _reply(self, dst: str, req: _Request, ok: bool, value: Any) -> None:
        causal = self.network.causal
        ctx = None
        if causal is not None and req.trace_ctx is not None:
            # The response hop parents to the request hop explicitly: with a
            # coroutine handler the reply fires from a process callback,
            # outside any active handler context.
            ctx = causal.begin_hop(self.host, dst, f"resp:{req.method}",
                                   None, parent=req.trace_ctx)
        self.network.send(self.host, dst,
                          _Response(req.rpc_id, req.method, ok, value, ctx))

    def _handle_response(self, rpc_id: int, ok: bool, value: Any) -> None:
        event = self._pending.pop(rpc_id, None)
        if event is None:
            return  # late response after timeout/expiry: drop, like a real stub
        if event.triggered:
            # Defensive: never double-resolve (e.g. a duplicated response
            # racing an expiry that already failed the event).
            return
        if ok:
            event.succeed(value)
        else:
            event.fail(RpcRemoteError(value))

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def _coerce(
        self, method: Union[str, WireMessage], payload: Any
    ) -> Tuple[str, Any]:
        """Normalize the two calling conventions into (method, wire payload).

        ``send(dst, msg)`` — a typed message; name comes from the schema.
        ``send(dst, "method", payload)`` — legacy; a typed payload is still
        encoded, anything else rides opaquely.
        """
        if method.__class__ is not str and isinstance(method, WireMessage):
            if payload is not None:
                raise ProtocolError(
                    f"{self.host}: passing both a typed message and a payload"
                )
            return method.NAME, encode(method)
        if isinstance(payload, WireMessage):
            return method, encode(payload)
        return method, payload

    def call(
        self,
        dst: str,
        method: Union[str, WireMessage],
        payload: Any = None,
        timeout: Optional[float] = None,
    ) -> Event:
        """Send a request; the returned event resolves with the response.

        On ``timeout`` (ms) the event fails with :class:`RpcTimeout` and any
        late response is discarded.
        """
        method, payload = self._coerce(method, payload)
        rpc_id = next(self._ids)
        event = self.sim.event()
        self._pending[rpc_id] = event
        causal = self.network.causal
        ctx = None
        if causal is not None:
            ctx = causal.begin_hop(self.host, dst, method, payload)
        self.network.send(self.host, dst, _Request(rpc_id, method, payload, ctx))
        if timeout is not None:
            self.sim.schedule(timeout, self._expire, rpc_id, dst, method)
        return event

    def _expire(self, rpc_id: int, dst: str, method: str) -> None:
        event = self._pending.pop(rpc_id, None)
        if event is None:
            return  # already resolved (or already expired)
        if not event.triggered:
            event.fail(RpcTimeout(f"{self.host}->{dst} {method} timed out"))

    def send(self, dst: str, method: Union[str, WireMessage], payload: Any = None) -> None:
        """One-way message; no response, no delivery guarantee.

        Batchable typed messages are coalesced per destination while a batch
        window is configured; everything else goes out immediately.
        """
        method, payload = self._coerce(method, payload)
        causal = self.network.causal
        if self.batch_window > 0 and isinstance(payload, Encoded):
            schema = schema_for(payload.name)
            if schema is not None and schema.BATCHABLE:
                if causal is not None:
                    # Buffered frames are recorded (for message-count
                    # honesty) but never carry a context: the batch that
                    # eventually flushes aggregates many transactions.
                    causal.note_batched(self.host, dst, payload, self.sim.now)
                buf = self._batch_buf.setdefault(dst, [])
                buf.append(payload)
                if len(buf) == 1:
                    self.sim.schedule(self.batch_window, self._flush_batch, dst)
                return
        ctx = None
        if causal is not None:
            ctx = causal.begin_hop(self.host, dst, method, payload)
        self.network.send(self.host, dst, _Oneway(method, payload, ctx))

    def _flush_batch(self, dst: str) -> None:
        frames = self._batch_buf.pop(dst, None)
        if not frames:
            return
        if len(frames) == 1:
            self.network.send(self.host, dst, _Oneway(frames[0].name, frames[0]))
        else:
            self.network.send(self.host, dst, _Batch(tuple(frames)))

    def flush(self) -> None:
        """Flush all pending batches immediately (e.g. on shutdown)."""
        for dst in sorted(self._batch_buf):
            self._flush_batch(dst)

    def broadcast(self, dsts, method: Union[str, WireMessage], payload: Any = None) -> None:
        method, payload = self._coerce(method, payload)
        for dst in dsts:
            self.send(dst, method, payload)
