"""Asynchronous RPC endpoints on top of the simulated network.

Mirrors the paper's implementation (§5): "all of DAST's protocol messages are
implemented with asynchronous RPC calls", with each node running one thread
for I/O.  Here each :class:`Endpoint` serializes message *processing* through
a single virtual CPU with a configurable per-message service time — that
service time is what makes throughput saturate as client counts grow, which
the evaluation (Fig 5, Fig 8) depends on.

Handlers are registered per method name and may be plain functions (returning
the response directly) or generator coroutines (spawned as kernel processes;
their return value is the response).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ProtocolError, RpcTimeout
from repro.sim.kernel import Event, Process, Simulator
from repro.sim.network import Network

__all__ = ["Endpoint", "RpcRemoteError"]

_REQ = "req"
_RESP = "resp"
_ONEWAY = "oneway"


class RpcRemoteError(ProtocolError):
    """The remote handler raised; the error text travels back to the caller."""


class Endpoint:
    """One RPC endpoint per simulated host."""

    _ids = itertools.count(1)

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        host: str,
        region: str,
        service_time: float = 0.0,
    ):
        self.sim = sim
        self.network = network
        self.host = host
        self.region = region
        self.service_time = service_time
        self._busy_until = 0.0
        self._cheap: set = set()
        self._handlers: Dict[str, Callable] = {}
        self._pending: Dict[int, Tuple[Event, Optional[Event]]] = {}
        network.register(host, region, self._on_message)

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    def register(self, method: str, handler: Callable, cheap: bool = False) -> None:
        """Register ``handler(src, payload)`` for ``method``.

        ``cheap`` methods bypass the CPU service-time queue — used for
        control-plane traffic (clock reports) that a real implementation
        piggybacks on other messages at negligible cost.
        """
        if method in self._handlers:
            raise ProtocolError(f"{self.host}: handler for {method!r} already registered")
        self._handlers[method] = handler
        if cheap:
            self._cheap.add(method)

    def charge(self, cost: float) -> None:
        """Consume ``cost`` ms of this node's CPU (sender-side work such as
        a leader fanning a batch out to many followers)."""
        self._busy_until = max(self.sim.now, self._busy_until) + cost

    def _on_message(self, src: str, envelope: tuple) -> None:
        if envelope[0] == _ONEWAY and envelope[1] in self._cheap:
            self._process(src, envelope)
            return
        # Serialize processing through the node's single CPU.
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + self.service_time
        self.sim.schedule(self._busy_until - self.sim.now, self._process, src, envelope)

    def _process(self, src: str, envelope: tuple) -> None:
        kind = envelope[0]
        if kind == _REQ:
            _, rpc_id, method, payload = envelope
            self._handle_request(src, rpc_id, method, payload)
        elif kind == _ONEWAY:
            _, method, payload = envelope
            self._invoke(method, src, payload)
        elif kind == _RESP:
            _, rpc_id, ok, value = envelope
            self._handle_response(rpc_id, ok, value)
        else:
            raise ProtocolError(f"{self.host}: bad envelope kind {kind!r}")

    def _invoke(self, method: str, src: str, payload: Any):
        handler = self._handlers.get(method)
        if handler is None:
            raise ProtocolError(f"{self.host}: no handler for method {method!r}")
        result = handler(src, payload)
        if hasattr(result, "send") and hasattr(result, "throw"):
            return self.sim.spawn(result, name=f"{self.host}.{method}")
        return result

    def _handle_request(self, src: str, rpc_id: int, method: str, payload: Any) -> None:
        result = self._invoke(method, src, payload)
        if isinstance(result, Process):
            result.add_callback(
                lambda ev: self._reply(src, rpc_id, ev.ok, ev.value if ev.ok else str(ev.exception))
            )
        else:
            self._reply(src, rpc_id, True, result)

    def _reply(self, dst: str, rpc_id: int, ok: bool, value: Any) -> None:
        self.network.send(self.host, dst, (_RESP, rpc_id, ok, value))

    def _handle_response(self, rpc_id: int, ok: bool, value: Any) -> None:
        entry = self._pending.pop(rpc_id, None)
        if entry is None:
            return  # late response after timeout: drop, like a real client stub
        event, _timer = entry
        if event.triggered:
            return
        if ok:
            event.succeed(value)
        else:
            event.fail(RpcRemoteError(value))

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def call(self, dst: str, method: str, payload: Any, timeout: Optional[float] = None) -> Event:
        """Send a request; the returned event resolves with the response.

        On ``timeout`` (ms) the event fails with :class:`RpcTimeout` and any
        late response is discarded.
        """
        rpc_id = next(self._ids)
        event = self.sim.event()
        self._pending[rpc_id] = (event, None)
        self.network.send(self.host, dst, (_REQ, rpc_id, method, payload))
        if timeout is not None:
            self.sim.schedule(timeout, self._expire, rpc_id, dst, method)
        return event

    def _expire(self, rpc_id: int, dst: str, method: str) -> None:
        entry = self._pending.pop(rpc_id, None)
        if entry is None:
            return
        event, _timer = entry
        if not event.triggered:
            event.fail(RpcTimeout(f"{self.host}->{dst} {method} timed out"))

    def send(self, dst: str, method: str, payload: Any) -> None:
        """One-way message; no response, no delivery guarantee."""
        self.network.send(self.host, dst, (_ONEWAY, method, payload))

    def broadcast(self, dsts, method: str, payload: Any) -> None:
        for dst in dsts:
            self.send(dst, method, payload)
