"""Partition eligibility gate and the conservative lookahead rule.

A trial runs region-partitioned only when the model guarantees the
partitioned execution is *indistinguishable* from the serial one for every
virtual-time output.  Anything that couples partitions outside the message
channel — a shared seeded RNG consumed on the delivery path, byte-cost
hooks whose delays depend on global id-string lengths, arbitrary user
hooks poking the system mid-run — forces the plain serial kernel, with a
named reason recorded on the trial result.

Fault plans are allowed but demote the backend to **lockstep** (one OS
thread stepping the region kernels in a fixed order): fault handlers
mutate shared control-plane state (catalog, manager directory, partition
sets) that the threaded backend must never see change mid-window.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = [
    "MODE_SERIAL",
    "MODE_LOCKSTEP",
    "MODE_THREADS",
    "PAR_SAFE_FAULT_KINDS",
    "lookahead",
    "resolve_mode",
]

MODE_SERIAL = "serial"
MODE_LOCKSTEP = "lockstep"
MODE_THREADS = "threads"

# Fault kinds a partitioned run can host (under the lockstep backend):
# membership/partition faults apply at control-kernel instants, between
# windows, where every partition is synchronized.  The excluded kinds
# (set_drop / set_jitter / set_reorder / set_duplicate) make delivery
# consume the shared network RNG stream per message, whose draw order is
# partition-interleaving-dependent — those plans fall back to serial.
PAR_SAFE_FAULT_KINDS = frozenset({
    "crash_node", "readd_replica", "fail_manager", "report_failure",
    "partition_hosts", "heal_hosts", "partition_oneway", "heal_oneway",
    "partition_regions", "heal_regions", "partition_regions_oneway",
    "heal_regions_oneway", "set_rtt", "clock_skew",
})

# Progress floor: the network's delivery model never schedules below this
# delay, so a window of this width always makes progress even when the
# cross-region RTT is zero — the degenerate "lockstep epochs" case the
# lookahead tests pin.
MIN_LOOKAHEAD = 0.01


def lookahead(network) -> float:
    """Minimum cross-region one-way delay currently possible on ``network``.

    This is the conservative lookahead: a message sent at ``t`` from one
    region to another arrives no earlier than ``t + lookahead(network)``,
    so a partition executing the window ``[t, t + lookahead)`` can never
    receive input for it.  Recomputed at every window boundary because
    chaos plans may change RTTs mid-run (``set_rtt``).
    """
    f = network.forward_fraction
    frac = min(f, 1.0 - f)
    la = max(MIN_LOOKAHEAD, network.cross_region_rtt * frac)
    for rtt in network._rtt_overrides.values():
        pair = max(MIN_LOOKAHEAD, rtt * frac)
        if pair < la:
            la = pair
    return la


def resolve_mode(trial, requested: int,
                 hooks: bool = False) -> Tuple[str, Optional[str]]:
    """Decide how a trial executes: ``(mode, serial_reason)``.

    ``requested`` is the ``--parallel-regions/-j`` knob (0/1 = off).
    Returns one of :data:`MODE_SERIAL` / :data:`MODE_LOCKSTEP` /
    :data:`MODE_THREADS`; when serial, the second element names why the
    partitioned kernel declined, so bench rows stay self-describing.
    """
    if requested < 2:
        return MODE_SERIAL, None  # parallelism not requested
    if trial.num_regions < 2:
        return MODE_SERIAL, "single-region topology has nothing to partition"
    if trial.system != "dast":
        return MODE_SERIAL, f"system {trial.system!r} is not partition-aware"
    if trial.timing.drop_probability > 0.0:
        return MODE_SERIAL, ("random drops consume the shared network RNG "
                             "per message")
    if hooks:
        return MODE_SERIAL, "custom trial hooks may touch the system mid-run"
    plan = getattr(trial, "topology_plan", None)
    if plan is not None and getattr(plan, "events", None):
        # Mid-trial reconfiguration (repro.topo) rewrites the shared
        # catalog, member sets, and RTT matrix that the partitioned
        # kernel's lookahead horizon was computed from.  Static rtt_profile
        # / service_multipliers / spare_regions stay partition-eligible.
        return MODE_SERIAL, ("topology plan: dynamic reconfiguration "
                             "requires the serial kernel")
    if trial.fault_plan is not None:
        unsafe = sorted({e.kind for e in trial.fault_plan.events}
                        - PAR_SAFE_FAULT_KINDS)
        if unsafe:
            return MODE_SERIAL, (f"fault plan uses RNG-coupled kinds {unsafe}")
        return MODE_LOCKSTEP, None
    if trial.obs or trial.obs_causal:
        # Tracer/registry/probe attachments are single-threaded consumers;
        # lockstep keeps their emission order deterministic.
        return MODE_LOCKSTEP, None
    return MODE_THREADS, None
