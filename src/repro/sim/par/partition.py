"""Partition eligibility gate, backend selection, and the lookahead rules.

A trial runs region-partitioned only when the model guarantees the
partitioned execution is *indistinguishable* from the serial one for every
virtual-time output.  Anything that couples partitions outside the message
channel — a shared seeded RNG consumed on the delivery path, byte-cost
hooks whose delays depend on global id-string lengths, arbitrary user
hooks poking the system mid-run — forces the plain serial kernel, with a
named reason recorded on the trial result.

Fault plans are allowed but demote the backend to **lockstep** (one OS
thread stepping the region kernels in a fixed order): fault handlers
mutate shared control-plane state (catalog, manager directory, partition
sets) that the threaded backend must never see change mid-window.

Two partitioning *shapes* exist:

* **region mode** (the default, multi-region topologies): one partition
  per region, windows bounded by the minimum cross-region one-way delay
  (:func:`lookahead`);
* **sub-region sharding** (hot single-region trials): one region's nodes
  split into K shard-partitions, windows bounded by the intra-region
  one-way delay.  :func:`plan_partitions` builds the host → partition
  map; eligibility is narrower (closed-loop dast only) because every
  hop, including client → coordinator, must clear the smaller horizon.

Region mode is byte-identical to serial.  Sub-region sharding carries a
weaker — but still pinned — contract: intra-region delays are uniform, so
cross-partition messages routinely *tie* on arrival instant, and the
canonical channel order serializes those ties differently than the single
kernel's insertion order would.  Sub-shard runs are therefore a distinct
deterministic serialization of the same model: byte-stable run-to-run and
across every partitioned backend (lockstep == threads == process), but
not a replay of the serial schedule.  The determinism tests pin exactly
this split.

Backends: the ``parallel_backend`` knob ("auto"/"serial"/"lockstep"/
"threads"/"process") picks *how* eligible partitions execute.  "auto"
keeps the PR 8 behaviour (threads, demoted to lockstep by faults/obs).
An explicit backend never widens eligibility — trials that auto demotes
to lockstep stay lockstep, and serial-only trials stay serial — it only
chooses among the window-equivalent execution strategies.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = [
    "MODE_SERIAL",
    "MODE_LOCKSTEP",
    "MODE_THREADS",
    "MODE_PROCESS",
    "BACKENDS",
    "PAR_SAFE_FAULT_KINDS",
    "lookahead",
    "plan_partitions",
    "resolve_mode",
]

MODE_SERIAL = "serial"
MODE_LOCKSTEP = "lockstep"
MODE_THREADS = "threads"
MODE_PROCESS = "process"

# Legal values of Trial/TrialSpec ``parallel_backend``.
BACKENDS = ("auto", MODE_SERIAL, MODE_LOCKSTEP, MODE_THREADS, MODE_PROCESS)

# Fault kinds a partitioned run can host (under the lockstep backend):
# membership/partition faults apply at control-kernel instants, between
# windows, where every partition is synchronized.  The excluded kinds
# (set_drop / set_jitter / set_reorder / set_duplicate) make delivery
# consume the shared network RNG stream per message, whose draw order is
# partition-interleaving-dependent — those plans fall back to serial.
PAR_SAFE_FAULT_KINDS = frozenset({
    "crash_node", "readd_replica", "fail_manager", "report_failure",
    "partition_hosts", "heal_hosts", "partition_oneway", "heal_oneway",
    "partition_regions", "heal_regions", "partition_regions_oneway",
    "heal_regions_oneway", "set_rtt", "clock_skew",
})

# Progress floor: the network's delivery model never schedules below this
# delay, so a window of this width always makes progress even when the
# cross-region RTT is zero — the degenerate "lockstep epochs" case the
# lookahead tests pin.
MIN_LOOKAHEAD = 0.01


def lookahead(network) -> float:
    """Minimum cross-region one-way delay currently possible on ``network``.

    This is the conservative lookahead: a message sent at ``t`` from one
    region to another arrives no earlier than ``t + lookahead(network)``,
    so a partition executing the window ``[t, t + lookahead)`` can never
    receive input for it.  Recomputed at every window boundary because
    chaos plans may change RTTs mid-run (``set_rtt``).
    """
    f = network.forward_fraction
    frac = min(f, 1.0 - f)
    la = max(MIN_LOOKAHEAD, network.cross_region_rtt * frac)
    for rtt in network._rtt_overrides.values():
        pair = max(MIN_LOOKAHEAD, rtt * frac)
        if pair < la:
            la = pair
    return la


def intra_lookahead(network) -> float:
    """Conservative lookahead for sub-region sharding.

    Every hop between sub-region partitions — replica to replica, node to
    manager, client to coordinator — is an intra-region hop, whose
    one-way delay the network floors at ``max(0.01, intra_rtt / 2)``
    (see :meth:`Network._one_way_delay`).  Loopback hops stay inside one
    partition by construction (same host, same kernel).
    """
    return max(MIN_LOOKAHEAD, network.intra_region_rtt / 2.0)


def plan_partitions(topology, requested: int) -> Optional[Dict[str, str]]:
    """Host → partition-name map for sub-region sharding, or ``None``.

    ``None`` means "use region mode" (one partition per region) — the
    multi-region default, which keeps every PR 8 construction path and
    digest untouched.  For a single populated region with >= 2 shards,
    splits that region into ``K = min(requested, shards)`` partitions
    named ``{region}@{k}``: shard *j* (by shard index) lands on partition
    ``j % K`` with all its replicas, the manager pair anchors partition
    0, and each client follows the shard it binds to first
    (``shards[i % len(shards)]`` — the closed-loop binding rule).
    """
    populated = [r for r in topology.regions if topology.nodes_in_region(r)]
    if len(populated) != 1:
        return None
    region = populated[0]
    shards = sorted(topology.shards_in_region(region), key=topology.shard_index)
    k = min(int(requested), len(shards))
    if k < 2:
        return None
    parts = [f"{region}@{i}" for i in range(k)]
    mapping: Dict[str, str] = {}
    shard_part: Dict[str, str] = {}
    for j, shard_id in enumerate(shards):
        name = parts[j % k]
        shard_part[shard_id] = name
        for host in topology.replicas_of(shard_id):
            mapping[host] = name
    mapping[topology.manager_of(region)] = parts[0]
    mapping[topology.manager_backup_of(region)] = parts[0]
    for i, client in enumerate(topology.clients_in_region(region)):
        mapping[client] = shard_part[shards[i % len(shards)]]
    return mapping


def _subshard_reason(trial) -> Optional[str]:
    """Why a single-region trial cannot sub-region shard (None = it can)."""
    if trial.shards_per_region < 2:
        return "single-region topology has nothing to partition"
    if trial.system != "dast":
        return f"system {trial.system!r} is not partition-aware"
    if trial.open_loop is not None:
        return ("open-loop express submissions bypass the per-message "
                "network; sub-region sharding is closed-loop only")
    if getattr(trial, "spare_regions", 0):
        return ("spare regions can join mid-trial; sub-region sharding "
                "needs a static shard map")
    if trial.fault_plan is not None:
        return ("fault handlers rewrite the shared region control plane; "
                "sub-region shards fall back to serial")
    if trial.obs or trial.obs_causal:
        return ("observability attachments consume events in emission "
                "order; sub-region sharding declines")
    return None


def resolve_mode(trial, requested: int,
                 hooks: bool = False) -> Tuple[str, Optional[str]]:
    """Decide how a trial executes: ``(mode, serial_reason)``.

    ``requested`` is the ``--parallel-regions/-j`` knob (0/1 = off).
    ``trial.parallel_backend`` (default "auto") selects among the
    eligible backends; it can *narrow* (force serial/lockstep) but never
    widen — a trial auto would demote stays demoted.  Returns one of the
    MODE_* constants; when serial, the second element names why the
    partitioned kernel declined, so bench rows stay self-describing.
    """
    backend = getattr(trial, "parallel_backend", "auto") or "auto"
    if backend not in BACKENDS:
        from repro.errors import ConfigError

        raise ConfigError(
            f"unknown parallel backend {backend!r}; pick one of {BACKENDS}")
    if requested < 2:
        return MODE_SERIAL, None  # parallelism not requested
    if backend == MODE_SERIAL:
        return MODE_SERIAL, "serial backend explicitly requested"
    if trial.num_regions < 2:
        reason = _subshard_reason(trial)
        if reason is not None:
            return MODE_SERIAL, reason
        # Sub-region sharding is narrower than region mode: the gates
        # below (drops, hooks, topology plans) still apply.
    elif trial.system != "dast":
        return MODE_SERIAL, f"system {trial.system!r} is not partition-aware"
    if trial.timing.drop_probability > 0.0:
        return MODE_SERIAL, ("random drops consume the shared network RNG "
                             "per message")
    if hooks:
        return MODE_SERIAL, "custom trial hooks may touch the system mid-run"
    plan = getattr(trial, "topology_plan", None)
    if plan is not None and getattr(plan, "events", None):
        # Mid-trial reconfiguration (repro.topo) rewrites the shared
        # catalog, member sets, and RTT matrix that the partitioned
        # kernel's lookahead horizon was computed from.  Static rtt_profile
        # / service_multipliers / spare_regions stay partition-eligible.
        return MODE_SERIAL, ("topology plan: dynamic reconfiguration "
                             "requires the serial kernel")
    if trial.fault_plan is not None:
        unsafe = sorted({e.kind for e in trial.fault_plan.events}
                        - PAR_SAFE_FAULT_KINDS)
        if unsafe:
            return MODE_SERIAL, (f"fault plan uses RNG-coupled kinds {unsafe}")
        return MODE_LOCKSTEP, None
    if trial.obs or trial.obs_causal:
        # Tracer/registry/probe attachments are single-threaded consumers;
        # lockstep keeps their emission order deterministic.
        return MODE_LOCKSTEP, None
    if backend == MODE_LOCKSTEP:
        return MODE_LOCKSTEP, None
    if backend == MODE_PROCESS:
        return MODE_PROCESS, None
    return MODE_THREADS, None
