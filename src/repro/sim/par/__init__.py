"""Region-partitioned parallel simulation (conservative PDES).

The paper's core structural claim — edge regions proceed independently and
only coordinate across the cross-region RTT — is exactly the property that
makes conservative parallel discrete-event simulation safe here: the
minimum cross-region one-way delay is a *lookahead* bound.  No partition
can receive an event from another partition sooner than that, so each
region's kernel may execute a full window of that width without waiting.

Layout:

* :mod:`repro.sim.par.partition` — the eligibility gate (when a trial may
  run partitioned, and with which backend) and the lookahead rule;
* :mod:`repro.sim.par.channel` — the inter-kernel mailbox for cross-region
  messages, drained in a canonical deterministic order at window barriers;
* :mod:`repro.sim.par.group` — :class:`PartitionGroup`, the synchronized
  multi-kernel run loop (lockstep and thread-per-partition backends);
* :mod:`repro.sim.par.proc` — :class:`ProcessGroup`, the process-per-
  partition backend (forked shared-nothing workers, windows over pipes;
  imported lazily by :class:`~repro.core.system.DastSystem` so in-process
  trials never touch it);
* :mod:`repro.sim.par.codec` — the closure-capable pickle codec process
  workers ship cross-partition frames with.

Partitions are regions by default; :func:`plan_partitions` additionally
splits a hot *single-region* topology into shard groups behind the
intra-region lookahead (sub-region sharding).

See ``docs/PARALLEL.md`` for the model, the determinism invariant, and the
serial-fallback rules.
"""

from repro.sim.par.channel import CrossChannel
from repro.sim.par.group import PartitionGroup
from repro.sim.par.partition import (
    BACKENDS,
    MODE_LOCKSTEP,
    MODE_PROCESS,
    MODE_SERIAL,
    MODE_THREADS,
    PAR_SAFE_FAULT_KINDS,
    lookahead,
    plan_partitions,
    resolve_mode,
)

__all__ = [
    "CrossChannel",
    "PartitionGroup",
    "BACKENDS",
    "MODE_SERIAL",
    "MODE_LOCKSTEP",
    "MODE_THREADS",
    "MODE_PROCESS",
    "PAR_SAFE_FAULT_KINDS",
    "lookahead",
    "plan_partitions",
    "resolve_mode",
]
