"""Inter-kernel mailbox for cross-region messages.

During a window each partition buffers its outbound cross-region traffic
here instead of scheduling directly onto the destination kernel — kernels
are single-owner during window execution (a hard requirement of the
threaded backend).  At the barrier the group drains the mailbox in one
canonical order and schedules deliveries onto the destination kernels.

The canonical drain order — ``(arrival_time, send_time, src_partition,
send_seq)`` — reproduces the serial kernel's tie-breaking for every pair
of messages with distinct send instants: the serial heap orders same-
arrival messages by global scheduling sequence, which is monotone in send
time.  Only messages *sent at the same instant from different partitions*
can legally land in a different relative order than serial; the golden
digest tests pin that no observable output depends on those ties.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["CrossChannel"]


class CrossChannel:
    """Per-source-partition buffers with a deterministic merged drain.

    Buffers are keyed by source partition so the threaded backend never
    has two threads appending to the same list; each buffer also carries
    its own send-sequence counter, making the drain order independent of
    thread interleaving.
    """

    def __init__(self, n_partitions: int):
        self._bufs: List[List[Tuple]] = [[] for _ in range(n_partitions)]
        self._seqs: List[int] = [0] * n_partitions

    def push(self, src_idx: int, arrival: float, send_time: float,
             src: str, dst: str, payload: object, incarnation: int) -> None:
        seq = self._seqs[src_idx]
        self._seqs[src_idx] = seq + 1
        self._bufs[src_idx].append(
            (arrival, send_time, src_idx, seq, src, dst, payload, incarnation))

    def pending(self) -> int:
        return sum(len(buf) for buf in self._bufs)

    def drain(self) -> List[Tuple]:
        """All buffered messages in canonical order; buffers are emptied."""
        merged: List[Tuple] = []
        for buf in self._bufs:
            if buf:
                merged.extend(buf)
                buf.clear()
        if len(merged) > 1:
            # The first four fields are the canonical key; the rest
            # (host names, payload) must never influence ordering.
            merged.sort(key=lambda e: (e[0], e[1], e[2], e[3]))
        return merged
