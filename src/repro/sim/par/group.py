"""The synchronized multi-kernel run loop.

:class:`PartitionGroup` owns one :class:`~repro.sim.kernel.Simulator` per
region plus the **control kernel** (``system.sim``): the kernel that hosts
everything region-agnostic — chaos fault plans, observability probe
timers, harness bookkeeping.  Virtual time advances in *windows*::

    t_next = earliest pending event across all kernels
    bound  = min(t_next + lookahead, next control instant, until)
    every partition executes its events in [t_next, bound), then all
    kernels synchronize their clocks to `bound` and exchange the
    cross-region messages buffered during the window

Conservative lookahead (the minimum cross-region one-way delay, see
:func:`repro.sim.par.partition.lookahead`) guarantees a message sent
inside a window arrives at or after its end, so partitions never execute
past a time they could still receive input for.  Control-kernel events and
the final ``until`` instant are executed with exact-instant stepping —
the serial ``run(until)`` is inclusive of events *at* ``until`` and fault
callbacks must fire before same-instant protocol work, matching the
serial kernel's scheduling-sequence order.

Backends: **lockstep** steps the region kernels inline in region order —
this is the canonical partitioned semantics; **threads** runs each
window's partitions on a thread pool and is observationally identical by
construction (kernels are single-owner during a window, cross traffic is
buffered, shared counters use per-partition lanes); **process**
(:class:`repro.sim.par.proc.ProcessGroup`, a subclass of this loop) forks
one OS process per partition and ships the same windows over pipes.

Partitions are regions by default; with a ``host_partition`` map
(sub-region sharding, see :func:`repro.sim.par.partition.plan_partitions`)
they are named shard groups inside one region, and the window lookahead
shrinks to the intra-region one-way delay.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.network import NetworkStats
from repro.sim.par.channel import CrossChannel
from repro.sim.par.partition import (
    MODE_LOCKSTEP,
    MODE_THREADS,
    intra_lookahead,
    lookahead,
)

__all__ = ["PartitionGroup"]


class PartitionGroup:
    """Coordinates one kernel per partition behind a conservative barrier."""

    # Backends this group class implements; the process backend lives in a
    # subclass (repro.sim.par.proc.ProcessGroup) with its own loop.
    _MODES = (MODE_LOCKSTEP, MODE_THREADS)

    def __init__(self, control: Simulator, kernels: Dict[str, Simulator],
                 network, mode: str = MODE_LOCKSTEP,
                 host_partition: Optional[Dict[str, str]] = None):
        if len(kernels) < 2:
            raise SimulationError("partitioned execution needs >= 2 partitions")
        if mode not in self._MODES:
            raise SimulationError(f"unknown partition backend {mode!r}")
        self.control = control
        self.regions: List[str] = list(kernels)
        self.kernels = dict(kernels)
        self._parts: List[Simulator] = [kernels[r] for r in self.regions]
        self.network = network
        self.mode = mode
        self.channel = CrossChannel(len(self._parts))
        self._region_index = {r: i for i, r in enumerate(self.regions)}
        # Sub-region sharding: explicit host -> partition-name map.  None
        # means region mode (a host's partition is its region).
        self._host_partition = dict(host_partition) if host_partition else None
        self._host_loc: Dict[str, Tuple[int, Simulator]] = {}
        self._pool = None
        if mode == MODE_LOCKSTEP:
            # Lockstep is single-threaded: every partition shares the
            # network's own stats object, so no merge step exists.
            self._lanes = [network.stats] * len(self._parts)
        else:
            self._lanes = [NetworkStats() for _ in self._parts]
        # Trial runtime objects the process backend must reach from inside
        # forked workers; registered by the harness before the first run.
        # Base backends share memory with the harness, so storing them is
        # all that happens here.
        self.recorder = None
        self.clients: List = []
        self.engine = None
        self.nodes: Dict = {}
        # Instrumentation: how the run decomposed (window barriers vs
        # exact-instant steps) — surfaced in tests and perf reports.
        self.windows = 0
        self.instants = 0

    # ------------------------------------------------------------------
    # Lookup helpers (hot path for Network._send_par)
    # ------------------------------------------------------------------
    def region_index(self, region: str) -> int:
        return self._region_index[region]

    def locate(self, host: str) -> Tuple[int, Simulator]:
        """``(partition index, kernel)`` owning ``host``; cached."""
        try:
            return self._host_loc[host]
        except KeyError:
            if self._host_partition is not None:
                part = self._host_partition[host]
            else:
                part = self.network._host_region[host]
            idx = self._region_index[part]
            loc = (idx, self._parts[idx])
            self._host_loc[host] = loc
            return loc

    def stats_lane(self, idx: int) -> NetworkStats:
        return self._lanes[idx]

    def _lookahead(self) -> float:
        """The conservative window width for this partition shape."""
        if self._host_partition is not None:
            return intra_lookahead(self.network)
        return lookahead(self.network)

    # ------------------------------------------------------------------
    # Harness hooks (overridden by the process backend)
    # ------------------------------------------------------------------
    def register_runtime(self, recorder=None, clients=(), engine=None,
                         nodes=None) -> None:
        """Tell the group which trial objects workers must operate on."""
        self.recorder = recorder
        self.clients = list(clients)
        self.engine = engine
        self.nodes = dict(nodes) if nodes else {}

    def drain_prep(self) -> None:
        """Propagate client-stop/flush to workers (no-op in shared memory)."""

    def child_rss_kb(self) -> int:
        """Peak RSS of partition worker processes (0 for in-process modes)."""
        return 0

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Advance every kernel to ``until`` (or queue exhaustion)."""
        control = self.control
        parts = self._parts
        horizon = float("inf") if until is None else until
        try:
            while True:
                self._inject()
                t_ctrl = control.peek_time()
                t_next = t_ctrl
                for k in parts:
                    t = k.peek_time()
                    if t is not None and (t_next is None or t < t_next):
                        t_next = t
                if t_next is None or t_next > horizon:
                    break
                if t_ctrl is not None and t_ctrl == t_next:
                    # Control instant: faults/probes fire with every
                    # partition synchronized at exactly this time.  Serial
                    # ordering matches — control callbacks were scheduled
                    # before the run started, so their sequence numbers
                    # precede any same-instant protocol event.
                    self._sync(t_next)
                    self._drain_instant(control, t_next)
                    self.instants += 1
                    continue
                if t_next == horizon:
                    # Terminal instant: run(until) is inclusive of events
                    # at `until`, so step them exactly (region order).
                    self._sync(horizon)
                    for k in parts:
                        self._drain_instant(k, horizon)
                    self.instants += 1
                    continue
                bound = t_next + self._lookahead()
                if t_ctrl is not None and t_ctrl < bound:
                    bound = t_ctrl
                if bound > horizon:
                    bound = horizon
                # bound > t_next always holds here: the t_ctrl == t_next
                # and horizon == t_next cases were handled above and the
                # lookahead is floored at the minimum network delay.
                self._run_windows(bound)
                control.run_window(bound)
                self.windows += 1
            self._inject()  # flush sends from a drained terminal instant
            if until is not None:
                self._sync(until)
        finally:
            self._merge_lanes()
        return control.now

    def _sync(self, t: float) -> None:
        """Fast-forward every kernel's clock to ``t`` (no execution).

        Safe because ``t`` never exceeds the earliest pending event across
        all kernels when called mid-loop.
        """
        if self.control.now < t:
            self.control.now = t
        for k in self._parts:
            if k.now < t:
                k.now = t

    @staticmethod
    def _drain_instant(kernel: Simulator, t: float) -> None:
        """Execute every callback due at exactly ``t`` on one kernel."""
        while kernel.peek_time() == t:
            kernel.step()

    def _run_windows(self, bound: float) -> None:
        if self.mode == MODE_THREADS:
            pool = self._pool
            if pool is None:
                from concurrent.futures import ThreadPoolExecutor

                pool = ThreadPoolExecutor(
                    max_workers=len(self._parts),
                    thread_name_prefix="repro-par")
                self._pool = pool
            futures = [pool.submit(k.run_window, bound) for k in self._parts]
            for f in futures:
                f.result()  # propagate partition exceptions
        else:
            for k in self._parts:
                k.run_window(bound)

    def _inject(self) -> None:
        """Drain the cross-region mailbox onto destination kernels."""
        entries = self.channel.drain()
        if not entries:
            return
        deliver = self.network._deliver_par
        locate = self.locate
        for arrival, _st, _si, _seq, src, dst, payload, incarnation in entries:
            dst_idx, dst_sim = locate(dst)
            dst_sim.schedule_abs(arrival, deliver, src, dst, payload,
                                 incarnation, dst_idx)

    def _merge_lanes(self) -> None:
        """Fold per-partition stats lanes into the shared NetworkStats.

        Lockstep shares one object, so this is a no-op there.  Threaded
        lanes exist because ``+=`` on a shared counter is a read-modify-
        write race; each lane is single-writer during a window and the
        fold happens here, after every worker has joined.
        """
        if self.mode != MODE_THREADS:
            return
        shared = self.network.stats
        for i, lane in enumerate(self._lanes):
            shared.messages_sent += lane.messages_sent
            shared.messages_dropped += lane.messages_dropped
            shared.messages_duplicated += lane.messages_duplicated
            shared.bytes_sent += lane.bytes_sent
            shared.trace_bytes_sent += lane.trace_bytes_sent
            shared.in_flight += lane.in_flight
            for d_shared, d_lane in (
                (shared.per_host_sent, lane.per_host_sent),
                (shared.per_host_received, lane.per_host_received),
                (shared.per_type_sent, lane.per_type_sent),
                (shared.per_type_bytes, lane.per_type_bytes),
            ):
                for key, n in d_lane.items():
                    d_shared[key] = d_shared.get(key, 0) + n
            self._lanes[i] = NetworkStats()

    def shutdown(self) -> None:
        """Release the worker pool (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
