"""Process-per-partition backend: shared-nothing multi-core PDES.

:class:`ProcessGroup` runs the exact window loop of
:class:`~repro.sim.par.group.PartitionGroup` but executes each partition's
windows in a forked OS process, sidestepping the GIL.  The design:

* **fork at first run** — the parent builds and starts the whole system
  (coroutines, closures, loaded shards), then forks one worker per
  partition; fork's copy-on-write snapshot carries state that could never
  cross a pickle boundary.  From that point the processes share nothing:
  each worker executes *only its own kernel* and the parent never runs
  partition events again.
* **windows over pipes** — the parent drives workers with a strict
  request/reply protocol over ``os.pipe`` pairs, one command per window
  (not per message), so IPC and pickling amortise across everything a
  window contains.  Cross-partition traffic rides the commands: each
  worker drains its :class:`~repro.sim.par.channel.CrossChannel` buffers
  into its reply, the parent merges all replies in the canonical
  ``(arrival, send_time, src_idx, seq)`` order, and ships each frame to
  its destination worker with the next command.  Frame payloads are
  encoded with :mod:`repro.sim.par.codec` (piece bodies are closures).
* **deliberate command fan-out** — the parent writes every command before
  reading any reply, and workers strictly read-then-write, so all
  partitions execute a window concurrently and the protocol cannot
  deadlock.
* **state shipping** — at the end of every ``run()`` a ``collect``
  command folds each worker's delta back into the parent: NetworkStats
  lanes, recorder entries (append-deltas for the closed-loop recorder,
  whole per-region series for the single-writer open-loop recorder),
  wire-log segments, per-node dclock stretch counts, and the worker's
  ``ru_maxrss``.  Everything a :class:`TrialResult` summary reads is
  merged; deep post-run audits (executed logs, shard digests) are *not*
  shipped — trial shapes that need them (chaos, topo) never resolve to
  the process backend in the first place.

Determinism: the parent loop mirrors the threaded loop branch-for-branch
— same effective peeks (worker peeks plus pending frame arrivals), same
window bounds, same canonical frame order per destination kernel — so
per-kernel schedule sequences are identical to the threaded backend and
virtual-time outputs are byte-identical to serial.  Control-kernel
instants execute parent-side only; worker clocks may lag them, which is
unobservable because nothing runs on a worker between the instant and
the next command (which carries its own bound).
"""

from __future__ import annotations

import atexit
import os
import struct
import sys
import traceback
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.network import NetworkStats
from repro.sim.par import codec
from repro.sim.par.group import PartitionGroup
from repro.sim.par.partition import MODE_PROCESS

__all__ = ["ProcessGroup"]

_HDR = struct.Struct("<I")

# Process groups with live workers, reaped at interpreter exit so a
# caller that forgets shutdown() can never strand worker processes.
_ACTIVE: set = set()


def _reap_active() -> None:
    for group in list(_ACTIVE):
        try:
            group.shutdown()
        except Exception:
            pass


atexit.register(_reap_active)


def _send_msg(wf, obj) -> None:
    data = codec.dumps(obj)
    wf.write(_HDR.pack(len(data)))
    wf.write(data)
    wf.flush()


def _recv_msg(rf):
    hdr = rf.read(_HDR.size)
    if len(hdr) < _HDR.size:
        raise EOFError("partition worker pipe closed")
    (n,) = _HDR.unpack(hdr)
    data = rf.read(n)
    if len(data) < n:
        raise EOFError("partition worker pipe truncated")
    return codec.loads(data)


def _zero_stats(stats: NetworkStats) -> None:
    """Reset counters in place (object identity must survive: the open-loop
    engine and the summary both cached references to this object)."""
    stats.messages_sent = 0
    stats.messages_dropped = 0
    stats.messages_duplicated = 0
    stats.bytes_sent = 0
    stats.trace_bytes_sent = 0
    stats.in_flight = 0
    stats.per_host_sent.clear()
    stats.per_host_received.clear()
    stats.per_type_sent.clear()
    stats.per_type_bytes.clear()


def _fold_stats(dst: NetworkStats, src: NetworkStats) -> None:
    dst.messages_sent += src.messages_sent
    dst.messages_dropped += src.messages_dropped
    dst.messages_duplicated += src.messages_duplicated
    dst.bytes_sent += src.bytes_sent
    dst.trace_bytes_sent += src.trace_bytes_sent
    dst.in_flight += src.in_flight
    for d_dst, d_src in (
        (dst.per_host_sent, src.per_host_sent),
        (dst.per_host_received, src.per_host_received),
        (dst.per_type_sent, src.per_type_sent),
        (dst.per_type_bytes, src.per_type_bytes),
    ):
        for key, n in d_src.items():
            d_dst[key] = d_dst.get(key, 0) + n


class _WorkerState:
    """Worker-side ship cursors: everything before a cursor was already
    folded into the parent by an earlier collect."""

    __slots__ = ("res_cursor", "oow_cursor", "wire_cursor")

    def __init__(self):
        self.res_cursor = 0
        self.oow_cursor = 0
        self.wire_cursor = 0


def _worker_rss_kb() -> int:
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except (ImportError, OSError, ValueError):
        return 0


def _rebase_id_streams(idx: int, nparts: int) -> None:
    """Give this worker a disjoint slice of every global id stream.

    Forked workers inherit identical positions in the process-wide id
    counters (txn ids, rpc ids, workload history ids), so two partitions
    would mint the *same* txn id for different transactions — and txn ids
    key every node's record map, so a cross-partition submission would
    silently alias a local record and wedge the protocol.  Interleaving
    by partition index (worker ``i`` draws ``n0+i, n0+i+k, ...``) keeps
    draws globally unique while staying inside the same compact range a
    serial run uses, which preserves the fixed-width id strings the
    virtual wire-size model depends on.  Id *values* never influence
    virtual-time outputs (the threaded backend already interleaves draws
    differently from serial and stays byte-identical), so this is
    provenance-only.
    """
    import itertools

    from repro.sim.rpc import Endpoint
    from repro.txn.model import Transaction
    from repro.workloads import tpca
    from repro.workloads.tpcc import transactions as tpcc_transactions

    for holder, attr in (
        (Transaction, "_ids"),
        (Endpoint, "_ids"),
        (tpca.TpcaWorkload, "_history_ids"),
        (tpcc_transactions, "_history_ids"),
    ):
        n0 = next(getattr(holder, attr))
        setattr(holder, attr, itertools.count(n0 + idx, nparts))


def _worker_loop(group: "ProcessGroup", idx: int, rf, wf) -> None:
    kernel = group._parts[idx]
    network = group.network
    _rebase_id_streams(idx, len(group._parts))
    # Counters accumulated before the fork live in the parent's copy; this
    # worker ships *deltas*, so its own copies start from zero.
    _zero_stats(network.stats)
    group._lanes[idx] = NetworkStats()
    state = _WorkerState()
    rec = group.recorder
    if rec is not None:
        state.res_cursor = len(getattr(rec, "results", ()))
        state.oow_cursor = len(getattr(rec, "_out_of_window", ()))
    if network.wire_log is not None:
        state.wire_cursor = len(network.wire_log)
    # Hello: report the initial peek so the parent can compute the first
    # window bound without a dedicated probe round.
    _send_msg(wf, ("ok", kernel.peek_time(), []))
    while True:
        try:
            msg = _recv_msg(rf)
        except EOFError:
            return
        cmd = msg[0]
        try:
            if cmd == "window":
                _, bound, frames = msg
                _worker_inject(group, idx, kernel, frames)
                kernel.run_window(bound)
                _send_msg(wf, ("ok", kernel.peek_time(),
                               group.channel.drain()))
            elif cmd == "instant":
                _, t, frames = msg
                _worker_inject(group, idx, kernel, frames)
                if kernel.now < t:
                    kernel.now = t
                while kernel.peek_time() == t:
                    kernel.step()
                _send_msg(wf, ("ok", kernel.peek_time(),
                               group.channel.drain()))
            elif cmd == "sync":
                _, t, frames = msg
                _worker_inject(group, idx, kernel, frames)
                if kernel.now < t:
                    kernel.now = t
                _send_msg(wf, ("ok", kernel.peek_time(),
                               group.channel.drain()))
            elif cmd == "drain_prep":
                for client in group.clients:
                    client.stop()
                engine = group.engine
                if engine is not None and hasattr(engine, "stop"):
                    engine.stop()
                for endpoint in getattr(network, "endpoints", ()):
                    endpoint.batch_window = 0.0
                    endpoint.flush()
                _send_msg(wf, ("ok", kernel.peek_time(),
                               group.channel.drain()))
            elif cmd == "collect":
                _send_msg(wf, ("ok", _worker_collect(group, idx, state)))
            elif cmd == "exit":
                _send_msg(wf, ("ok",))
                return
            else:
                _send_msg(wf, ("err", f"unknown command {cmd!r}"))
        except BaseException:
            # Ship the traceback; stay alive so the parent's shutdown
            # handshake still completes.
            try:
                _send_msg(wf, ("err", traceback.format_exc()))
            except Exception:
                return


def _worker_inject(group, idx: int, kernel: Simulator, frames) -> None:
    """Schedule inbound frames (already in canonical order) for delivery."""
    if not frames:
        return
    deliver = group.network._deliver_par
    for arrival, _st, _si, _seq, src, dst, payload, incarnation in frames:
        kernel.schedule_abs(arrival, deliver, src, dst, payload,
                            incarnation, idx)


def _worker_collect(group, idx: int, state: _WorkerState) -> Dict:
    network = group.network
    engine = group.engine
    if engine is not None and hasattr(engine, "flush_stats"):
        # Fold the express path's batched traffic tallies into this
        # worker's stats copy before shipping (flush resets the tallies,
        # so a later collect — or the parent's own post-run flush on its
        # zeroed copy — can never double-count).
        engine.flush_stats()
    stats = NetworkStats()
    _fold_stats(stats, group._lanes[idx])
    _fold_stats(stats, network.stats)
    _zero_stats(group._lanes[idx])
    _zero_stats(network.stats)
    payload: Dict = {
        "stats": stats,
        "rss_kb": _worker_rss_kb(),
        "stretches": {
            host: node.dclock.stretch_count
            for host, node in group.nodes.items()
            if node.dclock.stretch_count and group.locate(host)[0] == idx
        },
    }
    rec = group.recorder
    if rec is not None:
        results = getattr(rec, "results", None)
        if results is not None and len(results) > state.res_cursor:
            payload["results"] = results[state.res_cursor:]
            state.res_cursor = len(results)
        regions = getattr(rec, "_regions", None)
        if regions is not None:
            # Open-loop series are single-writer per region (each region's
            # arrival pump runs on that region's kernel), so shipping the
            # whole cumulative series and replacing parent-side is exact.
            payload["open_regions"] = dict(regions)
        oow = getattr(rec, "_out_of_window", None)
        if oow is not None and len(oow) > state.oow_cursor:
            payload["oow"] = len(oow) - state.oow_cursor
            state.oow_cursor = len(oow)
    wire = network.wire_log
    if wire is not None and len(wire) > state.wire_cursor:
        payload["wire"] = wire[state.wire_cursor:]
        state.wire_cursor = len(wire)
    return payload


class _Worker:
    __slots__ = ("pid", "idx", "cmd_w", "rep_r")

    def __init__(self, pid: int, idx: int, cmd_w, rep_r):
        self.pid = pid
        self.idx = idx
        self.cmd_w = cmd_w
        self.rep_r = rep_r

    def close_in_child(self) -> None:
        self.cmd_w.close()
        self.rep_r.close()


class ProcessGroup(PartitionGroup):
    """One forked OS process per partition; windows shipped over pipes."""

    _MODES = (MODE_PROCESS,)

    def __init__(self, control: Simulator, kernels: Dict[str, Simulator],
                 network, mode: str = MODE_PROCESS,
                 host_partition: Optional[Dict[str, str]] = None):
        super().__init__(control, kernels, network, mode=mode,
                         host_partition=host_partition)
        self._workers: Optional[List[_Worker]] = None
        self._peeks: List[Optional[float]] = [None] * len(self._parts)
        # Cross-partition frames drained from worker replies, in canonical
        # order, awaiting shipment with the next command round.
        self._pending: List[Tuple] = []
        self._worker_rss: List[int] = [0] * len(self._parts)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _ensure_workers(self) -> None:
        if self._workers is not None:
            return
        workers: List[_Worker] = []
        for idx in range(len(self._parts)):
            c2w_r, c2w_w = os.pipe()
            w2c_r, w2c_w = os.pipe()
            pid = os.fork()
            if pid == 0:
                status = 0
                try:
                    os.close(c2w_w)
                    os.close(w2c_r)
                    for earlier in workers:
                        earlier.close_in_child()
                    _worker_loop(self, idx,
                                 os.fdopen(c2w_r, "rb"),
                                 os.fdopen(w2c_w, "wb"))
                except BaseException:
                    status = 1
                finally:
                    # Never run the parent's atexit handlers / flush its
                    # inherited buffers from a worker.
                    os._exit(status)
            os.close(c2w_r)
            os.close(w2c_w)
            workers.append(_Worker(pid, idx,
                                   os.fdopen(c2w_w, "wb"),
                                   os.fdopen(w2c_r, "rb")))
        self._workers = workers
        _ACTIVE.add(self)
        # Read the hello from every worker: initial peeks.
        self._read_replies(collect_frames=True)

    def shutdown(self) -> None:
        workers, self._workers = self._workers, None
        _ACTIVE.discard(self)
        if not workers:
            return
        for w in workers:
            try:
                _send_msg(w.cmd_w, ("exit",))
            except (OSError, ValueError):
                pass
        for w in workers:
            try:
                _recv_msg(w.rep_r)
            except (EOFError, OSError, ValueError):
                pass
            try:
                w.cmd_w.close()
                w.rep_r.close()
            except OSError:
                pass
        for w in workers:
            try:
                os.waitpid(w.pid, 0)
            except ChildProcessError:
                pass

    # ------------------------------------------------------------------
    # Protocol rounds
    # ------------------------------------------------------------------
    def _read_replies(self, collect_frames: bool) -> List:
        """Read one reply per worker; merge frames; raise on worker error."""
        replies: List = []
        errors: List[str] = []
        fresh: List[Tuple] = []
        for w in self._workers:
            try:
                rep = _recv_msg(w.rep_r)
            except EOFError as exc:
                errors.append(f"partition {self.regions[w.idx]}: {exc}")
                replies.append(None)
                continue
            if rep[0] == "err":
                errors.append(
                    f"partition {self.regions[w.idx]} worker failed:\n{rep[1]}")
                replies.append(None)
                continue
            replies.append(rep)
            if collect_frames:
                self._peeks[w.idx] = rep[1]
                fresh.extend(rep[2])
        if errors:
            raise SimulationError("; ".join(errors))
        if fresh:
            fresh.sort(key=lambda e: (e[0], e[1], e[2], e[3]))
            self._pending.extend(fresh)
            if len(self._pending) > len(fresh):
                self._pending.sort(key=lambda e: (e[0], e[1], e[2], e[3]))
        return replies

    def _round(self, cmd: str, t: float) -> None:
        """One synchronized step: ship pending frames + command, fan-in."""
        by_dst: List[List[Tuple]] = [[] for _ in self._parts]
        for frame in self._pending:
            by_dst[self.locate(frame[5])[0]].append(frame)
        self._pending = []
        for w in self._workers:
            _send_msg(w.cmd_w, (cmd, t, by_dst[w.idx]))
        self._read_replies(collect_frames=True)

    # ------------------------------------------------------------------
    # The run loop (mirrors PartitionGroup.run branch-for-branch)
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        self._ensure_workers()
        control = self.control
        horizon = float("inf") if until is None else until
        try:
            while True:
                t_ctrl = control.peek_time()
                t_next = t_ctrl
                for p in self._peeks:
                    if p is not None and (t_next is None or p < t_next):
                        t_next = p
                if self._pending:
                    first = self._pending[0][0]  # canonical order: min arrival
                    if t_next is None or first < t_next:
                        t_next = first
                if t_next is None or t_next > horizon:
                    break
                if t_ctrl is not None and t_ctrl == t_next:
                    # Control instant: executed parent-side only.  Worker
                    # clocks lag until the next command, which is safe —
                    # nothing executes on a worker in between, and
                    # process-eligible trials host no control callbacks
                    # that reach into partition state.
                    if control.now < t_next:
                        control.now = t_next
                    while control.peek_time() == t_next:
                        control.step()
                    self.instants += 1
                    continue
                if t_next == horizon:
                    self._round("instant", horizon)
                    if control.now < horizon:
                        control.now = horizon
                    self.instants += 1
                    continue
                bound = t_next + self._lookahead()
                if t_ctrl is not None and t_ctrl < bound:
                    bound = t_ctrl
                if bound > horizon:
                    bound = horizon
                self._round("window", bound)
                control.run_window(bound)
                self.windows += 1
            if until is not None:
                self._round("sync", until)
                if control.now < until:
                    control.now = until
        finally:
            if self._workers is not None:
                if sys.exc_info()[0] is None:
                    self._collect()
                else:
                    try:  # don't mask the in-flight run error
                        self._collect()
                    except Exception:
                        pass
        return control.now

    # ------------------------------------------------------------------
    # Harness hooks
    # ------------------------------------------------------------------
    def drain_prep(self) -> None:
        """Stop clients / flush endpoints inside every worker."""
        if self._workers is None:
            return
        for w in self._workers:
            _send_msg(w.cmd_w, ("drain_prep", self.control.now, []))
        self._read_replies(collect_frames=True)

    def child_rss_kb(self) -> int:
        return sum(self._worker_rss)

    # ------------------------------------------------------------------
    # State shipping
    # ------------------------------------------------------------------
    def _collect(self) -> None:
        for w in self._workers:
            _send_msg(w.cmd_w, ("collect",))
        replies = self._read_replies(collect_frames=False)
        shared = self.network.stats
        rec = self.recorder
        for w, rep in zip(self._workers, replies):
            payload = rep[1]
            _fold_stats(shared, payload["stats"])
            rss = payload.get("rss_kb", 0)
            if rss > self._worker_rss[w.idx]:
                self._worker_rss[w.idx] = rss
            for host, count in payload.get("stretches", {}).items():
                node = self.nodes.get(host)
                if node is not None:
                    node.dclock.stretch_count = count
            if rec is not None:
                results = payload.get("results")
                if results:
                    rec.results.extend(results)
                regions = payload.get("open_regions")
                if regions:
                    rec._regions.update(regions)
                oow = payload.get("oow")
                if oow:
                    rec._out_of_window.extend([None] * oow)
            wire = payload.get("wire")
            if wire and self.network.wire_log is not None:
                self.network.wire_log.extend(wire)

    def _merge_lanes(self) -> None:
        # Parent lanes never accumulate (sends happen in workers); the
        # collect protocol is the merge step for this backend.
        return
