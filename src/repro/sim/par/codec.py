"""Pickle codec for cross-partition wire frames.

The process backend ships :class:`~repro.sim.par.channel.CrossChannel`
frames between OS processes.  Frame payloads are wire messages whose
transactions carry piece *bodies* — plain Python closures built by the
workload generators — and the stdlib pickler refuses closures (it can
only pickle module-level functions by reference).  This codec extends
pickle with a function reducer:

* module-level functions that resolve back to themselves by
  ``module.qualname`` pickle by reference, exactly as stdlib pickle
  would — cheap, and the worker ends up calling the *same* function
  object (workers are forks, so the module is already imported);
* closures / lambdas / local functions ship as ``marshal``-ed code
  objects plus their defaults and cell contents, rebuilt with
  :class:`types.FunctionType` on the receiving side.  The rebuilt
  function's globals are the defining module's ``__dict__`` so bodies
  keep seeing their helpers.

Determinism note: the codec is pure transport.  Encoded bytes never
enter the virtual-byte size model (wire sizes were already accounted on
the sender via :func:`repro.wire.sizeof`), so pickling detail can never
leak into a trial's results.
"""

from __future__ import annotations

import io
import marshal
import pickle
import sys
import types

__all__ = ["dumps", "loads"]


def _rebuild_function(code_bytes, module, qualname, name, defaults,
                      kwdefaults, cell_values, fn_dict):
    code = marshal.loads(code_bytes)
    mod = sys.modules.get(module)
    globs = mod.__dict__ if mod is not None else {"__builtins__": __builtins__}
    closure = None
    if cell_values is not None:
        closure = tuple(types.CellType(v) for v in cell_values)
    fn = types.FunctionType(code, globs, name, defaults, closure)
    if kwdefaults:
        fn.__kwdefaults__ = dict(kwdefaults)
    if fn_dict:
        fn.__dict__.update(fn_dict)
    fn.__module__ = module
    fn.__qualname__ = qualname
    return fn


def _importable(fn: types.FunctionType) -> bool:
    """True when stdlib by-reference pickling would round-trip ``fn``."""
    if fn.__closure__ is not None or "<locals>" in fn.__qualname__:
        return False
    mod = sys.modules.get(fn.__module__ or "")
    target = mod
    for part in fn.__qualname__.split("."):
        target = getattr(target, part, None)
        if target is None:
            return False
    return target is fn


class _FramePickler(pickle.Pickler):
    def reducer_override(self, obj):
        if type(obj) is types.FunctionType:
            if _importable(obj):
                return NotImplemented  # stdlib by-reference path
            cells = None
            if obj.__closure__ is not None:
                cells = tuple(c.cell_contents for c in obj.__closure__)
            return (_rebuild_function, (
                marshal.dumps(obj.__code__),
                obj.__module__ or "builtins",
                obj.__qualname__,
                obj.__name__,
                obj.__defaults__,
                obj.__kwdefaults__,
                cells,
                obj.__dict__ or None,
            ))
        return NotImplemented


def dumps(obj) -> bytes:
    buf = io.BytesIO()
    _FramePickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buf.getvalue()


def loads(data: bytes):
    return pickle.loads(data)
