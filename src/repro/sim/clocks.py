"""Per-node virtual physical clocks.

Each node reads wall-clock time from a :class:`ClockSource` that maps the
simulator's virtual time through a configurable offset and drift rate.  The
evaluation in the paper (§6.3, Fig 10) injects a 200 ms skew into one
region's manager at runtime and disables NTP; :meth:`ClockSource.adjust`
reproduces exactly that.

DAST never relies on these clocks for correctness — they only feed the
``time`` field of the hybrid dclock to make anticipation useful.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.sim.kernel import Simulator

__all__ = ["ClockSource"]


class ClockSource:
    """``now() = base + (sim.now - epoch) * (1 + drift) + offset``.

    ``drift`` is a dimensionless rate error (e.g. ``1e-5`` = 10 ppm);
    ``offset`` is in milliseconds.  Changing either at runtime re-anchors the
    mapping at the current instant so the reading never jumps except through
    an explicit :meth:`adjust`.
    """

    def __init__(self, sim: Simulator, offset: float = 0.0, drift: float = 0.0):
        if drift <= -1.0:
            raise ConfigError(f"drift {drift} would make the clock run backwards")
        self.sim = sim
        self._offset = offset
        self._drift = drift
        self._epoch = sim.now
        self._base = 0.0

    def now(self) -> float:
        """Current physical-clock reading in milliseconds."""
        return self._base + (self.sim.now - self._epoch) * (1.0 + self._drift) + self._offset

    def adjust(self, delta_ms: float) -> None:
        """Step the clock by ``delta_ms`` (positive = jump forward).

        This models an operator advancing the system clock (Fig 10a) or an
        NTP step.  The reading changes discontinuously by exactly ``delta``.
        """
        self._offset += delta_ms

    def set_drift(self, drift: float) -> None:
        """Change the drift rate without stepping the current reading."""
        if drift <= -1.0:
            raise ConfigError(f"drift {drift} would make the clock run backwards")
        self._rebase()
        self._drift = drift

    def _rebase(self) -> None:
        self._base = self.now() - self._offset
        self._epoch = self.sim.now
