"""Simulated wide-area network between edge nodes.

The model matches the paper's testbed (§6): nodes grouped into regions, a
small intra-region RTT (default 5 ms) and a large cross-region RTT (default
100 ms) shaped with ``tc``.  On top of the base RTTs the model supports:

* **jitter** — uniform ``±x`` ms on the cross-region RTT (Fig 9a),
* **runtime RTT changes** — abrupt steps for network-spike timelines (Fig 9b),
* **asymmetric one-way delay** — a forward fraction of the RTT (Fig 10b),
* **partitions** — ordered host pairs or region pairs that silently drop,
  including *one-way* (asymmetric) variants where only one direction drops,
* **random drops** — spontaneous loss with a seeded stream,
* **reorder windows** — extra per-message random delay that scrambles
  arrival order while the window is open,
* **duplication windows** — messages delivered twice (a second copy with an
  independently sampled delay), modelling at-least-once relays.

Delivery preserves no ordering guarantees beyond what the delays imply, i.e.
messages can arrive reordered, exactly like the asynchronous network DAST
assumes (§3.1).

Crash/restart semantics: :meth:`Network.crash_host` starts a new *incarnation*
of the host.  Messages sent before the crash are never delivered after a
:meth:`Network.restart_host` — the restarted process must not see stale
pre-crash traffic, just as a rebooted server's TCP connections are gone.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigError, NetworkError
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.wire.schema import TRACE_CTX_BYTES, sizeof

__all__ = ["Network", "NetworkStats"]


class NetworkStats:
    """Counters for traffic accounting (used by the scalability analysis).

    Byte totals use the deterministic virtual-byte size model of
    :mod:`repro.wire.schema` — per-message sizes computed at send time from
    typed envelopes (opaque legacy payloads fall back to ``sizeof``).
    """

    def __init__(self) -> None:
        self.messages_sent = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.bytes_sent = 0
        # Trace-context bytes (envelope schema v2) live in their own lane:
        # they are real wire cost when tracing is on, but are never folded
        # into ``bytes_sent`` so byte accounting — and every golden digest —
        # is identical with tracing attached or detached.
        self.trace_bytes_sent = 0
        # Messages scheduled for delivery but not yet delivered/dropped —
        # the "wire occupancy" the observability probes sample over time.
        self.in_flight = 0
        self.per_host_sent: Dict[str, int] = {}
        self.per_host_received: Dict[str, int] = {}
        # Keyed by message type: the envelope's payload name ("pct_report",
        # "resp:irt_prepare", "batch", or "opaque" for untyped payloads).
        self.per_type_sent: Dict[str, int] = {}
        self.per_type_bytes: Dict[str, int] = {}

    def record_send(self, src: str, type_name: str = "opaque", size: int = 0) -> None:
        self.messages_sent += 1
        self.bytes_sent += size
        # try/except over .get(): the keys exist for all but the first send,
        # so the happy path is a single dict item assignment.
        try:
            self.per_host_sent[src] += 1
        except KeyError:
            self.per_host_sent[src] = 1
        try:
            self.per_type_sent[type_name] += 1
            self.per_type_bytes[type_name] += size
        except KeyError:
            self.per_type_sent[type_name] = 1
            self.per_type_bytes[type_name] = size

    def record_receive(self, dst: str) -> None:
        try:
            self.per_host_received[dst] += 1
        except KeyError:
            self.per_host_received[dst] = 1

    def record_drop(self) -> None:
        self.messages_dropped += 1

    def top_types(self, n: int = 5) -> List[Tuple[str, int]]:
        """The ``n`` most-sent message types, by count (deterministic order)."""
        return sorted(self.per_type_sent.items(), key=lambda kv: (-kv[1], kv[0]))[:n]


class Network:
    """Routes messages between registered hosts with region-aware delays."""

    def __init__(
        self,
        sim: Simulator,
        rng: RngRegistry,
        intra_region_rtt: float = 5.0,
        cross_region_rtt: float = 100.0,
        drop_probability: float = 0.0,
    ):
        if intra_region_rtt < 0 or cross_region_rtt < 0:
            raise ConfigError("RTTs must be non-negative")
        if not 0.0 <= drop_probability < 1.0:
            raise ConfigError("drop probability must be in [0, 1)")
        self.sim = sim
        self._rng = rng.stream("network")
        self.intra_region_rtt = intra_region_rtt
        self.cross_region_rtt = cross_region_rtt
        self.drop_probability = drop_probability
        self.jitter = 0.0  # uniform +/- jitter applied to the cross-region RTT
        self.intra_jitter = 0.0
        # Fraction of the cross-region RTT spent on the "forward" direction,
        # where forward means src region id < dst region id.  0.5 = symmetric.
        self.forward_fraction = 0.5
        # Chaos windows: while non-zero, deliveries gain uniform(0, spread)
        # extra delay (reorder) / are delivered twice with probability p.
        self.reorder_spread = 0.0
        self.duplicate_probability = 0.0
        # Bandwidth/serialization cost hooks (virtual bytes -> extra delay).
        # Both default off so the base delay model — and every pinned timing
        # in the tier-1 suite — is unchanged unless an experiment opts in.
        # ``bandwidth_bytes_per_ms`` adds size/bandwidth ms per delivery;
        # ``serialization_cost_per_kb`` adds a flat encode/decode CPU-ish
        # cost of ``size/1024 * cost`` ms.  Per-link overrides are keyed by
        # (src_region, dst_region).
        self.bandwidth_bytes_per_ms: Optional[float] = None
        self.serialization_cost_per_kb: float = 0.0
        self._link_bandwidth: Dict[Tuple[str, str], float] = {}
        self._host_region: Dict[str, str] = {}
        self._handlers: Dict[str, Callable] = {}
        # Every Endpoint built on this network registers itself here so
        # drain/shutdown paths can flush pending batch windows in one sweep.
        self.endpoints: List = []
        self._rtt_overrides: Dict[Tuple[str, str], float] = {}
        self._host_partitions: Set[Tuple[str, str]] = set()
        self._region_partitions: Set[Tuple[str, str]] = set()
        self._down_hosts: Set[str] = set()
        # Fast-path flag: True while no partition/crash fault is active, so
        # the per-message block check is one attribute read.  Kept in sync by
        # _refresh_fault_flag() after every fault/heal mutation.
        self._fault_free = True
        # Incarnation counter per host, bumped on crash: a message addressed
        # to incarnation k is undeliverable once the host is on k+1.
        self._incarnation: Dict[str, int] = {}
        self.stats = NetworkStats()
        # Causal tracer (repro.obs.trace.CausalTracer) or None.  Every
        # tracing touchpoint in the send/deliver path is guarded by a single
        # ``is None`` check on this attribute.
        self.causal = None
        # Region-partitioned execution (repro.sim.par.PartitionGroup) or
        # None.  While attached, send() routes through _send_par: timing is
        # read from the *sender's* region kernel and cross-region traffic is
        # buffered on the group's channel instead of scheduled directly.
        self._par = None
        # Optional wire tap: a list collecting (send_time, src, dst,
        # type_name, size) for every send — the canary's wire-message
        # stream digest.  None (the default) costs one attribute check.
        self.wire_log = None

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def register(self, host: str, region: str, handler: Callable) -> None:
        """Attach ``host`` (in ``region``) with a delivery callback.

        ``handler(src, payload)`` is invoked when a message arrives.
        """
        if host in self._handlers:
            raise ConfigError(f"host {host!r} already registered")
        self._host_region[host] = region
        self._handlers[host] = handler

    def region_of(self, host: str) -> str:
        try:
            return self._host_region[host]
        except KeyError:
            raise NetworkError(f"unknown host {host!r}") from None

    # ------------------------------------------------------------------
    # Fault / anomaly injection
    # ------------------------------------------------------------------
    def _refresh_fault_flag(self) -> None:
        self._fault_free = not (
            self._down_hosts or self._host_partitions or self._region_partitions
        )

    def set_cross_region_rtt(self, rtt: float, r1: Optional[str] = None, r2: Optional[str] = None) -> None:
        """Change the cross-region RTT; optionally only between two regions."""
        if rtt < 0:
            raise ConfigError("RTT must be non-negative")
        if r1 is None or r2 is None:
            self.cross_region_rtt = rtt
        else:
            self._rtt_overrides[(r1, r2)] = rtt
            self._rtt_overrides[(r2, r1)] = rtt

    def set_link_bandwidth(self, src_region: str, dst_region: str,
                           bytes_per_ms: Optional[float]) -> None:
        """Per-link bandwidth override (``None`` clears it)."""
        if bytes_per_ms is not None and bytes_per_ms <= 0:
            raise ConfigError("bandwidth must be positive")
        if bytes_per_ms is None:
            self._link_bandwidth.pop((src_region, dst_region), None)
        else:
            self._link_bandwidth[(src_region, dst_region)] = bytes_per_ms

    def partition_hosts(self, a: str, b: str) -> None:
        """Silently drop all traffic between hosts ``a`` and ``b``."""
        self._host_partitions.add((a, b))
        self._host_partitions.add((b, a))
        self._refresh_fault_flag()

    def heal_hosts(self, a: str, b: str) -> None:
        self._host_partitions.discard((a, b))
        self._host_partitions.discard((b, a))
        self._refresh_fault_flag()

    def partition_hosts_oneway(self, src: str, dst: str) -> None:
        """Drop traffic from ``src`` to ``dst`` only (asymmetric partition)."""
        self._host_partitions.add((src, dst))
        self._refresh_fault_flag()

    def heal_hosts_oneway(self, src: str, dst: str) -> None:
        self._host_partitions.discard((src, dst))
        self._refresh_fault_flag()

    def partition_regions(self, r1: str, r2: str) -> None:
        """Silently drop all traffic between two regions."""
        self._region_partitions.add((r1, r2))
        self._region_partitions.add((r2, r1))
        self._refresh_fault_flag()

    def heal_regions(self, r1: str, r2: str) -> None:
        self._region_partitions.discard((r1, r2))
        self._region_partitions.discard((r2, r1))
        self._refresh_fault_flag()

    def partition_regions_oneway(self, src_region: str, dst_region: str) -> None:
        """Drop traffic from ``src_region`` to ``dst_region`` only."""
        self._region_partitions.add((src_region, dst_region))
        self._refresh_fault_flag()

    def heal_regions_oneway(self, src_region: str, dst_region: str) -> None:
        self._region_partitions.discard((src_region, dst_region))
        self._refresh_fault_flag()

    def crash_host(self, host: str) -> None:
        """The host stops receiving messages (process crash).

        Starts a new incarnation: messages already in flight to the old
        incarnation are dropped even if they would arrive after a restart.
        """
        self.region_of(host)  # validate
        self._down_hosts.add(host)
        self._incarnation[host] = self._incarnation.get(host, 0) + 1
        self._refresh_fault_flag()

    def restart_host(self, host: str) -> None:
        self._down_hosts.discard(host)
        self._refresh_fault_flag()

    def is_down(self, host: str) -> bool:
        return host in self._down_hosts

    # ------------------------------------------------------------------
    # Chaos windows (reorder / duplication)
    # ------------------------------------------------------------------
    def open_reorder_window(self, spread: float, duration: Optional[float] = None) -> None:
        """Add uniform(0, ``spread``) ms to every delivery, scrambling order.

        With ``duration`` the window closes itself after that many virtual ms.
        """
        if spread < 0:
            raise ConfigError("reorder spread must be non-negative")
        if duration is not None and duration < 0:
            raise ConfigError("reorder window duration must be non-negative")
        self.reorder_spread = spread
        if duration is not None:
            self.sim.schedule(duration, self.close_reorder_window)

    def close_reorder_window(self) -> None:
        self.reorder_spread = 0.0

    def open_duplicate_window(self, probability: float, duration: Optional[float] = None) -> None:
        """Deliver each message twice with ``probability`` while open."""
        if not 0.0 <= probability <= 1.0:
            raise ConfigError("duplicate probability must be in [0, 1]")
        if duration is not None and duration < 0:
            raise ConfigError("duplicate window duration must be non-negative")
        self.duplicate_probability = probability
        if duration is not None:
            self.sim.schedule(duration, self.close_duplicate_window)

    def close_duplicate_window(self) -> None:
        self.duplicate_probability = 0.0

    # ------------------------------------------------------------------
    # Delay model
    # ------------------------------------------------------------------
    def one_way_delay(self, src: str, dst: str) -> float:
        """Sampled one-way delay for a message from ``src`` to ``dst``."""
        return self._one_way_delay(src, dst, self.region_of(src), self.region_of(dst))

    def _one_way_delay(self, src: str, dst: str, r_src: str, r_dst: str) -> float:
        """Delay model with the region lookups hoisted out (hot path)."""
        if src == dst:
            return 0.01  # loopback: negligible but non-zero to keep ordering sane
        if r_src == r_dst:
            rtt = self.intra_region_rtt
            if self.intra_jitter:
                rtt += self._rng.uniform(-self.intra_jitter, self.intra_jitter)
            return max(0.01, rtt / 2.0)
        rtt = self._rtt_overrides.get((r_src, r_dst), self.cross_region_rtt)
        if self.jitter:
            rtt += self._rng.uniform(-self.jitter, self.jitter)
        fraction = self.forward_fraction if r_src < r_dst else (1.0 - self.forward_fraction)
        return max(0.01, rtt * fraction)

    def _blocked(self, src: str, dst: str) -> bool:
        if self._fault_free:
            return False
        if dst in self._down_hosts:
            return True
        if (src, dst) in self._host_partitions:
            return True
        return (self.region_of(src), self.region_of(dst)) in self._region_partitions

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, payload: object) -> None:
        """Fire-and-forget delivery of ``payload`` from ``src`` to ``dst``.

        Lost messages (partition, crash, random drop) vanish silently —
        reliability is the sender's problem, as on a real network.  Typed
        envelopes (anything exposing ``type_name``/``wire_size``) are
        accounted per message type and in virtual bytes; legacy opaque
        payloads are sized with the fallback model.
        """
        if self._par is not None:
            return self._send_par(src, dst, payload)
        if dst not in self._handlers:
            raise NetworkError(f"unknown destination host {dst!r}")
        # Typed envelopes expose wire_size(); calling it directly skips the
        # sizeof() dispatch that would land on the same method anyway.
        wire_size = getattr(payload, "wire_size", None)
        if wire_size is not None and callable(wire_size):
            type_name = getattr(payload, "type_name", "opaque")
            size = wire_size()
        else:
            type_name = getattr(payload, "type_name", "opaque")
            size = sizeof(payload)
        self.stats.record_send(src, type_name, size)
        if self.wire_log is not None:
            self.wire_log.append((self.sim.now, src, dst, type_name, size))
        causal = self.causal
        ctx = None
        if causal is not None:
            ctx = getattr(payload, "trace_ctx", None)
            if ctx is not None:
                self.stats.trace_bytes_sent += TRACE_CTX_BYTES
                causal.stamp_send(ctx, self.sim.now, size)
        if self._blocked(src, dst) or (
            self.drop_probability and self._rng.random() < self.drop_probability
        ):
            self.stats.record_drop()
            if ctx is not None:
                causal.mark_dropped(ctx)
            return
        self._schedule_delivery(src, dst, payload, size)
        if self.duplicate_probability and self._rng.random() < self.duplicate_probability:
            self.stats.messages_duplicated += 1
            self._schedule_delivery(src, dst, payload, size)

    def _byte_delay(self, src: str, dst: str, size: int) -> float:
        """Extra delay charged by the bandwidth/serialization hooks."""
        return self._byte_delay_r(size, self.region_of(src), self.region_of(dst))

    def _byte_delay_r(self, size: int, r_src: str, r_dst: str) -> float:
        if size <= 0:
            return 0.0
        extra = 0.0
        bandwidth = self._link_bandwidth.get((r_src, r_dst), self.bandwidth_bytes_per_ms)
        if bandwidth:
            extra += size / bandwidth
        if self.serialization_cost_per_kb:
            extra += (size / 1024.0) * self.serialization_cost_per_kb
        return extra

    def _schedule_delivery(self, src: str, dst: str, payload: object, size: int = 0) -> None:
        regions = self._host_region
        try:
            r_src = regions[src]
            r_dst = regions[dst]
        except KeyError as missing:
            raise NetworkError(f"unknown host {missing.args[0]!r}") from None
        delay = self._one_way_delay(src, dst, r_src, r_dst)
        # Byte-cost hooks are off in the base model; skip the per-link
        # lookup entirely unless an experiment opted in.
        if self.bandwidth_bytes_per_ms is not None or self._link_bandwidth \
                or self.serialization_cost_per_kb:
            delay += self._byte_delay_r(size, r_src, r_dst)
        if self.reorder_spread:
            delay += self._rng.uniform(0.0, self.reorder_spread)
        self.stats.in_flight += 1
        incarnation = self._incarnation.get(dst, 0)
        self.sim.schedule(delay, self._deliver, src, dst, payload, incarnation)

    def _deliver(self, src: str, dst: str, payload: object, incarnation: int = 0) -> None:
        self.stats.in_flight -= 1
        # Re-check at delivery time: the destination may have crashed or a
        # partition may have formed while the message was in flight — and a
        # crash/restart cycle (new incarnation) voids stale pre-crash traffic.
        if self._blocked(src, dst) or self._incarnation.get(dst, 0) != incarnation:
            self.stats.record_drop()
            if self.causal is not None:
                ctx = getattr(payload, "trace_ctx", None)
                if ctx is not None:
                    self.causal.mark_dropped(ctx)
            return
        self.stats.record_receive(dst)
        self._handlers[dst](src, payload)

    # ------------------------------------------------------------------
    # Region-partitioned delivery (repro.sim.par)
    # ------------------------------------------------------------------
    def attach_partitions(self, group) -> None:
        """Route traffic through a :class:`repro.sim.par.PartitionGroup`.

        Only legal while every delivery-path randomness source is off —
        the partitioned path never consumes the network RNG, so a stream
        draw here would silently diverge from the serial kernel.  The
        eligibility gate (:func:`repro.sim.par.resolve_mode`) enforces
        this before construction; the check is a belt-and-braces assert.
        """
        if self.drop_probability or self.jitter or self.intra_jitter \
                or self.reorder_spread or self.duplicate_probability:
            raise ConfigError(
                "partitioned execution requires deterministic delivery "
                "(drop/jitter/reorder/duplicate must be off)")
        if self.bandwidth_bytes_per_ms is not None or self._link_bandwidth \
                or self.serialization_cost_per_kb:
            raise ConfigError(
                "partitioned execution does not support byte-cost hooks")
        self._par = group

    def detach_partitions(self) -> None:
        self._par = None

    def _send_par(self, src: str, dst: str, payload: object) -> None:
        """send() while a partition group is attached.

        Identical accounting and delay model, with three differences: the
        clock is the *sender's region kernel* (the control kernel lags
        inside a window), stats go to the sender partition's lane (a
        shared-counter race guard for the threaded backend), and
        cross-region messages are buffered on the group channel for
        canonical injection at the next window barrier.
        """
        if dst not in self._handlers:
            raise NetworkError(f"unknown destination host {dst!r}")
        wire_size = getattr(payload, "wire_size", None)
        if wire_size is not None and callable(wire_size):
            type_name = getattr(payload, "type_name", "opaque")
            size = wire_size()
        else:
            type_name = getattr(payload, "type_name", "opaque")
            size = sizeof(payload)
        par = self._par
        src_idx, src_sim = par.locate(src)
        now = src_sim.now
        stats = par.stats_lane(src_idx)
        stats.record_send(src, type_name, size)
        if self.wire_log is not None:
            self.wire_log.append((now, src, dst, type_name, size))
        causal = self.causal
        ctx = None
        if causal is not None:
            ctx = getattr(payload, "trace_ctx", None)
            if ctx is not None:
                stats.trace_bytes_sent += TRACE_CTX_BYTES
                causal.stamp_send(ctx, now, size)
        if not self._fault_free and self._blocked(src, dst):
            stats.record_drop()
            if ctx is not None:
                causal.mark_dropped(ctx)
            return
        regions = self._host_region
        r_dst = regions[dst]
        delay = self._one_way_delay(src, dst, regions[src], r_dst)
        stats.in_flight += 1
        incarnation = self._incarnation.get(dst, 0)
        # Partition of the destination *host* — its region by default, its
        # shard group under sub-region sharding (par.locate handles both).
        dst_idx = par.locate(dst)[0]
        if dst_idx == src_idx:
            src_sim.schedule(delay, self._deliver_par, src, dst, payload,
                             incarnation, dst_idx)
        else:
            par.channel.push(src_idx, now + delay, now, src, dst, payload,
                             incarnation)

    def _deliver_par(self, src: str, dst: str, payload: object,
                     incarnation: int, dst_idx: int) -> None:
        stats = self._par.stats_lane(dst_idx)
        stats.in_flight -= 1
        if (not self._fault_free and self._blocked(src, dst)) \
                or self._incarnation.get(dst, 0) != incarnation:
            stats.record_drop()
            if self.causal is not None:
                ctx = getattr(payload, "trace_ctx", None)
                if ctx is not None:
                    self.causal.mark_dropped(ctx)
            return
        stats.record_receive(dst)
        self._handlers[dst](src, payload)
