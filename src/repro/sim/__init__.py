"""Discrete-event simulation substrate: kernel, clocks, network, RPC."""

from repro.sim.clocks import ClockSource
from repro.sim.kernel import AllOf, AnyOf, Event, Process, Simulator, Timeout
from repro.sim.network import Network, NetworkStats
from repro.sim.rng import RngRegistry
from repro.sim.rpc import Endpoint, RpcRemoteError
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "ClockSource",
    "Endpoint",
    "Event",
    "Network",
    "NetworkStats",
    "Process",
    "RngRegistry",
    "RpcRemoteError",
    "Simulator",
    "Timeout",
    "TraceEvent",
    "Tracer",
]
