"""Seeded random-number streams.

Every stochastic component (network jitter, workload generators, client
think-times, failure injection) draws from its own named stream derived from
one experiment seed, so changing e.g. the workload mix does not perturb the
network's jitter sequence.  This keeps A/B comparisons between systems on the
same seed meaningful.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict

__all__ = ["RngRegistry"]


class RngRegistry:
    """Hands out independent :class:`random.Random` streams by name."""

    def __init__(self, seed: int):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            # Derive a per-stream seed that depends on both the experiment
            # seed and the stream name, stable across processes and runs.
            derived = (self.seed << 32) ^ zlib.crc32(name.encode("utf-8"))
            rng = random.Random(derived)
            self._streams[name] = rng
        return rng

    def fork(self, salt: str) -> "RngRegistry":
        """A registry whose streams are independent of this one's."""
        return RngRegistry((self.seed * 1000003) ^ zlib.crc32(salt.encode("utf-8")))
