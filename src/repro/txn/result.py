"""The result a client receives for a submitted transaction."""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = ["TxnResult"]


class TxnResult:
    """Outcome + latency phase breakdown, as measured at the client side.

    ``phases`` maps phase names to durations in ms; the DAST phases mirror
    Table 3 of the paper: ``local_prepare``, ``remote_prepare``, ``wait_exec``,
    ``wait_input``, ``wait_output``.  Other systems report their own phases
    (e.g. ``retries`` for Tapir).
    """

    def __init__(
        self,
        txn_id: str,
        txn_type: str,
        committed: bool,
        is_crt: bool,
        outputs: Optional[Dict[str, Any]] = None,
        abort_reason: str = "",
        retries: int = 0,
        phases: Optional[Dict[str, float]] = None,
    ):
        self.txn_id = txn_id
        self.txn_type = txn_type
        self.committed = committed
        self.is_crt = is_crt
        self.outputs = outputs or {}
        self.abort_reason = abort_reason
        self.retries = retries
        self.phases = phases or {}
        # Stamped by the client driver.
        self.submit_time: float = 0.0
        self.finish_time: float = 0.0

    @property
    def latency(self) -> float:
        return self.finish_time - self.submit_time

    def __repr__(self) -> str:
        status = "committed" if self.committed else f"aborted({self.abort_reason})"
        kind = "CRT" if self.is_crt else "IRT"
        return f"TxnResult({self.txn_id}, {self.txn_type}, {kind}, {status})"
