"""Deterministic piece execution shared by every system under test.

``execute_on_shard`` runs all of a transaction's pieces that touch one shard,
in piece-index order, against a write buffer.  The buffer gives each
(transaction, shard) pair atomicity under user-level conditional aborts: if
any piece raises :class:`ConditionalAbort`, no write of the transaction
reaches the shard.  Because bodies are deterministic and inputs identical,
every replica of the shard makes the same decision (§4.1).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import MissingRowError, UnknownTableError
from repro.storage.shard import Shard
from repro.txn.model import ConditionalAbort, PieceContext, Transaction

__all__ = [
    "BufferedStore", "DirectStore", "ExpressExecutor", "execute_on_shard",
    "execute_express", "execute_serially", "apply_ops", "ExecOutcome",
]


class BufferedStore:
    """A shard view that buffers writes and optionally records access sets.

    Reads observe the transaction's own buffered writes.  ``flush`` applies
    the buffered operations to the underlying shard in issue order.  When
    ``record`` is true, key-level read/write sets are captured for OCC
    validation (used by the Tapir baseline).
    """

    def __init__(self, shard: Shard, record: bool = False):
        self._shard = shard
        self._record = record
        self._ops: List[Tuple] = []  # ('update'|'insert'|'delete', table, key, payload)
        self._overlay: Dict[Tuple[str, Tuple], Optional[Dict[str, Any]]] = {}
        self.read_set: List[Tuple[str, Tuple]] = []
        self.write_set: List[Tuple[str, Tuple]] = []

    # -- reads ----------------------------------------------------------
    def get(self, table: str, key: Tuple) -> Dict[str, Any]:
        row = self.try_get(table, key)
        if row is None:
            raise MissingRowError(f"{table}: no row with key {tuple(key)}")
        return row

    def try_get(self, table: str, key: Tuple) -> Optional[Dict[str, Any]]:
        key = tuple(key)
        if self._record:
            self.read_set.append((table, key))
        if (table, key) in self._overlay:
            row = self._overlay[(table, key)]
            return dict(row) if row is not None else None
        return self._shard.try_get(table, key)

    def lookup(self, table: str, index: str, ikey: Tuple) -> List[Tuple]:
        # Index lookups pass through to the shard, then merge matches from
        # buffered inserts/updates.  Adequate for the evaluated workloads,
        # where index columns are written only at load time.
        base = self._shard.lookup(table, index, ikey)
        icols = self._shard.table(table).schema.indexes[index]
        extra = []
        for (t, key), row in self._overlay.items():
            if t == table and row is not None and key not in base:
                if tuple(row.get(c) for c in icols) == tuple(ikey):
                    extra.append(key)
        return sorted(set(base) | set(extra))

    def scan_prefix(self, table: str, prefix: Tuple) -> List[Tuple]:
        """Prefix key scan merged with this transaction's buffered writes."""
        prefix = tuple(prefix)
        n = len(prefix)
        keys = set(self._shard.scan_prefix(table, prefix))
        for (t, key), row in self._overlay.items():
            if t != table or key[:n] != prefix:
                continue
            if row is None:
                keys.discard(key)
            else:
                keys.add(key)
        if self._record:
            self.read_set.append((table, ("__prefix__",) + prefix))
        return sorted(keys)

    # -- writes ---------------------------------------------------------
    def update(self, table: str, key: Tuple, changes: Dict[str, Any]) -> None:
        key = tuple(key)
        current = self.try_get(table, key)
        if current is None:
            raise MissingRowError(f"{table}: no row with key {key}")
        current.update(changes)
        self._overlay[(table, key)] = current
        self._ops.append(("update", table, key, dict(changes)))
        if self._record:
            self.write_set.append((table, key))

    def insert(self, table: str, row: Dict[str, Any]) -> None:
        schema = self._shard.table(table).schema
        key = schema.key_of(row)
        self._overlay[(table, key)] = dict(row)
        self._ops.append(("insert", table, key, dict(row)))
        if self._record:
            self.write_set.append((table, key))

    def delete(self, table: str, key: Tuple) -> None:
        key = tuple(key)
        self._overlay[(table, key)] = None
        self._ops.append(("delete", table, key, None))
        if self._record:
            self.write_set.append((table, key))

    def preload(self, ops: List[Tuple]) -> None:
        """Seed the overlay with a transaction's earlier buffered writes.

        Used by deferred-update execution where pieces run in separate RPCs:
        a later piece must observe the transaction's own earlier writes, but
        those writes belong to earlier pieces' op lists, not this one's.
        """
        record, self._record = self._record, False
        try:
            for op, table, key, payload in ops:
                if op == "update":
                    self.update(table, key, payload)
                elif op == "insert":
                    self.insert(table, payload)
                else:
                    self.delete(table, key)
        finally:
            self._ops = []
            self._record = record

    # -- commit ---------------------------------------------------------
    def flush(self) -> int:
        """Apply buffered writes to the shard; returns the op count."""
        for op, table, key, payload in self._ops:
            if op == "update":
                self._shard.update(table, key, payload)
            elif op == "insert":
                self._shard.insert(table, payload)
            else:
                self._shard.delete(table, key)
        applied = len(self._ops)
        self._ops = []
        self._overlay = {}
        return applied

    @property
    def buffered_ops(self) -> List[Tuple]:
        return list(self._ops)


class DirectStore:
    """Write-through shard view with an undo log (express fast path).

    Observable behaviour matches :class:`BufferedStore` for a *committed*
    single-piece transaction: reads see the transaction's own writes (they
    are applied immediately).  On :class:`ConditionalAbort` the caller
    invokes :meth:`rollback`, which reverses the applied operations,
    restoring buffered-store atomicity.  Used only by the express
    execution path, where no read/write-set recording is needed.

    Two deliberate divergences from the generic stores, both safe under
    the piece-body contract (rows are read-only views; all writes go
    through :meth:`update`): reads return the *live* stored row instead of
    a copy, and updates of non-indexed tables skip per-call schema
    re-validation (a cheap updatable-column set check still rejects
    primary-key and unknown-column writes).
    """

    __slots__ = ("_shard", "_undo")

    def __init__(self, shard: Shard):
        self._shard = shard
        self._undo: List[Tuple] = []

    # -- reads ----------------------------------------------------------
    def get(self, table: str, key: Tuple) -> Dict[str, Any]:
        shard = self._shard
        shard.ops_applied += 1
        try:
            rows = shard.tables[table]._rows
        except KeyError:
            raise UnknownTableError(
                f"shard {shard.shard_id}: no table {table!r}") from None
        row = rows.get(tuple(key))
        if row is None:
            raise MissingRowError(f"{table}: no row with key {tuple(key)}")
        return row

    def try_get(self, table: str, key: Tuple) -> Optional[Dict[str, Any]]:
        shard = self._shard
        shard.ops_applied += 1
        try:
            rows = shard.tables[table]._rows
        except KeyError:
            raise UnknownTableError(
                f"shard {shard.shard_id}: no table {table!r}") from None
        return rows.get(tuple(key))

    def lookup(self, table: str, index: str, ikey: Tuple) -> List[Tuple]:
        return self._shard.lookup(table, index, ikey)

    def scan_prefix(self, table: str, prefix: Tuple) -> List[Tuple]:
        return self._shard.scan_prefix(table, prefix)

    # -- writes ---------------------------------------------------------
    def update(self, table: str, key: Tuple, changes: Dict[str, Any]) -> None:
        shard = self._shard
        shard.ops_applied += 1
        try:
            tbl = shard.tables[table]
        except KeyError:
            raise UnknownTableError(
                f"shard {shard.shard_id}: no table {table!r}") from None
        key = tuple(key)
        if tbl._indexes or not changes.keys() <= tbl.schema.updatable:
            # Indexed tables (and out-of-schema writes, which must raise
            # the same errors as everywhere else) take the validated path.
            prior = tbl.try_get(key)
            if prior is None:
                raise MissingRowError(f"{table}: no row with key {key}")
            self._undo.append(
                ("update", table, key, {c: prior[c] for c in changes}))
            tbl.update(key, changes)
            return
        row = tbl._rows.get(key)
        if row is None:
            raise MissingRowError(f"{table}: no row with key {key}")
        self._undo.append(("update", table, key, {c: row[c] for c in changes}))
        row.update(changes)

    def insert(self, table: str, row: Dict[str, Any]) -> None:
        key = self._shard.table(table).schema.key_of(row)
        self._undo.append(("delete", table, key, None))
        self._shard.insert(table, row)

    def delete(self, table: str, key: Tuple) -> None:
        key = tuple(key)
        prior = self._shard.try_get(table, key)
        if prior is None:
            raise MissingRowError(f"{table}: no row with key {key}")
        self._undo.append(("insert", table, key, prior))
        self._shard.delete(table, key)

    def rollback(self) -> None:
        for op, table, key, payload in reversed(self._undo):
            if op == "update":
                self._shard.update(table, key, payload)
            elif op == "insert":
                self._shard.insert(table, payload)
            else:
                self._shard.delete(table, key)
        self._undo = []


class ExecOutcome:
    """Result of running one transaction's pieces on one shard."""

    def __init__(
        self,
        outputs: Dict[str, Any],
        aborted: bool = False,
        abort_reason: str = "",
        read_set: Optional[List[Tuple[str, Tuple]]] = None,
        write_set: Optional[List[Tuple[str, Tuple]]] = None,
        ops: Optional[List[Tuple]] = None,
    ):
        self.outputs = outputs
        self.aborted = aborted
        self.abort_reason = abort_reason
        self.read_set = read_set or []
        self.write_set = write_set or []
        # Buffered write operations, populated when apply_writes=False so
        # deferred-update systems (Tapir) can ship them to replicas.
        self.ops = ops or []


def execute_on_shard(
    txn: Transaction,
    shard_id: str,
    shard: Shard,
    external_inputs: Dict[str, Any],
    apply_writes: bool = True,
    record: bool = False,
    piece_indexes: Optional[List[int]] = None,
    preload_ops: Optional[List[Tuple]] = None,
) -> ExecOutcome:
    """Run ``txn``'s pieces on ``shard_id`` atomically.

    ``external_inputs`` are values for variables produced on other shards
    (delivered by the push mechanism).  ``piece_indexes`` restricts execution
    to a subset of pieces (deferred-update per-piece execution) and
    ``preload_ops`` seeds the store with the transaction's earlier buffered
    writes.  Returns the produced outputs; on a conditional abort no write is
    applied and ``aborted`` is set.
    """
    store = BufferedStore(shard, record=record)
    if preload_ops:
        store.preload(preload_ops)
    env: Dict[str, Any] = dict(txn.params)
    env.update(external_inputs)
    outputs: Dict[str, Any] = {}
    pieces = txn.pieces_on(shard_id)
    if piece_indexes is not None:
        wanted = set(piece_indexes)
        pieces = [p for p in pieces if p.index in wanted]
    try:
        for piece in pieces:
            ctx = PieceContext(store, dict(env))
            piece.body(ctx)
            missing = [v for v in piece.produces if v not in ctx.outputs]
            if missing:
                raise ConditionalAbort(
                    f"piece {piece.index} did not produce declared outputs {missing}"
                )
            env.update(ctx.outputs)
            outputs.update(ctx.outputs)
    except ConditionalAbort as abort:
        return ExecOutcome(
            outputs,
            aborted=True,
            abort_reason=abort.reason,
            read_set=store.read_set,
            write_set=store.write_set,
        )
    ops = [] if apply_writes else store.buffered_ops
    if apply_writes:
        store.flush()
    return ExecOutcome(
        outputs, read_set=store.read_set, write_set=store.write_set, ops=ops
    )


class ExpressExecutor:
    """Allocation-free repeat runner for express transactions.

    One instance lives on each :class:`~repro.core.node.DastNode`; the
    store, piece context, and committed-outcome objects are reused across
    millions of executions, so a committed express execution allocates
    nothing beyond what the piece body itself creates.  The returned
    outcome is only valid until the next :meth:`run` call — the express
    completion callback consumes it synchronously (scalars only), which is
    the calling contract.
    """

    __slots__ = ("_store", "_ctx", "_outcome", "_no_inputs")

    def __init__(self, shard: Shard):
        self._store = DirectStore(shard)
        self._ctx = PieceContext(self._store, {})
        self._outcome = ExecOutcome({})
        self._no_inputs: Dict[str, Any] = {}

    def run(self, txn: Transaction) -> ExecOutcome:
        store = self._store
        if store._undo:
            store._undo.clear()
        ctx = self._ctx
        params = txn.params
        ctx.inputs = dict(params) if params else self._no_inputs
        outputs = ctx.outputs
        if outputs:
            outputs.clear()
        piece = txn.pieces[0]
        try:
            piece.body(ctx)
            for var in piece.produces:
                if var not in outputs:
                    raise ConditionalAbort(
                        f"piece {piece.index} did not produce declared "
                        f"outputs [{var!r}]"
                    )
        except ConditionalAbort as abort:
            store.rollback()
            # Aborts are rare: hand back a private outcome so the reused
            # outputs dict cannot alias into caller-held state.
            return ExecOutcome(dict(outputs), aborted=True,
                               abort_reason=abort.reason)
        outcome = self._outcome
        outcome.outputs = outputs
        return outcome


def execute_express(txn: Transaction, shard: Shard) -> ExecOutcome:
    """Run a *single-piece, no-external-inputs* transaction on ``shard``.

    Semantically identical to ``execute_on_shard(txn, piece.shard_id,
    shard, {})`` for that shape, but writes through with an undo log
    instead of buffering — roughly a third of the dict churn.  One-shot
    wrapper around :class:`ExpressExecutor` for tests and occasional
    callers; the node hot path holds a reusable instance instead.
    """
    return ExpressExecutor(shard).run(txn)


def apply_ops(shard: Shard, ops: List[Tuple]) -> None:
    """Apply a buffered op list (from a deferred execution) to a shard."""
    for op, table, key, payload in ops:
        if op == "update":
            shard.update(table, key, payload)
        elif op == "insert":
            shard.insert(table, payload)
        else:
            shard.delete(table, key)


def execute_serially(txn: Transaction, shard_of: Any) -> ExecOutcome:
    """Run a whole transaction sequentially against local shards.

    ``shard_of`` maps a shard id to its :class:`Shard`.  Pieces run in index
    order (so value dependencies resolve naturally); writes buffer per shard
    and are applied atomically only if no piece conditionally aborts.  This
    is the reference *serial* semantics that concurrent executions must be
    equivalent to — used by the serializability auditor and by tests.
    """
    groups: List[Tuple[str, List[int]]] = []
    for piece in txn.pieces:
        if groups and groups[-1][0] == piece.shard_id:
            groups[-1][1].append(piece.index)
        else:
            groups.append((piece.shard_id, [piece.index]))
    env: Dict[str, Any] = {}
    acc_ops: Dict[str, List[Tuple]] = {}
    outputs: Dict[str, Any] = {}
    for shard_id, indexes in groups:
        shard = shard_of[shard_id] if hasattr(shard_of, "__getitem__") else shard_of(shard_id)
        outcome = execute_on_shard(
            txn, shard_id, shard, dict(env),
            apply_writes=False,
            piece_indexes=indexes,
            preload_ops=acc_ops.get(shard_id, []),
        )
        if outcome.aborted:
            return ExecOutcome(outputs, aborted=True, abort_reason=outcome.abort_reason)
        env.update(outcome.outputs)
        outputs.update(outcome.outputs)
        acc_ops.setdefault(shard_id, []).extend(outcome.ops)
    for shard_id, ops in acc_ops.items():
        shard = shard_of[shard_id] if hasattr(shard_of, "__getitem__") else shard_of(shard_id)
        apply_ops(shard, ops)
    return ExecOutcome(outputs)
