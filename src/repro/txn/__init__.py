"""Transaction model: stored-procedure pieces, value deps, execution."""

from repro.txn.executor import BufferedStore, ExecOutcome, execute_on_shard
from repro.txn.model import ConditionalAbort, Piece, PieceContext, Transaction
from repro.txn.pool import ResultPool, TransactionPool
from repro.txn.result import TxnResult

__all__ = [
    "BufferedStore",
    "ConditionalAbort",
    "ExecOutcome",
    "Piece",
    "PieceContext",
    "ResultPool",
    "Transaction",
    "TransactionPool",
    "TxnResult",
    "execute_on_shard",
]
