"""Transaction model: stored-procedure pieces, value deps, execution."""

from repro.txn.executor import BufferedStore, ExecOutcome, execute_on_shard
from repro.txn.model import ConditionalAbort, Piece, PieceContext, Transaction
from repro.txn.result import TxnResult

__all__ = [
    "BufferedStore",
    "ConditionalAbort",
    "ExecOutcome",
    "Piece",
    "PieceContext",
    "Transaction",
    "TxnResult",
    "execute_on_shard",
]
