"""Slot-recycled transaction and result pools for the open-loop hot loop.

At millions of transactions per trial, allocating a fresh
:class:`~repro.txn.model.Transaction` (pieces, validation DFS, producer
map) and a fresh :class:`~repro.txn.result.TxnResult` per submission
dominates the kernel hot loop.  These pools recycle fully-reset instances
instead.

A pooled transaction is keyed by a **structural signature** chosen by the
caller (e.g. ``("ycsb", shard_id)``): all transactions sharing a signature
have identical piece structure (indexes, shards, needs/produces), so the
validation work done when the first instance was constructed holds for
every reuse and is skipped.  Only the per-instance fields change between
uses: ``txn_id`` (freshly drawn from the same global counter a fresh
``Transaction`` would use, so pooled and fresh runs see identical id
streams), the mutable piece body state, ``lock_keys``, and the cached wire
size (id strings change length, so it must be recomputed).

Correctness contract, enforced by ``tests/test_txn_pool.py``: a trial run
with pools enabled is byte-identical (canonical JSON of its outcome) to
the same trial with pools disabled.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional

from repro.txn.model import Transaction
from repro.txn.result import TxnResult

__all__ = ["TransactionPool", "ResultPool"]


class TransactionPool:
    """Free-lists of recycled :class:`Transaction` objects by signature."""

    def __init__(self) -> None:
        self._free: Dict[Hashable, List[Transaction]] = {}
        self.created = 0
        self.reused = 0

    def acquire(self, signature: Hashable,
                build: Callable[[], Transaction]) -> Transaction:
        """A transaction for ``signature``: recycled if available, else
        freshly built via ``build()`` (which must construct a Transaction
        whose structure is the same for every instance of the signature)."""
        free = self._free.get(signature)
        if free:
            self.reused += 1
            txn = free.pop()
            # Reset the per-instance fields a fresh construction would set.
            # The id draw matches Transaction.__init__, so pooled and fresh
            # runs consume the global id stream identically.
            old_id = txn.txn_id
            txn.txn_id = f"t{next(Transaction._ids):07d}"
            txn.home_region = None
            txn.participating_regions = ()
            txn.params.clear()
            # Only the id string's length feeds the cached wire size
            # (sizeof(str) is overhead + len and the structure is fixed per
            # signature), so patch the cache instead of recomputing it.
            cached = txn.__dict__.get("_wire_size")
            if cached is not None:
                txn._wire_size = cached + len(txn.txn_id) - len(old_id)
            return txn
        self.created += 1
        txn = build()
        txn._pool_signature = signature
        return txn

    def release(self, txn: Transaction) -> None:
        """Return ``txn`` to its free-list (no-op for unpooled instances)."""
        signature = getattr(txn, "_pool_signature", None)
        if signature is None:
            return
        self._free.setdefault(signature, []).append(txn)


class ResultPool:
    """Free-list of recycled :class:`TxnResult` objects."""

    def __init__(self) -> None:
        self._free: List[TxnResult] = []
        self.created = 0
        self.reused = 0

    def acquire(self, txn_id: str, txn_type: str, committed: bool,
                is_crt: bool, abort_reason: str = "",
                outputs: Optional[Dict[str, Any]] = None) -> TxnResult:
        if self._free:
            self.reused += 1
            r = self._free.pop()
            r.txn_id = txn_id
            r.txn_type = txn_type
            r.committed = committed
            r.is_crt = is_crt
            r.outputs = outputs if outputs is not None else {}
            r.abort_reason = abort_reason
            r.retries = 0
            r.phases = {}
            r.submit_time = 0.0
            r.finish_time = 0.0
            return r
        self.created += 1
        return TxnResult(txn_id, txn_type, committed, is_crt,
                         outputs=outputs, abort_reason=abort_reason)

    def release(self, result: TxnResult) -> None:
        self._free.append(result)
