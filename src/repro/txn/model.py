"""DAST's transaction model (§4.1): stored-procedure pieces with acyclic
value dependencies and user-level conditional aborts.

A :class:`Transaction` is a set of :class:`Piece` objects.  Each piece
accesses exactly one shard (known before execution), is deterministic, and
may *consume* named values (``needs``) produced by other pieces and *produce*
named values (``produces``) for other pieces or for the client's result.

Cross-shard value dependencies use the paper's push mechanism: the node that
executes the producer piece sends the value to the consumer shard's replicas
(``SendOutput``), so a consumer never performs a blocking cross-region read.

Conditional aborts are expressed inside piece bodies: a body may raise
:class:`ConditionalAbort` after reading its inputs.  Per the paper's rewrite
rule, every piece that writes conditionally must evaluate the *same*
deterministic predicate over the same (serializable) reads, so all
participants agree without an extra voting round.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import CyclicDependencyError, TransactionError

__all__ = ["Piece", "Transaction", "ConditionalAbort", "PieceContext"]


class ConditionalAbort(Exception):
    """Raised by a piece body to abort the transaction at user level."""

    def __init__(self, reason: str = "conditional abort"):
        super().__init__(reason)
        self.reason = reason


class PieceContext:
    """What a piece body sees: its shard accessor, inputs, and an output dict.

    ``store`` duck-types :class:`repro.storage.Shard` (get/update/insert/
    lookup/…) so the same bodies run under DAST's direct execution and under
    Tapir's recording/buffering execution.
    """

    def __init__(self, store: Any, inputs: Dict[str, Any]):
        self.store = store
        self.inputs = inputs
        self.outputs: Dict[str, Any] = {}

    def put(self, name: str, value: Any) -> None:
        self.outputs[name] = value

    def abort(self, reason: str = "conditional abort") -> None:
        raise ConditionalAbort(reason)


class Piece:
    """One stored-procedure fragment bound to a single shard."""

    def __init__(
        self,
        index: int,
        shard_id: str,
        body: Callable[[PieceContext], None],
        needs: Sequence[str] = (),
        produces: Sequence[str] = (),
        writes: bool = True,
        name: str = "",
        lock_keys: Sequence[Any] = (),
    ):
        self.index = index
        self.shard_id = shard_id
        self.body = body
        self.needs = tuple(needs)
        self.produces = tuple(produces)
        self.writes = writes
        self.name = name or f"piece{index}"
        # A-priori conflict footprint, used by deterministic baselines (SLOG
        # lock sets, Janus dependency keys).  DAST itself never reads this.
        self.lock_keys = tuple(lock_keys)

    def __repr__(self) -> str:
        return f"Piece({self.index}, shard={self.shard_id}, needs={self.needs}, produces={self.produces})"


class Transaction:
    """A client-submitted transaction instance."""

    _ids = itertools.count(1)

    def __init__(
        self,
        txn_type: str,
        pieces: Sequence[Piece],
        params: Optional[Dict[str, Any]] = None,
        txn_id: Optional[str] = None,
    ):
        if not pieces:
            raise TransactionError("a transaction needs at least one piece")
        # Auto-drawn ids are zero-padded to a fixed width: id strings feed
        # the virtual wire-size model, and the region-partitioned kernel
        # (repro.sim.par) interleaves draws differently than serial — with
        # a fixed width, *which* id a transaction gets can never change a
        # message's byte size, so byte accounting stays partition-invariant.
        self.txn_id = txn_id or f"t{next(self._ids):07d}"
        self.txn_type = txn_type
        self.params = dict(params or {})
        self.pieces = sorted(pieces, key=lambda p: p.index)
        if len({p.index for p in self.pieces}) != len(self.pieces):
            raise TransactionError(f"{self.txn_id}: duplicate piece indexes")
        self._producer_of = self._check_value_deps()
        self.shard_ids: Tuple[str, ...] = tuple(sorted({p.shard_id for p in self.pieces}))
        self._check_shard_dep_acyclic()
        # Filled in at submission time by the system under test.
        self.home_region: Optional[str] = None
        self.participating_regions: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # Model validation
    # ------------------------------------------------------------------
    def _check_value_deps(self) -> Dict[str, Piece]:
        producer_of: Dict[str, Piece] = {}
        for piece in self.pieces:
            for var in piece.produces:
                if var in producer_of:
                    raise TransactionError(
                        f"{self.txn_id}: variable {var!r} produced by two pieces"
                    )
                producer_of[var] = piece
        for piece in self.pieces:
            for var in piece.needs:
                producer = producer_of.get(var)
                if producer is None:
                    raise TransactionError(
                        f"{self.txn_id}: piece {piece.index} needs undeclared variable {var!r}"
                    )
                if producer.index >= piece.index:
                    # Piece indexes must topologically order the value-dep DAG;
                    # an equal or later producer would be a (potential) cycle.
                    raise CyclicDependencyError(
                        f"{self.txn_id}: piece {piece.index} depends on later piece "
                        f"{producer.index} (cyclic value dependency)"
                    )
        return producer_of

    def _check_shard_dep_acyclic(self) -> None:
        """Reject circular value dependencies between shards (§4.1, §5).

        The paper's model requires a CRT's value dependencies to be acyclic
        among its accessed regions; this is the "simple analysis mechanism"
        (§5) that detects violations from the <varId, shardId> metadata.  We
        check at *shard* granularity, which is what the per-shard atomic
        execution actually requires: a shard-level cycle would make every
        participant wait for inputs only another participant's execution
        could produce.
        """
        edges = self.dependency_edges()
        adjacency: Dict[str, Set[str]] = {}
        for src, dst in edges:
            adjacency.setdefault(src, set()).add(dst)
        visiting: Set[str] = set()
        done: Set[str] = set()

        def dfs(node: str, path: List[str]) -> None:
            visiting.add(node)
            path.append(node)
            for nxt in sorted(adjacency.get(node, ())):
                if nxt in visiting:
                    cycle = path[path.index(nxt):] + [nxt]
                    raise CyclicDependencyError(
                        f"{self.txn_id}: circular value dependency across shards "
                        f"{' -> '.join(cycle)}"
                    )
                if nxt not in done:
                    dfs(nxt, path)
            visiting.discard(node)
            done.add(node)
            path.pop()

        for start in sorted(adjacency):
            if start not in done:
                dfs(start, [])

    # ------------------------------------------------------------------
    # Queries used by the protocols
    # ------------------------------------------------------------------
    def pieces_on(self, shard_id: str) -> List[Piece]:
        return [p for p in self.pieces if p.shard_id == shard_id]

    def producer_shard(self, var: str) -> str:
        return self._producer_of[var].shard_id

    def external_needs(self, shard_id: str) -> FrozenSet[str]:
        """Variables pieces on ``shard_id`` need from *other* shards."""
        needed: Set[str] = set()
        for piece in self.pieces_on(shard_id):
            for var in piece.needs:
                if self._producer_of[var].shard_id != shard_id:
                    needed.add(var)
        return frozenset(needed)

    def consumers_of(self, var: str) -> FrozenSet[str]:
        """Shards holding pieces that consume ``var`` (excluding the producer)."""
        producer_shard = self._producer_of[var].shard_id
        return frozenset(
            p.shard_id for p in self.pieces if var in p.needs and p.shard_id != producer_shard
        )

    def lock_keys_on(self, shard_id: str) -> FrozenSet:
        keys: Set[Any] = set()
        for piece in self.pieces_on(shard_id):
            keys.update(piece.lock_keys)
        return frozenset(keys)

    def has_value_dependency(self) -> bool:
        """Does any piece consume a value produced on a different shard?"""
        return any(self.external_needs(s) for s in self.shard_ids)

    def dependency_edges(self) -> Set[Tuple[str, str]]:
        """(producer_shard, consumer_shard) pairs of cross-shard value deps."""
        edges: Set[Tuple[str, str]] = set()
        for piece in self.pieces:
            for var in piece.needs:
                src = self._producer_of[var].shard_id
                if src != piece.shard_id:
                    edges.add((src, piece.shard_id))
        return edges

    def wire_size(self) -> int:
        """Virtual wire size (see ``docs/WIRE.md``): id + type + params +
        a fixed per-piece stub (a real system ships piece ids, not closures).
        Cached — a transaction is immutable once submitted."""
        size = getattr(self, "_wire_size", None)
        if size is None:
            from repro.wire.schema import sizeof

            size = (
                sizeof(self.txn_id)
                + sizeof(self.txn_type)
                + sizeof(self.params)
                + 16 * len(self.pieces)
            )
            self._wire_size = size
        return size

    def __repr__(self) -> str:
        return f"Transaction({self.txn_id}, {self.txn_type}, shards={list(self.shard_ids)})"
