"""Heartbeat failure detection for region managers (§4.4).

The paper's fast-failover path starts when a node "is suspected to have
failed (e.g., due to RPC timeouts) and is reported to the manager".  This
module provides that suspicion source: the manager pings its member nodes
periodically; after ``miss_threshold`` consecutive timeouts it invokes
Algorithm 3 (``DastManager.remove_nodes``) against the silent node.

Detection is deliberately conservative (several misses of a generous
timeout): a false suspicion aborts in-flight CRTs coordinated by the
victim, so availability is cheaper than trigger-happiness.  The detector is
opt-in per system (``DastSystem(..., with_failure_detector=True)``) because
the unit benches inject failures explicitly.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import RpcTimeout
from repro.sim.rpc import RpcRemoteError
from repro.wire.messages import Ping

__all__ = ["FailureDetector"]


class FailureDetector:
    """Pings a manager's member nodes; escalates repeated misses."""

    def __init__(self, manager, interval: float = 50.0, miss_threshold: int = 3,
                 timeout: float = 25.0):
        self.manager = manager
        self.sim = manager.sim
        self.interval = interval
        self.miss_threshold = miss_threshold
        self.timeout = timeout
        self.misses: Dict[str, int] = {}
        self.suspected: set = set()
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.spawn(self._loop(), name=f"{self.manager.host}.fd")

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        while self._running:
            yield self.sim.timeout(self.interval)
            if not self.manager.active:
                continue
            for node in list(self.manager.members):
                if node in self.suspected:
                    continue
                self.sim.spawn(self._probe(node), name=f"{self.manager.host}.fd.{node}")

    def _probe(self, node: str):
        try:
            yield self.manager.endpoint.call(node, Ping(), timeout=self.timeout)
        except (RpcTimeout, RpcRemoteError):
            self.misses[node] = self.misses.get(node, 0) + 1
            if self.misses[node] >= self.miss_threshold and node not in self.suspected:
                self.suspected.add(node)
                self.manager.stats.inc("fd_suspicions")
                yield self.sim.spawn(self.manager.remove_nodes([node]))
            return
        self.misses[node] = 0
