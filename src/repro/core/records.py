"""Per-node transaction bookkeeping for DAST: records, readyQ, waitQ.

Each node keeps two timestamp-ordered queues (§4.2):

* **readyQ** — received IRTs (prepared or committed) and *committed* CRTs;
  the PCT check walks it in timestamp order.
* **waitQ** — constraints on the dclock: prepared CRTs at their anticipated
  timestamps, committed CRTs still waiting for remote inputs at their commit
  timestamps, plus special failover entries (the fake CRT of Algorithm 4).
  The minimum of the waitQ is the dclock's stretch floor.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.clock.hlc import Timestamp
from repro.txn.model import Transaction

__all__ = ["TxnStatus", "TxnRecord", "ReadyQueue", "WaitQueue"]


class TxnStatus:
    """Lifecycle states of a transaction record at one node."""

    ANNOUNCED = "announced"  # CRT known via intra-region notification only
    PREPARED = "prepared"
    COMMITTED = "committed"
    EXECUTED = "executed"
    ABORTED = "aborted"


class TxnRecord:
    """One node's view of one relevant transaction."""

    __slots__ = (
        "txn", "txn_id", "is_crt", "coordinator", "status", "ts",
        "anticipated_ts", "participates", "inputs", "needed", "exec_cb",
        "t_prepared", "t_committed", "t_order_ready", "t_input_ready",
        "t_executed", "_relayed", "_input_announced", "_abort_relayed",
    )

    def __init__(
        self,
        txn: Transaction,
        is_crt: bool,
        coordinator: str,
        status: str = TxnStatus.PREPARED,
    ):
        self.txn = txn
        # Materialized copy of txn.txn_id: record ids key every queue and map
        # on the hot path, and a record's txn is never swapped after
        # construction (pool recycling re-ids a txn only after its express
        # record has already been executed and dropped).
        self.txn_id = txn.txn_id
        self.is_crt = is_crt
        self.coordinator = coordinator
        self.status = status
        self.ts: Optional[Timestamp] = None  # ordering timestamp (IRT ts / CRT commit ts)
        self.anticipated_ts: Optional[Timestamp] = None  # CRT phase-1 timestamp
        self.participates = False  # does this node host a participating shard?
        self.inputs: Dict[str, Any] = {}
        self.needed: FrozenSet[str] = frozenset()
        # Express-path completion hook (repro.workloads.openloop): when set,
        # execution calls ``exec_cb(rec, outcome)`` instead of sending an
        # ExecDone RPC, and the record is garbage-collected immediately.
        self.exec_cb = None
        # Phase instrumentation (virtual ms), used for Tables 3 and 4.
        self.t_prepared = 0.0
        self.t_committed = 0.0
        self.t_order_ready = 0.0  # head-of-queue and all clocks passed
        self.t_input_ready = 0.0
        self.t_executed = 0.0

    def input_ready(self) -> bool:
        return self.needed <= frozenset(self.inputs)

    def __repr__(self) -> str:
        return (
            f"TxnRecord({self.txn_id}, {self.status}, ts={self.ts}, "
            f"anticipated={self.anticipated_ts})"
        )


# Lazy-deletion heaps below compact once they exceed this many entries AND
# stale entries outnumber live ones 2:1 — bounding growth under chaos-driven
# remove/re-key churn without paying a rebuild on ordinary traffic.
_COMPACT_MIN = 64


class ReadyQueue:
    """Min-heap of records by ordering timestamp with lazy deletion.

    Heap entries are flattened ``(time, frac, nid, seq, ts, record)`` tuples:
    the timestamp's precomputed sort key occupies the leading scalar slots so
    sift comparisons never dispatch into nested-tuple comparison, and ``seq``
    (unique, monotone) guarantees the comparison never reaches ``ts`` or
    ``record``.  Ordering is byte-identical to a ``(ts, seq)`` keyed heap.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple] = []
        self._seq = itertools.count()
        self._members: Dict[str, TxnRecord] = {}
        self._sorted: Optional[List[TxnRecord]] = None  # cached records() view

    def insert(self, ts: Timestamp, record: TxnRecord) -> None:
        record.ts = ts
        self._members[record.txn_id] = record
        heapq.heappush(self._heap, (ts.time, ts.frac, ts.nid, next(self._seq), ts, record))
        self._sorted = None
        if len(self._heap) > _COMPACT_MIN and len(self._heap) > 2 * len(self._members):
            self._compact()

    def _entry_live(self, entry: Tuple) -> bool:
        record = entry[5]
        if self._members.get(record.txn_id) is not record:
            return False
        ts = record.ts
        return ts is entry[4] or ts == entry[4]

    def _compact(self) -> None:
        # Rebuild from live entries only; original seqs are preserved, so the
        # pop order (total order on the flattened keys) is unchanged.
        live = [entry for entry in self._heap if self._entry_live(entry)]
        heapq.heapify(live)
        self._heap = live

    def head(self) -> Optional[TxnRecord]:
        heap = self._heap
        members = self._members
        while heap:
            entry = heap[0]
            record = entry[5]
            if members.get(record.txn_id) is record:
                ts = record.ts
                if ts is entry[4] or ts == entry[4]:
                    return record
            heapq.heappop(heap)  # stale (removed or re-keyed) entry
        return None

    def pop(self) -> TxnRecord:
        record = self.head()
        if record is None:
            raise IndexError("pop from empty ReadyQueue")
        heapq.heappop(self._heap)
        del self._members[record.txn_id]
        self._sorted = None
        return record

    def pop_head(self, record: TxnRecord) -> None:
        """Pop ``record``, already known to be the live heap top (i.e. the
        value a ``head()`` call just returned, with no mutation since) —
        skips re-walking stale entries on the sweep hot path."""
        heapq.heappop(self._heap)
        del self._members[record.txn_id]
        self._sorted = None

    def remove(self, txn_id: str) -> Optional[TxnRecord]:
        record = self._members.pop(txn_id, None)
        if record is not None:
            self._sorted = None
            if len(self._heap) > _COMPACT_MIN and len(self._heap) > 2 * len(self._members):
                self._compact()
        return record

    def get(self, txn_id: str) -> Optional[TxnRecord]:
        return self._members.get(txn_id)

    def __contains__(self, txn_id: str) -> bool:
        return txn_id in self._members

    def __len__(self) -> int:
        return len(self._members)

    def records(self) -> List[TxnRecord]:
        """Members in timestamp order (cached between mutations)."""
        cache = self._sorted
        if cache is None:
            cache = self._sorted = sorted(self._members.values(), key=lambda r: r.ts)
        return list(cache)


class WaitQueue:
    """Timestamp floor constraints keyed by a constraint id (txn id or tag).

    Uses the same flattened-entry layout and compaction policy as
    :class:`ReadyQueue`: ``(time, frac, nid, seq, ts, key)``.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple] = []
        self._seq = itertools.count()
        self._entries: Dict[str, Timestamp] = {}

    def insert(self, key: str, ts: Timestamp) -> None:
        self._entries[key] = ts
        heapq.heappush(self._heap, (ts.time, ts.frac, ts.nid, next(self._seq), ts, key))
        if len(self._heap) > _COMPACT_MIN and len(self._heap) > 2 * len(self._entries):
            self._compact()

    def remove(self, key: str) -> None:
        self._entries.pop(key, None)
        if len(self._heap) > _COMPACT_MIN and len(self._heap) > 2 * len(self._entries):
            self._compact()

    def update(self, key: str, ts: Timestamp) -> None:
        """Atomically re-key an entry (CRT commit: anticipated -> commit ts)."""
        self.insert(key, ts)

    def _compact(self) -> None:
        entries = self._entries
        live = [
            e for e in self._heap
            if (current := entries.get(e[5])) is not None
            and (current is e[4] or current == e[4])
        ]
        heapq.heapify(live)
        self._heap = live

    def min(self) -> Optional[Timestamp]:
        heap = self._heap
        entries = self._entries
        while heap:
            entry = heap[0]
            ts = entry[4]
            current = entries.get(entry[5])
            if current is not None and (current is ts or current == ts):
                return ts
            heapq.heappop(heap)
        return None

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Dict[str, Timestamp]:
        return dict(self._entries)
