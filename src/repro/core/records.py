"""Per-node transaction bookkeeping for DAST: records, readyQ, waitQ.

Each node keeps two timestamp-ordered queues (§4.2):

* **readyQ** — received IRTs (prepared or committed) and *committed* CRTs;
  the PCT check walks it in timestamp order.
* **waitQ** — constraints on the dclock: prepared CRTs at their anticipated
  timestamps, committed CRTs still waiting for remote inputs at their commit
  timestamps, plus special failover entries (the fake CRT of Algorithm 4).
  The minimum of the waitQ is the dclock's stretch floor.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.clock.hlc import Timestamp
from repro.txn.model import Transaction

__all__ = ["TxnStatus", "TxnRecord", "ReadyQueue", "WaitQueue"]


class TxnStatus:
    """Lifecycle states of a transaction record at one node."""

    ANNOUNCED = "announced"  # CRT known via intra-region notification only
    PREPARED = "prepared"
    COMMITTED = "committed"
    EXECUTED = "executed"
    ABORTED = "aborted"


class TxnRecord:
    """One node's view of one relevant transaction."""

    def __init__(
        self,
        txn: Transaction,
        is_crt: bool,
        coordinator: str,
        status: str = TxnStatus.PREPARED,
    ):
        self.txn = txn
        self.is_crt = is_crt
        self.coordinator = coordinator
        self.status = status
        self.ts: Optional[Timestamp] = None  # ordering timestamp (IRT ts / CRT commit ts)
        self.anticipated_ts: Optional[Timestamp] = None  # CRT phase-1 timestamp
        self.participates = False  # does this node host a participating shard?
        self.inputs: Dict[str, Any] = {}
        self.needed: FrozenSet[str] = frozenset()
        # Phase instrumentation (virtual ms), used for Tables 3 and 4.
        self.t_prepared = 0.0
        self.t_committed = 0.0
        self.t_order_ready = 0.0  # head-of-queue and all clocks passed
        self.t_input_ready = 0.0
        self.t_executed = 0.0

    @property
    def txn_id(self) -> str:
        return self.txn.txn_id

    def input_ready(self) -> bool:
        return self.needed <= frozenset(self.inputs)

    def __repr__(self) -> str:
        return (
            f"TxnRecord({self.txn_id}, {self.status}, ts={self.ts}, "
            f"anticipated={self.anticipated_ts})"
        )


class ReadyQueue:
    """Min-heap of records by ordering timestamp with lazy deletion."""

    def __init__(self) -> None:
        self._heap: List[Tuple[Timestamp, int, TxnRecord]] = []
        self._seq = itertools.count()
        self._members: Dict[str, TxnRecord] = {}

    def insert(self, ts: Timestamp, record: TxnRecord) -> None:
        record.ts = ts
        self._members[record.txn_id] = record
        heapq.heappush(self._heap, (ts, next(self._seq), record))

    def head(self) -> Optional[TxnRecord]:
        while self._heap:
            ts, _seq, record = self._heap[0]
            live = self._members.get(record.txn_id)
            if live is record and record.ts == ts:
                return record
            heapq.heappop(self._heap)  # stale (removed or re-keyed) entry
        return None

    def pop(self) -> TxnRecord:
        record = self.head()
        if record is None:
            raise IndexError("pop from empty ReadyQueue")
        heapq.heappop(self._heap)
        del self._members[record.txn_id]
        return record

    def remove(self, txn_id: str) -> Optional[TxnRecord]:
        return self._members.pop(txn_id, None)

    def get(self, txn_id: str) -> Optional[TxnRecord]:
        return self._members.get(txn_id)

    def __contains__(self, txn_id: str) -> bool:
        return txn_id in self._members

    def __len__(self) -> int:
        return len(self._members)

    def records(self) -> List[TxnRecord]:
        return sorted(self._members.values(), key=lambda r: r.ts)


class WaitQueue:
    """Timestamp floor constraints keyed by a constraint id (txn id or tag)."""

    def __init__(self) -> None:
        self._heap: List[Tuple[Timestamp, int, str]] = []
        self._seq = itertools.count()
        self._entries: Dict[str, Timestamp] = {}

    def insert(self, key: str, ts: Timestamp) -> None:
        self._entries[key] = ts
        heapq.heappush(self._heap, (ts, next(self._seq), key))

    def remove(self, key: str) -> None:
        self._entries.pop(key, None)

    def update(self, key: str, ts: Timestamp) -> None:
        """Atomically re-key an entry (CRT commit: anticipated -> commit ts)."""
        self.insert(key, ts)

    def min(self) -> Optional[Timestamp]:
        while self._heap:
            ts, _seq, key = self._heap[0]
            current = self._entries.get(key)
            if current is not None and current == ts:
                return ts
            heapq.heappop(self._heap)
        return None

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Dict[str, Timestamp]:
        return dict(self._entries)
