"""Top-level assembly of a DAST deployment on the simulated edge network.

``DastSystem`` wires regions, nodes (one shard replica each), managers (one
active + one standby per region), the per-region SMR service, and loads the
workload's data into every replica.  It exposes the client-facing ``submit``
API shared by all systems under test, plus fault-injection hooks used by the
failover tests and robustness benchmarks (Figs 9-10).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.config import Topology
from repro.consensus.smr import SmrCluster
from repro.core.failure_detector import FailureDetector
from repro.core.manager import DastManager
from repro.core.node import DastNode
from repro.errors import ConfigError, RpcTimeout
from repro.sim.clocks import ClockSource
from repro.sim.kernel import Event, Simulator
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.rpc import Endpoint, RpcRemoteError
from repro.sim.trace import trace_client_rpc
from repro.storage.catalog import Catalog
from repro.storage.shard import Shard
from repro.storage.table import TableSchema
from repro.txn.model import Transaction
from repro.util import Stats
from repro.wire.messages import Submit, ViewSync

__all__ = ["DastSystem"]


class DastSystem:
    """A complete DAST deployment ready to accept transactions."""

    name = "dast"

    def __init__(
        self,
        topology: Topology,
        schemas: Sequence[TableSchema],
        loader: Callable[[Shard, int], None],
        seed: int = 1,
        clock_skew: float = 0.0,
        with_smr: bool = False,
        with_failure_detector: bool = False,
        variant: Optional[Dict[str, bool]] = None,
        parallel: str = "",
        parallel_parts: Optional[Dict[str, str]] = None,
    ):
        # Ablation variant flags: {"stretch": bool, "calibration": bool,
        # "anticipation": bool}; all default True (full DAST).
        self.variant = {"stretch": True, "calibration": True, "anticipation": True}
        self.variant.update(variant or {})
        self.with_failure_detector = with_failure_detector
        self.failure_detectors: Dict[str, "FailureDetector"] = {}
        self.topology = topology
        self.timing = topology.config.timing
        self.sim = Simulator()
        # Region-partitioned execution (repro.sim.par): "" = plain serial
        # (everything on self.sim), else "lockstep"/"threads"/"process" —
        # one kernel per partition, with self.sim demoted to the *control
        # kernel* (chaos plans, probe timers, harness bookkeeping).
        # Partitions are regions unless ``parallel_parts`` carries a
        # host -> partition-name map (sub-region sharding: one region's
        # shards spread over several kernels, see plan_partitions).
        self.parallel_mode = parallel
        self.region_sims: Dict[str, Simulator] = {}
        self.partition_sims: Dict[str, Simulator] = {}
        self.host_partition: Optional[Dict[str, str]] = None
        if parallel and parallel_parts:
            self.host_partition = dict(parallel_parts)
            names: List[str] = []
            for part in self.host_partition.values():
                if part not in names:
                    names.append(part)
            names.sort(key=lambda p: (p.rpartition("@")[0],
                                      int(p.rpartition("@")[2])))
            self.partition_sims = {name: Simulator() for name in names}
        elif parallel:
            self.region_sims = {region: Simulator() for region in topology.regions}
        self.par_group = None
        self.rng = RngRegistry(seed)
        self.network = Network(
            self.sim,
            self.rng,
            intra_region_rtt=self.timing.intra_region_rtt,
            cross_region_rtt=self.timing.cross_region_rtt,
            drop_probability=self.timing.drop_probability,
        )
        self.catalog = Catalog(self._partition)
        self._shard_of_key: Dict[str, str] = {}
        self.schemas = list(schemas)
        self.loader = loader
        self.stats = Stats()
        self.submitted: Dict[str, Transaction] = {}
        # The submitted-transaction ledger feeds the post-hoc serializability
        # audit; open-loop scale trials opt out (millions of retained txn
        # objects) via the engine, which sets this False.
        self.track_submitted = True
        # Observability attachments (None/absent -> zero instrumentation work).
        self.tracer = None
        self.registry = None
        self.probes = None
        # Elastic reshard bookkeeping (repro.topo): per-shard snapshots of
        # retired donor replicas' executed logs (host, log, digest) for the
        # serializability auditor, plus a per-region guest-name sequence.
        self.retired_replicas: Dict[str, List] = {}
        self._guest_seq: Dict[str, int] = {}

        skew_rng = self.rng.stream("clock-skew")
        nid = 0
        self.clock_sources: Dict[str, ClockSource] = {}
        self.nodes: Dict[str, DastNode] = {}
        self.managers: Dict[str, DastManager] = {}
        self.standby_managers: Dict[str, DastManager] = {}
        self.smr_clusters: Dict[str, SmrCluster] = {}
        # Shared manager directory: updated on takeover so remote
        # coordinators find the active manager (models a directory service).
        self.manager_directory: Dict[str, str] = {
            region: topology.manager_of(region) for region in topology.regions
        }
        for region in topology.regions:
            for shard_id in topology.shards_in_region(region):
                self.catalog.add_shard(shard_id, region, topology.replicas_of(shard_id))
        for region in topology.regions:
            rsim = self.sim_for(region)
            if with_smr:
                self.smr_clusters[region] = SmrCluster(rsim, self.network, region)
            for node_host in topology.nodes_in_region(region):
                shard_id = topology.shard_of_node(node_host)
                shard = Shard(shard_id, self.schemas)
                self.loader(shard, topology.shard_index(shard_id))
                nsim = self.sim_for_host(node_host)
                source = self._clock_source(node_host, clock_skew, skew_rng, nsim)
                node = DastNode(
                    nsim, self.network, topology, self.catalog, self.timing,
                    node_host, shard, source, nid, self.manager_directory,
                )
                node.dclock.stretch_enabled = self.variant["stretch"]
                node.dclock.calibration_enabled = self.variant["calibration"]
                self.nodes[node_host] = node
                nid += 1
            for mgr_host, active in (
                (topology.manager_of(region), True),
                (topology.manager_backup_of(region), False),
            ):
                msim = self.sim_for_host(mgr_host)
                source = self._clock_source(mgr_host, clock_skew, skew_rng, msim)
                manager = DastManager(
                    msim, self.network, topology, self.catalog, self.timing,
                    mgr_host, region, source, nid,
                    smr=self.smr_clusters.get(region), active=active,
                )
                manager.managers = self.manager_directory
                manager.dclock.calibration_enabled = self.variant["calibration"]
                manager.anticipation_enabled = self.variant["anticipation"]
                nid += 1
                if active:
                    self.managers[region] = manager
                else:
                    self.standby_managers[region] = manager
        self.client_endpoints: Dict[str, Endpoint] = {}
        for client in topology.all_clients():
            region = client.split(".", 1)[0]
            self.client_endpoints[client] = Endpoint(
                self.sim_for_host(client), self.network, client, region)
        if parallel:
            from repro.sim.par import MODE_PROCESS, PartitionGroup

            if parallel == MODE_PROCESS:
                from repro.sim.par.proc import ProcessGroup

                group_cls = ProcessGroup
            else:
                group_cls = PartitionGroup
            self.par_group = group_cls(
                self.sim, self.partition_sims or self.region_sims,
                self.network, mode=parallel,
                host_partition=self.host_partition)
            self.network.attach_partitions(self.par_group)

    def sim_for(self, region: str) -> Simulator:
        """The kernel owning ``region`` (the shared kernel when serial).

        Under sub-region sharding a region has no single kernel; callers
        with a host in hand should use :meth:`sim_for_host`.  This falls
        back to the control kernel then, which only region-agnostic
        paths (faults, SMR) hit — none of which sub-shard trials host.
        """
        if not self.region_sims:
            return self.sim
        return self.region_sims.get(region, self.sim)

    def sim_for_host(self, host: str) -> Simulator:
        """The kernel owning ``host`` (region kernel, shard-partition
        kernel under sub-region sharding, or the shared serial kernel)."""
        hp = self.host_partition
        if hp is not None:
            part = hp.get(host)
            if part is not None:
                return self.partition_sims[part]
            return self.sim
        if not self.region_sims:
            return self.sim
        return self.region_sims.get(host.split(".", 1)[0], self.sim)

    def _clock_source(self, host: str, skew: float, rng,
                      sim: Optional[Simulator] = None) -> ClockSource:
        offset = rng.uniform(-skew, skew) if skew else 0.0
        source = ClockSource(sim if sim is not None else self.sim, offset=offset)
        self.clock_sources[host] = source
        return source

    def _partition(self, table: str, key) -> str:
        # The workload maps keys to global shard indexes via its own logic;
        # systems see shard ids directly on the transaction's pieces, so this
        # partition function is only used for ad-hoc catalog lookups.
        raise ConfigError("DAST resolves shards from transaction pieces, not the catalog")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        for node in self.nodes.values():
            node.start()
        for manager in self.managers.values():
            manager.start()
            if self.with_failure_detector and manager.region not in self.failure_detectors:
                detector = FailureDetector(manager)
                detector.start()
                self.failure_detectors[manager.region] = detector

    def run(self, until: Optional[float] = None) -> float:
        if self.par_group is not None:
            return self.par_group.run(until=until)
        return self.sim.run(until=until)

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, client: str, node_host: str, txn: Transaction,
               timeout: Optional[float] = None) -> Event:
        """Submit ``txn`` from ``client`` to coordinator ``node_host``.

        Returns an event resolving to a :class:`TxnResult` (or failing with
        :class:`RpcTimeout` if the coordinator crashed mid-flight).
        """
        endpoint = self.client_endpoints.get(client)
        if endpoint is None:
            region = client.split(".", 1)[0]
            endpoint = Endpoint(self.sim_for_host(client), self.network,
                                client, region)
            self.client_endpoints[client] = endpoint
        if self.track_submitted:
            self.submitted[txn.txn_id] = txn
        tracer = self.tracer
        if tracer is not None and tracer.causal:
            # Causal tracing: open the root span and issue the submit under
            # its context so the request hop parents to it.
            event = tracer.traced_submit(endpoint, client, node_host,
                                         Submit(txn=txn), txn.txn_id, timeout)
        else:
            event = endpoint.call(node_host, Submit(txn=txn), timeout=timeout)
        if tracer is not None:
            # The endpoint's kernel, not self.sim: under partitioned
            # execution the control kernel's clock lags the region kernels
            # inside a window, and these emits carry timestamps.
            trace_client_rpc(endpoint.sim, tracer, client, txn.txn_id, event)
        return event

    def home_nodes(self, region: str) -> List[str]:
        return self.topology.nodes_in_region(region)

    def attach_tracer(self, kinds=None, hosts=None, capacity: int = 200_000,
                      causal: bool = False):
        """Attach a :class:`repro.sim.trace.Tracer` to every node/manager.

        Returns the tracer; tracing is off unless this is called.  With
        ``causal=True`` the tracer also records cross-node span trees.
        """
        from repro.obs.bundle import attach_tracer

        return attach_tracer(self, kinds=kinds, hosts=hosts, capacity=capacity,
                             causal=causal)

    def attach_registry(self, registry=None):
        """Attach a metrics registry; all Stats bags mirror into it."""
        from repro.obs.bundle import attach_registry

        return attach_registry(self, registry=registry)

    def attach_obs(self, kinds=None, hosts=None, capacity: int = 200_000,
                   probe_interval: float = 50.0, causal: bool = False):
        """Full observability: tracer + registry + periodic probes."""
        from repro.obs.bundle import attach_obs

        return attach_obs(self, kinds=kinds, hosts=hosts, capacity=capacity,
                          probe_interval=probe_interval, causal=causal)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def _trace_fault(self, fault: str, **detail) -> None:
        """Fault injections show up in the trace stream even when driven
        directly (not through a chaos plan), so timelines stay complete."""
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, "fault", "fault", fault=fault, detail=detail)

    def crash_node(self, node_host: str, report: bool = True) -> None:
        """Crash a data node; optionally report it to its region's manager."""
        self._trace_fault("crash_node", host=node_host)
        self.network.crash_host(node_host)
        self.nodes[node_host].stop()
        if report:
            region = self.topology.region_of_node(node_host)
            manager = self.managers[region]
            self.sim_for(region).spawn(
                manager.remove_nodes([node_host]), name=f"remove.{node_host}")

    def fail_manager(self, region: str) -> DastManager:
        """Crash the active manager and promote the standby via SMR + 2PC."""
        self._trace_fault("fail_manager", region=region)
        old = self.managers[region]
        old.stop()
        self.network.crash_host(old.host)
        if region in self.smr_clusters:
            self.smr_clusters[region].elect()
        standby = self.standby_managers[region]
        self.manager_directory[region] = standby.host
        self.managers[region] = standby
        self.sim_for(region).spawn(standby.takeover(), name=f"takeover.{region}")
        return standby

    def skew_clocks(self, prefix: str, delta_ms: float) -> int:
        """Step every clock whose host starts with ``prefix`` by ``delta_ms``.

        Models an operator mis-setting a region's time (Fig 10a); returns
        how many clocks were touched.
        """
        self._trace_fault("clock_skew", prefix=prefix, delta=delta_ms)
        touched = 0
        for host, source in self.clock_sources.items():
            if host.startswith(prefix):
                source.adjust(delta_ms)
                touched += 1
        return touched

    def _provision_node(self, region: str, new_host: str, shard_id: str,
                        manager_host: Optional[str] = None,
                        members: Optional[List[str]] = None) -> DastNode:
        """Build, register and start a fresh (empty) replica node."""
        rsim = self.sim_for(region)
        source = self._clock_source(new_host, 0.0, self.rng.stream("clock-skew"), rsim)
        shard = Shard(shard_id, self.schemas)  # empty until checkpoint install
        node = DastNode(
            rsim, self.network, self.topology, self.catalog, self.timing,
            new_host, shard, source, nid=1000 + len(self.nodes), managers=self.manager_directory,
        )
        if manager_host is not None:
            # Migrating replica (repro.topo): managed by the *source*
            # region's manager until the post-move view flip.
            node.manager = manager_host
        if members is not None:
            node.members = list(members)
        if not self.track_submitted:
            # Open-loop scale trials run with executed logs off; a node
            # provisioned mid-trial inherits that choice.
            node.keep_executed_log = False
        # A re-added host may have been crashed before: revive its address.
        self.network.restart_host(new_host)
        node.tracer = self.tracer  # inherit the system-wide tracer, if any
        self.nodes[new_host] = node
        node.start()
        return node

    def add_replica(self, region: str, new_host: str, shard_id: str) -> Event:
        """Add ``new_host`` as a fresh replica of ``shard_id`` (Algorithm 4)."""
        self._provision_node(region, new_host, shard_id)
        manager = self.managers[region]
        return self.sim_for(region).spawn(
            manager.add_replica(new_host, shard_id), name=f"add.{new_host}")

    # ------------------------------------------------------------------
    # Elastic resharding (repro.topo)
    # ------------------------------------------------------------------
    def next_guest_host(self, region: str) -> str:
        """Deterministic name for a replica provisioned mid-trial."""
        seq = self._guest_seq.get(region, 0)
        self._guest_seq[region] = seq + 1
        return f"{region}.g{seq}"

    def _call_until_acked(self, endpoint: Endpoint, dst: str, msg,
                          timeout: float):
        """Generator: retry ``endpoint.call`` until acked or ``dst`` dies."""
        while True:
            try:
                yield endpoint.call(dst, msg, timeout=timeout)
                return
            except (RpcTimeout, RpcRemoteError):
                self.stats.inc("topo_retransmissions")
                if self.network.is_down(dst):
                    return

    def _shard_quiesced(self, shard_id: str, hosts: Sequence[str]) -> bool:
        """No manager anticipates, and no donor replica coordinates or
        holds unexecuted work, for ``shard_id``."""
        for manager in self.managers.values():
            for pending in manager.pending.values():
                if shard_id in pending.txn.shard_ids:
                    return False
        for host in hosts:
            node = self.nodes.get(host)
            if node is None:
                continue
            if node.coordinating:
                return False
            if node.ready_q.head() is not None:
                return False
        return True

    def reshard(self, shard_id: str, dst_region: str):
        """Generator: elastically move ``shard_id`` to ``dst_region``.

        The move composes the paper's own machinery — Algorithm 4 admits
        one fresh replica per donor in the destination region (managed by
        the source manager so the PCT promise holds across the stretch),
        Algorithm 3 retires the donors after a freeze-and-drain window,
        and a final ViewSync flips the migrated replicas to the
        destination manager with fully symmetric member sets.  Runs on
        the serial kernel (the PDES gate forces MODE_SERIAL for plans
        with structural events).
        """
        src_region = self.catalog.region_of_shard(shard_id)
        if src_region == dst_region:
            return {"shard": shard_id, "moved": False}
        old_replicas = list(self.catalog.replicas_of(shard_id))
        mgr_src = self.managers[src_region]
        mgr_dst = self.managers[dst_region]
        sim = self.sim_for(src_region)
        self._trace_fault("reshard_start", shard=shard_id,
                          src=src_region, dst=dst_region)
        # Phase 1 — freeze new submissions and drain the in-flight window:
        # two consecutive quiet checks one cross-region RTT apart, so a
        # PrepRemote or commit already in flight lands before the move
        # begins.  Stop-and-copy ordering: admitting guests on a quiescent
        # shard means the checkpoint is the whole state, the catchup is
        # empty, and no prepare can race the view install (a transaction
        # delivered to the donors alone could otherwise reach the guest
        # *after* it executed later-timestamped work — an order violation).
        self.catalog.frozen_shards.add(shard_id)
        settled = 0
        while settled < 2:
            yield sim.timeout(self.timing.cross_region_rtt)
            settled = settled + 1 if self._shard_quiesced(shard_id, old_replicas) else 0
        # Phase 2 — admit one migrating replica per donor (Algorithm 4).
        guests: List[str] = []
        for _ in old_replicas:
            host = self.next_guest_host(dst_region)
            self._provision_node(dst_region, host, shard_id,
                                 manager_host=mgr_src.host, members=[host])
            guests.append(host)
            yield sim.spawn(
                mgr_src.add_replica(host, shard_id, donor=old_replicas[0]),
                name=f"reshard.add.{host}")
        # Phase 3 — snapshot the donors' logs for the auditor (one batch
        # per reshard: digests must agree *within* a batch, while batches
        # from successive moves of the same shard legitimately differ),
        # then retire the donors through the ordinary removal view change
        # (Algorithm 3).
        self.retired_replicas.setdefault(shard_id, []).append([
            (host, list(self.nodes[host].executed_log),
             self.nodes[host].shard.digest())
            for host in old_replicas if host in self.nodes])
        yield sim.spawn(mgr_src.remove_nodes(old_replicas),
                        name=f"reshard.rm.{shard_id}")
        for host in old_replicas:
            node = self.nodes.get(host)
            if node is not None:
                node.stop()
        # Phase 4 — re-home the shard and flip the view, fully symmetric:
        # destination members (old + migrated) adopt the merged set and the
        # destination manager; remaining source members drop the guests.
        self.catalog.set_region(shard_id, dst_region)
        for host in guests:
            if host not in mgr_dst.members:
                mgr_dst.members.append(host)
        dst_view = ViewSync(shard=shard_id, region=dst_region,
                            manager=mgr_dst.host, members=list(mgr_dst.members))
        for host in list(mgr_dst.members):
            yield from self._call_until_acked(
                mgr_dst.endpoint, host, dst_view,
                timeout=4 * self.timing.intra_region_rtt)
        src_members = [m for m in mgr_src.members if m not in guests]
        src_view = ViewSync(shard=shard_id, region=src_region,
                            manager=None, members=list(src_members))
        for host in src_members:
            yield from self._call_until_acked(
                mgr_src.endpoint, host, src_view,
                timeout=4 * self.timing.intra_region_rtt)
        mgr_src.members = src_members
        # Phase 5 — thaw once the shared catalog reflects the removal (the
        # RemoveCommit lands at a surviving member and prunes the donors),
        # so no thawed submission can still route to a retired replica.
        while any(h in self.catalog.replicas_of(shard_id) for h in old_replicas):
            yield sim.timeout(self.timing.intra_region_rtt)
        self.catalog.frozen_shards.discard(shard_id)
        self.stats.inc("topo_reshards")
        self._trace_fault("reshard_done", shard=shard_id,
                          src=src_region, dst=dst_region, guests=guests)
        return {"shard": shard_id, "moved": True, "src": src_region,
                "dst": dst_region, "guests": guests}

    # ------------------------------------------------------------------
    # Introspection for tests and benchmarks
    # ------------------------------------------------------------------
    def topo_counters(self) -> Dict[str, int]:
        """All ``topo_*`` counters, system-level plus per-node tallies
        (parked submissions abort at the node that was retired under them)."""
        out = {k: v for k, v in self.stats.counters.items()
               if k.startswith("topo_")}
        for node in self.nodes.values():
            for key, value in node.stats.counters.items():
                if key.startswith("topo_") and value:
                    out[key] = out.get(key, 0) + value
        return out

    def replicas_digest(self, shard_id: str) -> List[str]:
        return [
            self.nodes[host].shard.digest()
            for host in self.catalog.replicas_of(shard_id)
            if host in self.nodes
        ]

    def total_stretches(self) -> int:
        return sum(n.dclock.stretch_count for n in self.nodes.values())

    def executed_counts(self) -> Dict[str, int]:
        return {h: len(n.executed_log) for h, n in self.nodes.items()}
