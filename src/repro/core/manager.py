"""The DAST region manager (§4.3, §4.4).

Each region has one active manager that

* **anticipates** a future timestamp for every CRT touching the region,
  based on an estimated RTT to the coordinator's region, and dispatches the
  CRT to the participating nodes in its region (2DA phase 1);
* occupies an entry in every node's PCT ``max_ts`` array: its clock report
  is floored below the smallest *pending* (anticipated, not yet resolved)
  CRT timestamp, closing the dispatch-window race in Lemma 1;
* drives **fast failover** (removing suspected nodes, Algorithm 3) and
  **asynchronous recovery** (adding replicas back, Algorithm 4);
* replicates its off-critical-path state (view id and membership) to the
  region's SMR service; its dclock and pending-CRT list are deliberately
  *not* replicated — the takeover protocol reconstructs safe bounds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.clock.dclock import DClock
from repro.clock.hlc import Timestamp, ZERO_TS, just_below
from repro.config import TimingConfig, Topology
from repro.consensus.smr import SmrCluster
from repro.errors import RpcTimeout
from repro.sim.clocks import ClockSource
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.rpc import Endpoint, RpcRemoteError
from repro.storage.catalog import Catalog
from repro.util import Stats
from repro.wire.messages import (
    AbortCrt,
    AddCommit,
    AddPrep,
    CrtExecuted,
    CrtUpdate,
    MgrTakeover,
    PctReport,
    PrepCrt,
    PrepRemote,
    RemoveCommit,
    RemovePrep,
    Suspect,
    TransferCkpt,
)
from repro.wire.schema import WireMessage

__all__ = ["DastManager", "RttEstimator"]


class RttEstimator:
    """EWMA round-trip estimate per peer region (the paper's "average RTT of
    recent communication"), seeded with a configured default."""

    def __init__(self, default_rtt: float, alpha: float = 0.3):
        self.default_rtt = default_rtt
        self.alpha = alpha
        self._estimates: Dict[str, float] = {}
        self._minimums: Dict[str, float] = {}

    def update(self, region: str, sample: float) -> None:
        sample = max(0.1, sample)
        current = self._estimates.get(region)
        if current is None:
            self._estimates[region] = sample
        else:
            self._estimates[region] = (1 - self.alpha) * current + self.alpha * sample
        if sample < self._minimums.get(region, float("inf")):
            self._minimums[region] = sample

    def estimate(self, region: str) -> float:
        return self._estimates.get(region, self.default_rtt)

    def min_estimate(self, region: str) -> float:
        """Queue-free base RTT, for clock calibration.

        Calibrating with the EWMA estimate is unstable: queueing inflates
        samples, the inflated slack pushes the clock ahead of real time,
        which inflates the next samples further.  The running minimum
        tracks the propagation delay and cannot self-inflate; undershoot
        merely makes calibration a no-op (the offset never decreases).
        """
        return self._minimums.get(region, self.default_rtt)


class _PendingCrt:
    __slots__ = ("txn", "coord", "anticipated", "created_at")

    def __init__(self, txn, coord: str, anticipated: Timestamp, created_at: float):
        self.txn = txn
        self.coord = coord
        self.anticipated = anticipated
        self.created_at = created_at


class DastManager:
    """One region's (active or standby) manager."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        topology: Topology,
        catalog: Catalog,
        timing: TimingConfig,
        host: str,
        region: str,
        clock_source: ClockSource,
        nid: int,
        smr: Optional[SmrCluster] = None,
        active: bool = True,
    ):
        self.sim = sim
        self.network = network
        self.topology = topology
        self.catalog = catalog
        self.timing = timing
        self.host = host
        self.region = region
        self.nid = nid
        self.smr = smr
        self.active = active
        self.vid = 0
        self.endpoint = Endpoint(
            sim, network, host, region,
            service_time=timing.service_time,
            batch_window=timing.batch_window,
        )
        self.pending: Dict[str, _PendingCrt] = {}
        self.rtt = RttEstimator(default_rtt=timing.cross_region_rtt)
        self.dclock = DClock(clock_source, nid, floor_fn=self._pending_floor)
        self.members: List[str] = topology.nodes_in_region(region)
        self.removed: Set[str] = set()
        self.stats = Stats()
        self._last_anticipated = ZERO_TS
        # Ablation switch: with anticipation off, CRTs are bound to the
        # manager's current time instead of one estimated RTT in the future
        # (the §3.2 strawman).
        self.anticipation_enabled = True
        self.tracer = None  # optional repro.sim.trace.Tracer
        self._running = False
        ep = self.endpoint
        ep.register("prep_remote", self.on_prep_remote)
        ep.register("crt_update", self.on_crt_update)
        ep.register("crt_executed", self.on_crt_executed, cheap=True)
        ep.register("abort_crt", self.on_abort_crt)
        ep.register("pct_report", self.on_pct_report, cheap=True)
        ep.register("suspect", self.on_suspect)

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.spawn(self._report_loop(), name=f"{self.host}.report")

    def stop(self) -> None:
        self._running = False

    def _report_loop(self):
        while self._running:
            yield self.sim.timeout(self.timing.pct_interval)
            if not self.active:
                continue
            value = self.dclock.tick()
            floor = self._pending_floor()
            if floor is not None and value >= floor:
                # Enforce the anticipation promise on reports even if the
                # clock overshot a late-arriving pending entry.
                value = just_below(floor)
            for node in self.members:
                self.endpoint.send(node, PctReport(value=value))
            self._gc_pending()

    def _pending_floor(self) -> Optional[Timestamp]:
        if not self.pending:
            return None
        return min(p.anticipated for p in self.pending.values())

    def _gc_pending(self) -> None:
        """Drop pending entries long past their anticipated time.

        Safe once participants certainly hold their own waitQ floors (they
        do within one intra-region delivery of the dispatch); generously
        waiting several cross-region RTTs costs nothing.
        """
        horizon = self.dclock.physical() - 10 * self.timing.cross_region_rtt
        stale = [tid for tid, p in self.pending.items() if p.anticipated.time < horizon]
        for tid in stale:
            self.pending.pop(tid, None)
            self.stats.inc("pending_gc")

    # ------------------------------------------------------------------
    # 2DA phase 1: anticipate and dispatch (Algorithm 2, lines 10-15)
    # ------------------------------------------------------------------
    def on_prep_remote(self, src: str, payload: PrepRemote):
        txn = payload.txn
        src_ts: Timestamp = payload.src_ts
        coord = payload.coord
        src_region = self.topology.region_of_node(coord)
        entry = self.pending.get(txn.txn_id)
        if entry is None:
            # updateEstimatedRtt: one-way delay observed via physical clock
            # tags, doubled.  Clock skew pollutes this deliberately — that is
            # the Fig 10 behaviour.
            phys_tag = payload.phys if payload.phys is not None else src_ts.time
            sample = 2.0 * (self.dclock.physical() - phys_tag)
            if src_region != self.region:
                self.rtt.update(src_region, sample)
                # Cross-region calibration (§4.3), with the queue-free
                # minimum RTT: see RttEstimator.min_estimate.
                self.dclock.calibrate_to_time(
                    phys_tag, slack=self.rtt.min_estimate(src_region) / 2.0
                )
            if self.anticipation_enabled:
                anticipated_time = (
                    self.dclock.physical()
                    + self.rtt.estimate(src_region)
                    + self.timing.anticipation_margin
                )
            else:
                anticipated_time = self.dclock.physical()
            # Unique sub-microsecond "lane" per issuing entity: no two
            # distinct CRT timestamps may share a `.time` coordinate, or a
            # clock frozen below one CRT's floor could never pass another
            # CRT that happens to sit at the same physical time (a cross-
            # region execution deadlock).
            anticipated_time += (self.nid + 1) * 1e-7
            if anticipated_time <= self._last_anticipated.time:
                anticipated_time = self._last_anticipated.time + 1e-3
            anticipated = Timestamp(anticipated_time, 0, self.nid)
            self._last_anticipated = anticipated
            entry = _PendingCrt(txn, coord, anticipated, self.sim.now)
            self.pending[txn.txn_id] = entry
            if self.tracer is not None:
                self.tracer.emit(self.sim.now, self.host, "anticipate",
                                 txn=txn.txn_id, ts=str(anticipated), coord=coord)
            self.stats.inc("crt_anticipated")
        # Dispatch (idempotently re-dispatch on coordinator retry).
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, self.host, "dispatch",
                             txn=txn.txn_id, ts=str(entry.anticipated))
        for node in self._local_participants(txn):
            self.endpoint.send(
                node,
                PrepCrt(
                    txn=txn,
                    anticipated_ts=entry.anticipated,
                    coord=coord,
                    vid=self.vid,
                    clock_tag=self.dclock.peek(),
                ),
            )
        return {"anticipated_ts": entry.anticipated}

    def _local_participants(self, txn) -> List[str]:
        nodes: List[str] = []
        for shard in txn.shard_ids:
            if self.catalog.region_of_shard(shard) == self.region:
                nodes.extend(self.catalog.replicas_of(shard))
        return sorted(set(nodes))

    # ------------------------------------------------------------------
    # Pending resolution
    # ------------------------------------------------------------------
    def on_crt_update(self, src: str, payload: CrtUpdate):
        self.pending.pop(payload.txn_id, None)
        return {"node": self.host}

    def on_crt_executed(self, src: str, payload: CrtExecuted) -> None:
        self.pending.pop(payload.txn_id, None)

    def on_abort_crt(self, src: str, payload: AbortCrt):
        self.pending.pop(payload.txn_id, None)
        return {"node": self.host}

    def on_pct_report(self, src: str, payload: PctReport) -> None:
        # Managers use node reports only to keep their clock calibrated.
        self.dclock.observe(payload.value)
        self.dclock.calibrate_to_time(payload.value.time)

    # ------------------------------------------------------------------
    # Fast failover: removing suspected nodes (Algorithm 3)
    # ------------------------------------------------------------------
    def on_suspect(self, src: str, payload: Suspect):
        node = payload.node
        if node in self.removed or node not in self.members:
            return {"ok": True}
        return self.remove_nodes([node])

    def _member_timeout(self, dst: str) -> float:
        """Per-destination call timeout: members are intra-region except
        during an elastic shard move (repro.topo), when migrating replicas
        in the destination region are temporarily members here — an
        intra-region timeout would expire before their one-way delay and
        retransmit forever."""
        if self.topology.region_of_node(dst) == self.region:
            return 4 * self.timing.intra_region_rtt
        return 4 * self.timing.cross_region_rtt

    def _reliable(self, dst: str, msg: WireMessage,
                  timeout: Optional[float] = None) -> None:
        """Retransmit until acknowledged: view commits and aborts are
        decisions — a node that misses one keeps a removed member in its
        PCT table and wedges its watermark forever.  Gives up only when the
        destination is down/removed or this manager lost its mandate."""
        timeout = timeout or self._member_timeout(dst)

        def proc():
            while True:
                try:
                    yield self.endpoint.call(dst, msg, timeout=timeout)
                    return
                except (RpcTimeout, RpcRemoteError):
                    self.stats.inc("retransmissions")
                    if self.network.is_down(dst) or dst in self.removed or not self.active:
                        return

        self.sim.spawn(proc(), name=f"{self.host}.reliable.{msg.NAME}")

    def remove_nodes(self, to_remove: List[str]):
        """Generator: run the 2PC that installs a view without ``to_remove``."""
        to_remove = list(to_remove)

        def proc():
            self.removed |= set(to_remove)
            self.members = [m for m in self.members if m not in set(to_remove)]
            self.vid += 1
            pend_irts: Dict[str, dict] = {}
            pend_crts: Dict[str, dict] = {}
            remaining = list(self.members)
            for node in remaining:
                while True:
                    try:
                        reply = yield self.endpoint.call(
                            node,
                            RemovePrep(vid=self.vid, to_remove=to_remove),
                            timeout=self._member_timeout(node),
                        )
                        break
                    except (RpcTimeout, RpcRemoteError):
                        if self.network.is_down(node):
                            # Cascading failure: recurse per Algorithm 3 L18.
                            yield self.sim.spawn(self.remove_nodes([node]))
                            reply = None
                            break
                if reply is None:
                    continue
                for entry in reply["pend_irts"]:
                    pend_irts[entry["txn_id"]] = entry
                for entry in reply["pend_crts"]:
                    prev = pend_crts.get(entry["txn_id"])
                    if prev is None or (entry["committed"] and not prev["committed"]):
                        pend_crts[entry["txn_id"]] = entry
            # Policy (§4.4): commit IRTs seen by >= 1 node; abort CRTs unless
            # some node already saw their commit decision.
            commit_irts = list(pend_irts.values())
            abort_crts = [e for e in pend_crts.values() if not e["committed"]]
            commit_crts = [e for e in pend_crts.values() if e["committed"]]
            if self.smr is not None:
                yield self.sim.spawn(
                    self.smr.put_from(
                        self.endpoint,
                        "view",
                        {"vid": self.vid, "members": list(self.members), "manager": self.host},
                    )
                )
            msg = RemoveCommit(
                vid=self.vid,
                removed=to_remove,
                members=list(self.members),
                commit_irts=commit_irts,
                abort_crts=abort_crts,
                commit_crts=commit_crts,
            )
            for node in self.members:
                self._reliable(node, msg)
            # Tell remote participants (and their managers) about aborts.
            for entry in abort_crts:
                txn = entry["txn"]
                for shard in txn.shard_ids:
                    region = self.catalog.region_of_shard(shard)
                    if region == self.region:
                        continue
                    self._reliable(
                        self.managers_of(region), AbortCrt(txn_id=entry["txn_id"]),
                        timeout=4 * self.timing.cross_region_rtt,
                    )
                    for node in self.catalog.replicas_of(shard):
                        self._reliable(
                            node, AbortCrt(txn_id=entry["txn_id"]),
                            timeout=4 * self.timing.cross_region_rtt,
                        )
            self.stats.inc("views_installed")
            return {
                "ok": True,
                "vid": self.vid,
                "committed_irts": len(commit_irts),
                "aborted_crts": len(abort_crts),
            }

        return proc()

    def managers_of(self, region: str) -> str:
        directory = getattr(self, "managers", None)
        if directory:
            return directory.get(region, self.topology.manager_of(region))
        return self.topology.manager_of(region)

    # ------------------------------------------------------------------
    # Asynchronous recovery: adding a replica (Algorithm 4)
    # ------------------------------------------------------------------
    def add_replica(self, new_node: str, shard_id: str, donor: Optional[str] = None):
        """Generator: checkpoint-transfer then fake-CRT view install."""

        def proc():
            source = donor or self.catalog.replicas_of(shard_id)[0]
            # The donor's reply waits on its InstallCkpt hop to the new
            # node; when that hop is cross-region (elastic shard move) the
            # donor call needs the cross-region budget on top.
            ckpt_timeout = 20 * self.timing.intra_region_rtt
            if self.topology.region_of_node(new_node) != self.region:
                ckpt_timeout += 4 * self.timing.cross_region_rtt
            while True:
                try:
                    reply = yield self.endpoint.call(
                        source,
                        TransferCkpt(node=new_node, shard=shard_id),
                        timeout=ckpt_timeout,
                    )
                    break
                except (RpcTimeout, RpcRemoteError):
                    self.stats.inc("retransmissions")
                    if self.network.is_down(source):
                        live = [
                            n for n in self.catalog.replicas_of(shard_id)
                            if not self.network.is_down(n)
                        ]
                        if not live:
                            raise
                        source = live[0]
            ts_ckpt = reply
            # Anticipate when the new view will be installed; conservative
            # slack is fine — admission is off the critical path.  The
            # horizon scales with the slowest member round-trip (cross-
            # region when a shard move has migrating replicas in the view).
            horizon = max(
                [self._member_timeout(n) for n in self.members + [new_node]],
                default=4 * self.timing.intra_region_rtt,
            )
            ts_ins = Timestamp(
                self.dclock.physical() + horizon + 10.0, 0, self.nid
            )
            if self.smr is not None:
                yield self.sim.spawn(
                    self.smr.put_from(
                        self.endpoint,
                        f"add:{new_node}",
                        {"ts_ins": ts_ins, "shard": shard_id},
                    )
                )
            self.vid += 1
            targets = list(self.members)
            if new_node not in targets:
                targets.append(new_node)
            for node in targets:
                while True:
                    try:
                        yield self.endpoint.call(
                            node,
                            AddPrep(vid=self.vid, node=new_node, ts_ins=ts_ins),
                            timeout=self._member_timeout(node),
                        )
                        break
                    except (RpcTimeout, RpcRemoteError):
                        self.stats.inc("retransmissions")
                        if self.network.is_down(node):
                            break
            self.members = targets
            msg = AddCommit(
                vid=self.vid,
                node=new_node,
                ts_ins=ts_ins,
                members=list(self.members),
                shard=shard_id,
            )
            for node in targets:
                self._reliable(node, msg)
            self.stats.inc("replicas_added")
            return {"ok": True, "ts_ins": ts_ins, "ts_ckpt": ts_ckpt}

        return proc()

    # ------------------------------------------------------------------
    # Manager takeover (standby -> active)
    # ------------------------------------------------------------------
    def takeover(self):
        """Generator: become the active manager after the old one failed."""

        def proc():
            self.vid += 1
            max_seen = ZERO_TS
            best_view = None
            for node in list(self.members):
                while True:
                    try:
                        reply = yield self.endpoint.call(
                            node, MgrTakeover(vid=self.vid),
                            timeout=self._member_timeout(node),
                        )
                        break
                    except (RpcTimeout, RpcRemoteError):
                        # A node that misses the takeover would keep
                        # reporting to the dead manager and wedge its own
                        # PCT watermark: retry until it answers or dies.
                        self.stats.inc("retransmissions")
                        if self.network.is_down(node):
                            reply = None
                            break
                if reply is None:
                    continue
                for key in ("mgr_max_ts", "my_clock"):
                    if reply[key] > max_seen:
                        max_seen = reply[key]
                view = reply.get("view")
                if view is not None and (best_view is None or view["vid"] > best_view["vid"]):
                    best_view = view
            # Adopt the freshest membership seen by any live node: removals
            # that happened while we were standby are invisible to us.
            if best_view is not None:
                self.removed |= set(best_view["removed"])
                self.members = [m for m in best_view["members"] if m not in self.removed]
                self.vid = max(self.vid, best_view["vid"] + 1)
            # Monotonicity of anticipated timestamps across failovers (§4.5).
            self.dclock.jump_to(max_seen)
            self._last_anticipated = max(self._last_anticipated, max_seen)
            self.active = True
            if self.smr is not None:
                yield self.sim.spawn(
                    self.smr.put_from(
                        self.endpoint,
                        "view",
                        {"vid": self.vid, "members": list(self.members), "manager": self.host},
                    )
                )
            self.start()
            return {"ok": True, "vid": self.vid, "clock": self.dclock.peek()}

        return proc()
