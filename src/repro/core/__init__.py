"""DAST: the paper's primary contribution (2DA + stretchable clock + PCT)."""

from repro.core.failure_detector import FailureDetector
from repro.core.manager import DastManager, RttEstimator
from repro.core.node import DastNode
from repro.core.records import ReadyQueue, TxnRecord, TxnStatus, WaitQueue
from repro.core.system import DastSystem

__all__ = [
    "DastManager",
    "DastNode",
    "DastSystem",
    "FailureDetector",
    "ReadyQueue",
    "RttEstimator",
    "TxnRecord",
    "TxnStatus",
    "WaitQueue",
]
