"""Coordinator-side logic of DAST (Algorithms 1 and 2).

In DAST every node can act as a coordinator: the node a client submits to
coordinates that transaction.  This mixin holds the coordination state
machine; the node base class (``repro.core.node``) provides messaging,
queues, the dclock, and execution.

IRT (Algorithm 1): assign the latest timestamp via ``CreateTs`` (the
stretchable dclock), collect majority ACKs per participating shard, commit.

CRT (Algorithm 2, "2DA"): replicate locally for failover retrieval, send
``prep-remote`` to every participating region's manager, collect per-shard
majority ACKs carrying anticipated timestamps, commit at the maximum
anticipated timestamp.  No conflict ever aborts the CRT (R2).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.clock.hlc import Timestamp
from repro.txn.model import Transaction
from repro.txn.result import TxnResult
from repro.wire.messages import (
    CrtAck,
    CrtCommit,
    CrtCommitlog,
    CrtLocallog,
    ExecDone,
    IrtCommit,
    IrtPrepare,
    PrepRemote,
    Submit,
)

__all__ = ["CoordState", "CoordinatorMixin"]


class CoordState:
    """Coordinator bookkeeping for one in-flight transaction."""

    def __init__(self, txn: Transaction, client: str, is_crt: bool):
        self.txn = txn
        self.client = client
        self.is_crt = is_crt
        self.ts: Optional[Timestamp] = None  # IRT ts / CRT srcTs
        self.commit_ts: Optional[Timestamp] = None
        self.acks: Dict[str, Set[str]] = {s: set() for s in txn.shard_ids}
        self.anticipated: Dict[str, Timestamp] = {}  # region -> anticipated ts
        self.exec_done: Dict[str, ExecDone] = {}  # shard -> first exec report
        self.prepared_event = None  # set by the coordinator process
        self.done_event = None
        self.replied = False
        # Phase stamps (virtual ms).
        self.t_submit = 0.0
        self.t_local_prepared = 0.0
        self.t_prepared = 0.0
        self.t_commit_sent = 0.0
        self.t_replied = 0.0

    def all_prepared(self, quorum_of) -> bool:
        return all(len(self.acks[s]) >= quorum_of(s) for s in self.txn.shard_ids)

    def all_executed(self) -> bool:
        return all(s in self.exec_done for s in self.txn.shard_ids)


class CoordinatorMixin:
    """Requires the host class to provide node state; see DastNode."""

    # ------------------------------------------------------------------
    # Entry point: a client submitted a transaction to this node
    # ------------------------------------------------------------------
    def on_submit(self, src: str, payload: "Submit"):
        txn = payload.txn
        frozen = self.catalog.frozen_shards
        if frozen and not frozen.isdisjoint(txn.shard_ids):
            # A touched shard is mid-reshard (repro.topo): park until the
            # move's drain window closes, then coordinate (or bounce, if
            # this node retired with the move).
            return self._submit_after_thaw(src, payload)
        if self.host not in self.catalog.replicas_of(self.shard_id):
            # This node retired with a reshard while the Submit was in
            # flight: it can no longer commit anything (its report loop is
            # stopped and acks addressed to it go nowhere), so coordinating
            # would wedge the transaction forever.  Bounce benignly; the
            # client's next submission resolves the shard's new home.
            self.stats.inc("topo_bounced_submits")
            if self.tracer is not None:
                self._trace("bounced_submit", txn=txn.txn_id)
            return TxnResult(
                txn.txn_id, txn.txn_type, committed=False, is_crt=False,
                outputs={}, abort_reason="", phases={},
            )
        txn.home_region = self.region
        regions = sorted({self.catalog.region_of_shard(s) for s in txn.shard_ids})
        txn.participating_regions = tuple(regions)
        is_crt = len(regions) > 1 or regions[0] != self.region
        state = CoordState(txn, src, is_crt)
        state.t_submit = self.sim.now
        self.coordinating[txn.txn_id] = state
        if is_crt:
            return self._coordinate_crt(state)
        return self._coordinate_irt(state)

    def _submit_after_thaw(self, src: str, payload: "Submit"):
        """Generator: poll the freeze set, then coordinate normally.

        If this node retired while the submission was parked (its shard
        moved away with the reshard), reply with a benign abort — the
        workload counts it as a completion, not a conflict, and the
        client's next submission routes to the shard's new home."""
        txn = payload.txn
        frozen = self.catalog.frozen_shards
        while not frozen.isdisjoint(txn.shard_ids):
            yield self.sim.timeout(self.timing.intra_region_rtt)
        if self.host not in self.catalog.replicas_of(self.shard_id):
            self.stats.inc("topo_parked_aborts")
            if self.tracer is not None:
                self._trace("parked_abort", txn=txn.txn_id)
            return TxnResult(
                txn.txn_id, txn.txn_type, committed=False, is_crt=False,
                outputs={}, abort_reason="", phases={},
            )
        result = self.on_submit(src, payload)
        if hasattr(result, "send"):
            result = yield from result
        return result

    # ------------------------------------------------------------------
    # Algorithm 1: IRT
    # ------------------------------------------------------------------
    def _coordinate_irt(self, state: CoordState):
        txn = state.txn
        ts = self.dclock.tick()
        state.ts = ts
        state.t_local_prepared = self.sim.now
        if self.tracer is not None:
            self._trace("irt_ts", txn=txn.txn_id, ts=str(ts))
        state.prepared_event = self.sim.event()
        participants = self._participants_of(txn)
        # Insert our own record synchronously: nothing this node does later
        # may execute past ts without seeing this transaction.
        if self.host in participants:
            self._prepare_local_irt(txn, ts)
            self._record_ack(state, self.host, shard=self.shard_id)
        for node in participants:
            if node == self.host:
                continue
            self._reliable(
                node,
                IrtPrepare(txn=txn, ts=ts, coord=self.host, vid=self.vid),
                obligation_ts=ts,
                on_ack=lambda v, st=state, n=node: self._record_ack(
                    st, n, shard=(v or {}).get("shard")
                ),
            )
        yield state.prepared_event
        state.t_prepared = self.sim.now
        if self.tracer is not None:
            self._trace("irt_prepared", txn=txn.txn_id)
        state.commit_ts = ts
        self._commit_local(txn.txn_id, ts)
        state.t_commit_sent = self.sim.now
        for node in participants:
            if node == self.host:
                continue
            self._reliable(node, IrtCommit(txn_id=txn.txn_id, ts=ts, vid=self.vid))
        state.done_event = self.sim.event()
        if not state.all_executed():
            yield state.done_event
        return self._finish(state)

    # ------------------------------------------------------------------
    # Algorithm 2: CRT (2DA)
    # ------------------------------------------------------------------
    def _coordinate_crt(self, state: CoordState):
        txn = state.txn
        self.stats.inc("crt_started")
        # Phase 0: replicate the CRT inside the home region so the manager
        # can retrieve coordination progress if this node crashes (§4.4).
        home_shards = [
            s for s in txn.shard_ids if self.catalog.region_of_shard(s) == self.region
        ]
        if home_shards:
            yield self._replicate_home(txn, home_shards)
        state.t_local_prepared = self.sim.now

        # Phase 1: decentralized anticipation via each region's manager.
        src_ts = self.dclock.tick()
        state.ts = src_ts
        if self.tracer is not None:
            self._trace("crt_src_ts", txn=txn.txn_id, ts=str(src_ts))
        state.prepared_event = self.sim.event()

        # Note: if we participate, our own ACK arrives via our region's
        # manager dispatch like any other participant's.
        def send_prep() -> None:
            for region in txn.participating_regions:
                self._reliable(
                    self.managers[region],
                    PrepRemote(txn=txn, src_ts=src_ts, coord=self.host,
                               vid=self.vid, phys=self.dclock.physical()),
                    timeout=self._cross_timeout(),
                )

        send_prep()
        # `prep_remote` itself is reliable, but the manager's `prep_crt`
        # fan-out and the participants' `crt_ack` replies travel one-way; a
        # drop or mid-flight crash on either hop would wedge this CRT in
        # every waitQ forever.  Re-driving prep_remote recovers: managers
        # re-dispatch idempotently (same anticipated ts) and participants
        # unconditionally re-ack.
        self.sim.spawn(
            self._reprep_watchdog(state, send_prep),
            name=f"{self.host}.reprep.{txn.txn_id}",
        )
        yield state.prepared_event
        state.t_prepared = self.sim.now
        if self.tracer is not None:
            self._trace("crt_prepared", txn=txn.txn_id)

        # Phase 2: commit strictly above the max anticipated timestamp, on a
        # fresh `.time` coordinate: the coordinator-nid lane plus a local
        # monotone guard keeps commit timestamps globally unique in time, so
        # no clock frozen at another CRT's floor can deadlock against this
        # one (see the lane comment in DastManager.on_prep_remote).
        max_anticipated = max(list(state.anticipated.values()) + [self.dclock.tick()])
        commit_time = max_anticipated.time + (self.nid + 1) * 1e-7
        last_commit = getattr(self, "_last_commit_time", 0.0)
        if commit_time <= last_commit:
            commit_time = last_commit + 1e-7
        self._last_commit_time = commit_time
        commit_ts = Timestamp(commit_time, max_anticipated.frac, self.nid)
        state.commit_ts = commit_ts
        # Replicate the commit decision locally (async, off the critical path).
        if home_shards:
            for shard in home_shards:
                for node in self.catalog.replicas_of(shard):
                    if node != self.host:
                        self.endpoint.send(
                            node, CrtCommitlog(txn_id=txn.txn_id, commit_ts=commit_ts)
                        )
        state.t_commit_sent = self.sim.now
        commit_msg = CrtCommit(
            txn_id=txn.txn_id,
            txn=txn,
            coord=self.host,
            commit_ts=commit_ts,
            phys_tag=self.dclock.physical(),
        )
        for node in self._participants_of(txn):
            if node == self.host:
                self.on_crt_commit(self.host, commit_msg)
            else:
                self._reliable(node, commit_msg, timeout=self._cross_timeout())
        state.done_event = self.sim.event()
        if not state.all_executed():
            yield state.done_event
        return self._finish(state)

    def _reprep_watchdog(self, state: CoordState, send_prep):
        while not state.prepared_event.triggered:
            yield self.sim.timeout(self._cross_timeout())
            if state.prepared_event.triggered or not self._running:
                return
            if state.txn.txn_id not in self.coordinating:
                return
            self.stats.inc("crt_prep_retries")
            send_prep()

    def _replicate_home(self, txn: Transaction, home_shards: List[str]):
        """Majority-replicate ``txn`` to home-region participating shards."""
        event = self.sim.event()
        pending = {s: set() for s in home_shards}
        done = [False]
        log_msg = CrtLocallog(txn=txn, coord=self.host)

        def on_ack(shard: str, node: str) -> None:
            if done[0]:
                return
            pending[shard].add(node)
            if all(len(pending[s]) >= self._quorum(s) for s in home_shards):
                done[0] = True
                event.succeed(None)

        for shard in home_shards:
            for node in self.catalog.replicas_of(shard):
                if node == self.host:
                    self.on_crt_locallog(self.host, log_msg)
                    on_ack(shard, self.host)
                else:
                    self._reliable(
                        node,
                        log_msg,
                        on_ack=lambda _v, s=shard, n=node: on_ack(s, n),
                    )
        return event

    # ------------------------------------------------------------------
    # ACK and exec-done collection
    # ------------------------------------------------------------------
    def _record_ack(self, state: CoordState, node: str, shard: Optional[str] = None,
                    anticipated: Optional[Timestamp] = None, region: Optional[str] = None) -> None:
        if shard is None:
            # Fall back to the catalog (dynamically added replicas are not
            # in the static topology's node->shard map).
            shards = self.catalog.shards_on_node(node)
            shard = shards[0] if shards else None
        if shard is None:
            return
        if shard in state.acks:
            state.acks[shard].add(node)
        if anticipated is not None and region is not None:
            prev = state.anticipated.get(region)
            if prev is None or anticipated > prev:
                state.anticipated[region] = anticipated
        if (
            state.prepared_event is not None
            and not state.prepared_event.triggered
            and state.all_prepared(self._quorum)
            and (not state.is_crt or set(state.anticipated) >= set(state.txn.participating_regions))
        ):
            state.prepared_event.succeed(None)

    def on_crt_ack(self, src: str, payload: CrtAck) -> None:
        """A participant acknowledged ``prep-crt`` (sent directly to us)."""
        state = self.coordinating.get(payload.txn_id)
        if state is None:
            return
        # Cross-region clock calibration (§4.3): chase the sender's clock.
        # Tags are *physical* readings — a stretched logical value may sit at
        # a far-future anticipated timestamp and would drag clocks ahead.
        tag = payload.phys_tag
        if tag is not None and payload.region != self.region:
            # Zero slack to avoid the jitter ratchet; see on_crt_commit.
            self.dclock.calibrate_to_time(tag, slack=0.0)
        self._record_ack(
            state,
            payload.node,
            shard=payload.shard,
            anticipated=payload.anticipated_ts,
            region=payload.region,
        )

    def on_exec_done(self, src: str, payload: ExecDone) -> None:
        state = self.coordinating.get(payload.txn_id)
        if state is None or state.replied:
            return
        shard = payload.shard
        if shard not in state.exec_done:
            state.exec_done[shard] = payload
        if state.done_event is not None and not state.done_event.triggered and state.all_executed():
            state.done_event.succeed(None)

    # ------------------------------------------------------------------
    # Reply to the client
    # ------------------------------------------------------------------
    def _finish(self, state: CoordState) -> TxnResult:
        state.replied = True
        state.t_replied = self.sim.now
        if self.tracer is not None:
            self._trace("coord_reply", txn=state.txn.txn_id, crt=state.is_crt)
        outputs: Dict[str, Any] = {}
        aborted = False
        reason = ""
        for report in state.exec_done.values():
            outputs.update(report.outputs)
            if report.aborted:
                aborted = True
                reason = report.reason or "conditional abort"
        result = TxnResult(
            state.txn.txn_id,
            state.txn.txn_type,
            committed=not aborted,
            is_crt=state.is_crt,
            outputs=outputs,
            abort_reason=reason,
            phases=self._phases_of(state),
        )
        self.stats.inc("crt_committed" if state.is_crt else "irt_committed")
        self.coordinating.pop(state.txn.txn_id, None)
        return result

    def _phases_of(self, state: CoordState) -> Dict[str, float]:
        phases = {
            "local_prepare": state.t_local_prepared - state.t_submit,
            "remote_prepare": max(0.0, state.t_prepared - state.t_local_prepared),
            "has_dep": 1.0 if state.txn.has_value_dependency() else 0.0,
        }
        # Critical path: the last shard to report execution.  The post-commit
        # wait splits into waiting for this transaction's own pushed inputs
        # (``wait_input``) and the residual readyQ/clock wait (``wait_exec``),
        # mirroring Table 3's phase semantics.
        last = max(state.exec_done.values(), key=lambda r: r.phases[3], default=None)
        if last is not None:
            t_committed, t_order, t_input, t_executed = last.phases
            wait_total = max(0.0, t_executed - t_committed)
            wait_input = min(wait_total, max(0.0, t_input - t_committed))
            wait_exec = wait_total - wait_input
            tail = state.t_replied - state.t_commit_sent
            phases["wait_exec"] = wait_exec
            phases["wait_input"] = wait_input
            phases["wait_output"] = max(0.0, tail - wait_exec - wait_input)
        return phases

    # ------------------------------------------------------------------
    # Helpers provided for both algorithms
    # ------------------------------------------------------------------
    def _participants_of(self, txn: Transaction) -> List[str]:
        out: List[str] = []
        for shard in txn.shard_ids:
            out.extend(self.catalog.replicas_of(shard))
        return sorted(set(out))

    def _quorum(self, shard: str) -> int:
        return self.catalog.shard(shard).quorum_size

    def _cross_timeout(self) -> float:
        return max(4 * self.timing.cross_region_rtt, 100.0)

    def _rtt_guess(self, region: str) -> float:
        return (
            self.timing.intra_region_rtt
            if region == self.region
            else self.timing.cross_region_rtt
        )
