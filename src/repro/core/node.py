"""A DAST edge node: one shard replica + coordinator role (§4.2, §4.3).

The node owns:

* a **stretchable dclock** whose floor is the minimum of its waitQ,
* the **readyQ/waitQ** pair of Algorithm 1/2,
* the **PCT** state: ``max_ts`` per intra-region member (peers + manager),
  advanced by periodic clock reports,
* an **obligation ledger**: while a message that a peer must see before its
  ``max_ts`` passes some timestamp is unacknowledged, reports to that peer
  are capped just below that timestamp.  This implements the paper's
  "delivered notification timestamp" (``notifiedTs``) mechanism and is what
  makes Lemma 1 hold under message loss and reordering.

Execution is strictly in timestamp order: the readyQ head runs only when it
is committed, every member's clock has passed its timestamp, and its
cross-shard inputs have arrived (the push mechanism of §4.1).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Set

from repro.clock.dclock import DClock
from repro.clock.hlc import Timestamp, ZERO_TS, just_below
from repro.config import TimingConfig, Topology
from repro.core.coordinator import CoordinatorMixin
from repro.core.records import ReadyQueue, TxnRecord, TxnStatus, WaitQueue
from repro.errors import RpcTimeout
from repro.sim.clocks import ClockSource
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.rpc import Endpoint, RpcRemoteError
from repro.storage.catalog import Catalog
from repro.storage.shard import Shard
from repro.txn.executor import ExpressExecutor, execute_on_shard
from repro.util import Stats
from repro.wire.messages import (
    AbortCrt,
    AddCommit,
    AddPrep,
    CrtAck,
    CrtAnnounce,
    CrtCommit,
    CrtCommitlog,
    CrtExecuted,
    CrtInputReady,
    CrtLocallog,
    CrtUpdate,
    ExecDone,
    InstallCkpt,
    IrtCommit,
    IrtPrepare,
    MgrTakeover,
    PctReport,
    PrepCrt,
    RemoveCommit,
    RemovePrep,
    ReplicaCatchup,
    SendOutput,
    TransferCkpt,
    ViewSync,
)
from repro.wire.schema import WireMessage, encode

__all__ = ["DastNode"]

# Shared empty needs-set for express IRTs (single local piece).
_NO_NEEDS = frozenset()


class DastNode(CoordinatorMixin):
    """One edge server: shard replica, PCT participant, coordinator."""

    _obl_ids = itertools.count(1)

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        topology: Topology,
        catalog: Catalog,
        timing: TimingConfig,
        host: str,
        shard: Shard,
        clock_source: ClockSource,
        nid: int,
        managers: Dict[str, str],
    ):
        self.sim = sim
        self.topology = topology
        self.catalog = catalog
        self.timing = timing
        self.host = host
        self.region = topology.region_of_node(host)
        self.shard = shard
        self.shard_id = shard.shard_id
        # Reusable zero-allocation executor for express submissions.
        self._express = ExpressExecutor(shard)
        self.nid = nid
        self.managers = managers  # region -> manager host
        self.manager = managers[self.region]
        self.vid = 0
        self.endpoint = Endpoint(
            sim, network, host, self.region,
            service_time=timing.service_time,
            batch_window=timing.batch_window,
        )

        self.wait_q = WaitQueue()
        self.ready_q = ReadyQueue()
        self.records: Dict[str, TxnRecord] = {}
        self.crt_log: Dict[str, dict] = {}  # failover-retrieval log (§4.4)
        self.executed_log: List = []  # (ts, txn_id) in execution order
        # Open-loop scale trials disable this: at millions of transactions
        # the log is pure memory growth (audits re-enable it explicitly).
        self.keep_executed_log = True
        self.dclock = DClock(clock_source, nid, floor_fn=self.wait_q.min)

        self.members: List[str] = topology.nodes_in_region(self.region)
        self.removed: Set[str] = set()
        self.max_ts: Dict[str, Timestamp] = {}
        self._obligations: Dict[str, Dict[int, Timestamp]] = {}
        self.coordinating: Dict[str, Any] = {}
        self._early_commits: Dict[str, Timestamp] = {}
        self.stats = Stats()
        self.tracer = None  # optional repro.sim.trace.Tracer
        self._running = False
        self._register_handlers()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _register_handlers(self) -> None:
        ep = self.endpoint
        ep.register("submit", self._guard(self.on_submit))
        ep.register("irt_prepare", self._guard(self.on_irt_prepare))
        ep.register("irt_commit", self._guard(self.on_irt_commit))
        ep.register("crt_locallog", self._guard(self.on_crt_locallog))
        ep.register("crt_commitlog", self._guard(self.on_crt_commitlog))
        ep.register("prep_crt", self._guard(self.on_prep_crt))
        ep.register("crt_ack", self._guard(self.on_crt_ack))
        ep.register("crt_commit", self._guard(self.on_crt_commit))
        ep.register("crt_announce", self._guard(self.on_crt_announce), )
        ep.register("crt_update", self._guard(self.on_crt_update))
        ep.register("crt_executed", self._guard(self.on_crt_executed), cheap=True)
        ep.register("crt_input_ready", self._guard(self.on_crt_input_ready))
        ep.register("send_output", self._guard(self.on_send_output))
        ep.register("exec_done", self._guard(self.on_exec_done))
        ep.register("pct_report", self._guard(self.on_pct_report), cheap=True)
        ep.register("abort_crt", self._guard(self.on_abort_crt))
        ep.register("remove_prep", self.on_remove_prep)
        ep.register("remove_commit", self.on_remove_commit)
        ep.register("mgr_takeover", self.on_mgr_takeover)
        ep.register("transfer_ckpt", self.on_transfer_ckpt)
        ep.register("install_ckpt", self.on_install_ckpt)
        ep.register("add_prep", self.on_add_prep)
        ep.register("add_commit", self.on_add_commit)
        ep.register("replica_catchup", self.on_replica_catchup)
        ep.register("view_sync", self.on_view_sync)
        ep.register("ping", lambda src, payload: {"node": self.host}, cheap=True)

    def _trace(self, kind: str, **fields) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, self.host, kind, **fields)

    def _guard(self, handler: Callable) -> Callable:
        """Drop messages from nodes removed by a view change (§4.4)."""

        def guarded(src: str, payload):
            if src in self.removed:
                return None
            return handler(src, payload)

        return guarded

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.spawn(self._report_loop(), name=f"{self.host}.pct")

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    # PCT: clock reports and execution gating
    # ------------------------------------------------------------------
    def _report_loop(self):
        while self._running:
            yield self.sim.timeout(self.timing.pct_interval)
            self._send_reports()

    def _send_reports(self) -> None:
        value = self.dclock.tick()
        # The promise, enforced unconditionally: never report at or above
        # the waitQ floor.  Even if the local clock overshot a floor that
        # arrived late (possible under heavy skew — an anticipation can land
        # below an already-parked clock), the *reported* value stays below
        # it, so no peer executes past an unresolved CRT.
        wait_floor = self.wait_q.min()
        if wait_floor is not None and value >= wait_floor:
            value = just_below(wait_floor)
        targets = [m for m in self.members if m != self.host]
        targets.append(self.manager)
        # Uncapped reports (the common case) share one encoded frame across
        # the whole fan-out: frames are immutable snapshots, receivers decode
        # their own copies, and the byte accounting is per-send regardless.
        frame = None
        for dst in targets:
            pending = self._obligations.get(dst)
            if pending:
                floor = min(pending.values())
                if value >= floor:
                    self.endpoint.send(dst, PctReport(value=just_below(floor)))
                    continue
            if frame is None:
                frame = encode(PctReport(value=value))
            self.endpoint.send(dst, "pct_report", frame)
        self._try_execute()

    def on_pct_report(self, src: str, payload: PctReport) -> None:
        value: Timestamp = payload.value
        if value > self.max_ts.get(src, ZERO_TS):
            self.max_ts[src] = value
        # Intra-region dclock calibration (§4.2): chase the fastest clock —
        # both the logical position (observe) and the physical offset
        # (calibrate).  The offset chase is what lets a region catch up to
        # a skew-advanced manager so CRT latency recovers (Fig 10a).
        # Reported times are always <= the sender's physical reading, so
        # chasing them cannot ratchet past the fastest real clock.
        self.dclock.observe(value)
        self.dclock.calibrate_to_time(value.time)
        self._try_execute()

    def _clocks_passed(self, ts: Timestamp) -> bool:
        if self.dclock.peek() <= ts:
            self.dclock.tick()
            if self.dclock.peek() <= ts:
                return False
        for member in self.members:
            if member == self.host:
                continue
            if self.max_ts.get(member, ZERO_TS) <= ts:
                return False
        return self.max_ts.get(self.manager, ZERO_TS) > ts

    def _try_execute(self) -> None:
        # Hoisted PCT threshold: a record is peer-clock-eligible iff its ts
        # is strictly below every peer's latest report — i.e. below their
        # minimum, computed once per sweep instead of once per record.  The
        # local-clock peek/tick dance stays per record (it has the tick side
        # effect and must run in exactly the order _clocks_passed ran it).
        max_get = self.max_ts.get
        threshold = max_get(self.manager, ZERO_TS)
        host = self.host
        for member in self.members:
            if member != host:
                reported = max_get(member, ZERO_TS)
                if reported < threshold:
                    threshold = reported
        dclock = self.dclock
        while True:
            rec = self.ready_q.head()
            if rec is None:
                return
            if rec.status == TxnStatus.ABORTED:
                self.ready_q.pop_head(rec)
                continue
            if rec.status != TxnStatus.COMMITTED:
                return
            ts = rec.ts
            floor = self.wait_q.min()
            if floor is not None and ts >= floor:
                # An unresolved CRT may still commit below rec.ts: executing
                # past it would break the promise.  With stretching enabled
                # the frozen clocks enforce this implicitly; the explicit
                # check keeps safety independent of the ablation switches.
                return
            if dclock.peek() <= ts:
                dclock.tick()
                if dclock.peek() <= ts:
                    return
            if ts >= threshold:
                return
            if not rec.t_order_ready:
                rec.t_order_ready = self.sim.now
                if self.tracer is not None:
                    self._trace("ready", txn=rec.txn_id, crt=rec.is_crt)
            if not rec.input_ready():
                return  # strict timestamp order: wait for pushed inputs
            self.ready_q.pop_head(rec)
            self._execute(rec)

    def _execute(self, rec: TxnRecord) -> None:
        rec.status = TxnStatus.EXECUTED
        rec.t_executed = self.sim.now
        if self.tracer is not None:
            self._trace("execute", txn=rec.txn_id, ts=str(rec.ts), crt=rec.is_crt)
        if not rec.t_input_ready:
            rec.t_input_ready = rec.t_order_ready
        if rec.txn_id in self.wait_q:
            self.wait_q.remove(rec.txn_id)
        txn = rec.txn
        cb = rec.exec_cb
        if cb is not None and len(txn.pieces) == 1:
            # Express: sole-participant single-piece IRT with no external
            # inputs — the write-through executor skips the write buffer.
            outcome = self._express.run(txn)
        else:
            outcome = execute_on_shard(txn, self.shard_id, self.shard, rec.inputs)
        if self.keep_executed_log:
            self.executed_log.append((rec.ts, rec.txn_id))
        self.stats.inc("executed")
        if cb is not None:
            # Express completion: the submitter is in-process (the open-loop
            # engine), the transaction is a sole-participant IRT, so there
            # are no output pushes, no ExecDone hop, and no record-ledger
            # entry to drop (submit_express never registered one).  Hand the
            # outcome straight back; the _try_execute sweep that popped this
            # record continues with the next head — no tail recursion.
            cb(rec, outcome)
            return
        # Push produced values to consumer shards (the §4.1 push mechanism).
        pushes: Dict[str, Dict[str, Any]] = {}
        for var, value in outcome.outputs.items():
            for consumer_shard in txn.consumers_of(var):
                pushes.setdefault(consumer_shard, {})[var] = value
        for consumer_shard, values in pushes.items():
            for node in self.catalog.replicas_of(consumer_shard):
                if node == self.host:
                    continue
                # Reliable: a dropped output push would leave the consumer's
                # CRT input-starved in its waitQ forever.
                self._reliable(
                    node, SendOutput(txn_id=rec.txn_id, values=values),
                    timeout=self._cross_timeout(),
                )
        # Report execution to the coordinator (client output collection).
        self._reliable(
            rec.coordinator,
            ExecDone(
                txn_id=rec.txn_id,
                shard=self.shard_id,
                node=self.host,
                outputs=outcome.outputs,
                aborted=outcome.aborted,
                reason=outcome.abort_reason,
                phases=(rec.t_committed, rec.t_order_ready, rec.t_input_ready, rec.t_executed),
            ),
            timeout=self._cross_timeout(),
        )
        if rec.is_crt:
            # Let non-participants drop their waitQ floor for this CRT.
            for peer in self.members:
                if peer != self.host:
                    self.endpoint.send(peer, CrtExecuted(txn_id=rec.txn_id))
            self.endpoint.send(self.manager, CrtExecuted(txn_id=rec.txn_id))
        self._try_execute()

    # ------------------------------------------------------------------
    # Record plumbing
    # ------------------------------------------------------------------
    def _record(self, txn, is_crt: bool, coordinator: str, status: str) -> TxnRecord:
        rec = self.records.get(txn.txn_id)
        if rec is None or isinstance(rec, _AnnouncedStub):
            real = TxnRecord(txn, is_crt, coordinator, status=status)
            if rec is not None:
                real.inputs.update(rec.inputs)  # outputs that arrived early
                if rec.status == TxnStatus.ABORTED:
                    real.status = TxnStatus.ABORTED
            self.records[txn.txn_id] = real
            return real
        return rec

    def _i_participate(self, txn) -> bool:
        return self.shard_id in txn.shard_ids

    # ------------------------------------------------------------------
    # IRT handlers (Algorithm 1)
    # ------------------------------------------------------------------
    def _prepare_local_irt(self, txn, ts: Timestamp) -> None:
        """Synchronous self-prepare used by the coordinator path."""
        rec = self._record(txn, is_crt=False, coordinator=self.host, status=TxnStatus.PREPARED)
        if rec.status in (TxnStatus.EXECUTED, TxnStatus.ABORTED):
            return
        rec.participates = True
        rec.needed = txn.external_needs(self.shard_id)
        rec.t_prepared = self.sim.now
        if rec.txn_id not in self.ready_q:
            self.ready_q.insert(ts, rec)

    def submit_express(self, txn, exec_cb) -> bool:
        """Sole-participant IRT fast path for the aggregate open-loop engine.

        The caller guarantees ``txn`` touches exactly this node's shard and
        that the shard has no other replicas, so Algorithm 1 degenerates to:
        tick the dclock, self-prepare, self-commit, and let the ordinary
        readyQ/waitQ/PCT machinery execute it when every intra-region clock
        has passed its timestamp.  No RPC envelopes, timeouts, or coroutines
        are involved; ``exec_cb(rec, outcome)`` fires at execution time (the
        engine models the client-side network delays around this call).
        Returns False when the node is stopped (crashed) — the engine counts
        the submission as failed.
        """
        if not self._running:
            return False
        txn.home_region = self.region
        txn.participating_regions = (self.region,)
        ts = self.dclock.tick()
        # Inlined prepare+commit: the txn id is fresh (no existing record or
        # early-commit entry can exist) and a single local piece has no
        # external needs.  The usual post-commit ``_try_execute`` is skipped
        # because it is provably a no-op here: the fresh timestamp exceeds
        # every PCT report seen so far, so neither this record nor the head
        # (which the last report already tried) can execute before the next
        # report arrives — and ``on_pct_report`` runs the check then.
        rec = TxnRecord(txn, is_crt=False, coordinator=self.host,
                        status=TxnStatus.COMMITTED)
        rec.exec_cb = exec_cb
        rec.participates = True
        rec.needed = _NO_NEEDS
        now = self.sim.now
        rec.t_prepared = now
        rec.t_committed = now
        # Express records live only in the readyQ: nothing ever looks them
        # up by id (no output pushes, no aborts, no recovery — they are
        # committed on arrival and gone at execution), so the records
        # ledger is skipped entirely.
        self.ready_q.insert(ts, rec)
        return True

    def on_irt_prepare(self, src: str, payload: IrtPrepare):
        txn, ts = payload.txn, payload.ts
        rec = self._record(txn, is_crt=False, coordinator=payload.coord, status=TxnStatus.PREPARED)
        if rec.status == TxnStatus.ABORTED:
            return None
        if self.tracer is not None:
            self._trace("irt_prepare", txn=txn.txn_id, ts=str(ts), coord=payload.coord)
        rec.participates = True
        rec.needed = txn.external_needs(self.shard_id)
        rec.t_prepared = self.sim.now
        if rec.txn_id not in self.ready_q and rec.status != TxnStatus.EXECUTED:
            self.ready_q.insert(ts, rec)
        early_ts = self._early_commits.pop(txn.txn_id, None)
        if early_ts is not None and rec.status == TxnStatus.PREPARED:
            rec.status = TxnStatus.COMMITTED
            rec.t_committed = self.sim.now
            self._try_execute()
        return {"node": self.host, "shard": self.shard_id}

    def on_irt_commit(self, src: str, payload: IrtCommit):
        txn_id, ts = payload.txn_id, payload.ts
        rec = self.records.get(txn_id)
        if rec is None or isinstance(rec, _AnnouncedStub):
            # Commit overtook the prepare (reordered network): the prepare
            # carries the transaction body, so stash the commit decision and
            # apply it when the (retried) prepare arrives.
            self._early_commits[txn_id] = ts
            return {"node": self.host}
        if rec.status in (TxnStatus.PREPARED, TxnStatus.ANNOUNCED):
            rec.status = TxnStatus.COMMITTED
            rec.t_committed = self.sim.now
            if txn_id not in self.ready_q:
                self.ready_q.insert(ts, rec)
            self._try_execute()
        return {"node": self.host}

    # ------------------------------------------------------------------
    # CRT handlers (Algorithm 2)
    # ------------------------------------------------------------------
    def on_crt_locallog(self, src: str, payload: CrtLocallog):
        txn = payload.txn
        self.crt_log[txn.txn_id] = {"txn": txn, "coord": payload.coord, "commit_ts": None}
        return {"node": self.host}

    def on_crt_commitlog(self, src: str, payload: CrtCommitlog) -> None:
        entry = self.crt_log.get(payload.txn_id)
        if entry is not None:
            entry["commit_ts"] = payload.commit_ts

    def on_prep_crt(self, src: str, payload: PrepCrt) -> None:
        txn = payload.txn
        anticipated: Timestamp = payload.anticipated_ts
        coord = payload.coord
        rec = self._record(txn, is_crt=True, coordinator=coord, status=TxnStatus.PREPARED)
        if rec.status in (TxnStatus.ANNOUNCED, TxnStatus.PREPARED):
            rec.status = TxnStatus.PREPARED
            rec.participates = True
            rec.needed = txn.external_needs(self.shard_id)
            rec.anticipated_ts = anticipated
            rec.t_prepared = self.sim.now
            if self.tracer is not None:
                self._trace("crt_prepare", txn=txn.txn_id, anticipated=str(anticipated))
            self.wait_q.insert(txn.txn_id, anticipated)
            # Tell every intra-region node so their dclocks stretch too
            # (§4.3, "a subtlety").
            for peer in self.members:
                if peer != self.host:
                    self.endpoint.send(
                        peer, CrtAnnounce(txn_id=txn.txn_id, anticipated_ts=anticipated)
                    )
        # ACK straight to the coordinator with our region's anticipation.
        self.endpoint.send(
            coord,
            CrtAck(
                txn_id=txn.txn_id,
                node=self.host,
                shard=self.shard_id,
                anticipated_ts=rec.anticipated_ts or anticipated,
                region=self.region,
                phys_tag=self.dclock.physical(),
            ),
        )

    def on_crt_announce(self, src: str, payload: CrtAnnounce) -> None:
        txn_id = payload.txn_id
        rec = self.records.get(txn_id)
        if rec is not None and rec.status != TxnStatus.ANNOUNCED:
            return  # we already know more than the announcement
        if rec is None:
            self.records[txn_id] = _announced_stub(txn_id, payload.anticipated_ts)
        if txn_id not in self.wait_q:
            self.wait_q.insert(txn_id, payload.anticipated_ts)

    def on_crt_commit(self, src: str, payload: CrtCommit):
        txn_id = payload.txn_id
        commit_ts: Timestamp = payload.commit_ts
        txn = payload.txn
        rec = self.records.get(txn_id)
        if rec is None or isinstance(rec, _AnnouncedStub):
            if txn is None:
                return {"node": self.host}  # cannot adopt without the body yet
            inputs = rec.inputs if isinstance(rec, _AnnouncedStub) else {}
            rec = TxnRecord(txn, is_crt=True, coordinator=payload.coord or src)
            rec.inputs.update(inputs)
            self.records[txn_id] = rec
        if rec.status in (TxnStatus.COMMITTED, TxnStatus.EXECUTED, TxnStatus.ABORTED):
            return {"node": self.host}
        tag = payload.phys_tag
        src_region = self.topology.region_of_node(src) if "." in src else self.region
        if tag is not None and src_region != self.region:
            # Zero slack: lift clocks that lag the sender, never push ahead.
            # A half-RTT slack ratchets offsets upward under jitter (the
            # offset can only grow, so every over-estimate accumulates).
            self.dclock.calibrate_to_time(tag, slack=0.0)
        self._adopt_commit(rec, commit_ts)
        return {"node": self.host}

    def _adopt_commit(self, rec: TxnRecord, commit_ts: Timestamp) -> None:
        """Atomically move a CRT from prepared/announced to committed."""
        if self.tracer is not None:
            self._trace("crt_commit", txn=rec.txn_id, ts=str(commit_ts))
        rec.status = TxnStatus.COMMITTED
        rec.t_committed = self.sim.now
        rec.participates = self._i_participate(rec.txn)
        self.wait_q.remove(rec.txn_id)
        if rec.participates:
            rec.needed = rec.txn.external_needs(self.shard_id)
            if rec.txn_id not in self.ready_q:
                self.ready_q.insert(commit_ts, rec)
            if rec.input_ready():
                rec.t_input_ready = self.sim.now
            else:
                # Committed but waiting for inputs: keep the floor at the
                # commit timestamp so later IRTs slot below it (R1).
                self.wait_q.insert(rec.txn_id, commit_ts)
        # Relay the committed CRT to all intra-region nodes + manager: this
        # is the notification Lemma 1's proof relies on.
        if not getattr(rec, "_relayed", False):
            rec._relayed = True
            update = CrtUpdate(
                txn_id=rec.txn_id,
                txn=rec.txn,
                coord=rec.coordinator,
                commit_ts=commit_ts,
                input_ready=rec.input_ready(),
            )
            for peer in self.members:
                if peer != self.host:
                    self._reliable(peer, update, obligation_ts=commit_ts)
            self._reliable(self.manager, update, obligation_ts=commit_ts)
        self._try_execute()

    def on_crt_update(self, src: str, payload: CrtUpdate):
        txn_id = payload.txn_id
        commit_ts = payload.commit_ts
        rec = self.records.get(txn_id)
        if rec is not None and not isinstance(rec, _AnnouncedStub) and rec.status in (
            TxnStatus.COMMITTED,
            TxnStatus.EXECUTED,
            TxnStatus.ABORTED,
        ):
            return {"node": self.host}
        txn = payload.txn
        if self.shard_id in txn.shard_ids:
            # We participate: adopt the commit exactly as if crt_commit came.
            inputs = rec.inputs if isinstance(rec, _AnnouncedStub) else (rec.inputs if rec else {})
            real = rec if (rec is not None and not isinstance(rec, _AnnouncedStub)) else TxnRecord(
                txn, is_crt=True, coordinator=payload.coord
            )
            real.inputs.update(inputs)
            self.records[txn_id] = real
            self._adopt_commit(real, commit_ts)
        else:
            # Non-participant: only our waitQ floor needs maintenance.
            if rec is None:
                rec = _announced_stub(txn_id, commit_ts)
                self.records[txn_id] = rec
            rec.status = TxnStatus.COMMITTED
            if payload.input_ready:
                self.wait_q.remove(txn_id)
            else:
                self.wait_q.update(txn_id, commit_ts)
            self._try_execute()
        return {"node": self.host}

    def on_crt_executed(self, src: str, payload: CrtExecuted) -> None:
        txn_id = payload.txn_id
        rec = self.records.get(txn_id)
        if rec is not None and isinstance(rec, _AnnouncedStub):
            rec.status = TxnStatus.EXECUTED
        self.wait_q.remove(txn_id)
        self._try_execute()

    def on_send_output(self, src: str, payload: SendOutput) -> None:
        txn_id = payload.txn_id
        rec = self.records.get(txn_id)
        if rec is None:
            rec = _announced_stub(txn_id, None)
            self.records[txn_id] = rec
        for var, value in payload.values.items():
            rec.inputs.setdefault(var, value)
        if (
            not isinstance(rec, _AnnouncedStub)
            and rec.status == TxnStatus.COMMITTED
            and rec.input_ready()
        ):
            if not rec.t_input_ready:
                rec.t_input_ready = self.sim.now
            self.wait_q.remove(txn_id)
            # Tell non-participants (whose waitQ still floors their clocks
            # at this CRT's commit timestamp) that the wait is over —
            # without this the frozen clocks would block the CRT itself.
            self._announce_input_ready(rec)
            self._try_execute()

    def _announce_input_ready(self, rec: TxnRecord) -> None:
        if getattr(rec, "_input_announced", False):
            return
        rec._input_announced = True
        for peer in self.members:
            if peer != self.host:
                self._reliable(peer, CrtInputReady(txn_id=rec.txn_id))

    def on_crt_input_ready(self, src: str, payload: CrtInputReady):
        txn_id = payload.txn_id
        rec = self.records.get(txn_id)
        if rec is None or isinstance(rec, _AnnouncedStub) or not rec.participates:
            # Only the non-participant floor entry must go; participants
            # drop theirs when their own inputs complete.
            self.wait_q.remove(txn_id)
            self._try_execute()
        return {"node": self.host}

    def on_abort_crt(self, src: str, payload: AbortCrt):
        txn_id = payload.txn_id
        rec = self.records.get(txn_id)
        if rec is None:
            rec = _announced_stub(txn_id, None)
            rec.status = TxnStatus.ABORTED
            self.records[txn_id] = rec
        elif rec.status not in (TxnStatus.COMMITTED, TxnStatus.EXECUTED):
            rec.status = TxnStatus.ABORTED
            if self.tracer is not None:
                self._trace("crt_abort", txn=txn_id)
            self.stats.inc("crt_aborted_failover")
        self.wait_q.remove(txn_id)
        # Relay the abort to all intra-region nodes, mirroring the commit
        # relay in _adopt_commit: non-participants hold an announce floor
        # for this CRT that freezes their dclocks at its anticipated
        # timestamp — without the relay those floors (and every PCT
        # watermark behind them) never clear, wedging execution regionwide.
        if rec.status == TxnStatus.ABORTED and not getattr(rec, "_abort_relayed", False):
            rec._abort_relayed = True
            for peer in self.members:
                if peer != self.host:
                    self._reliable(peer, AbortCrt(txn_id=txn_id))
            self._reliable(self.manager, AbortCrt(txn_id=txn_id))
        self._try_execute()
        return {"node": self.host}

    # ------------------------------------------------------------------
    # Commit helper used by the coordinator mixin
    # ------------------------------------------------------------------
    def _commit_local(self, txn_id: str, ts: Timestamp) -> None:
        rec = self.records.get(txn_id)
        if rec is not None and rec.status == TxnStatus.PREPARED:
            rec.status = TxnStatus.COMMITTED
            rec.t_committed = self.sim.now
            self._try_execute()

    # ------------------------------------------------------------------
    # Reliable delivery with obligation caps
    # ------------------------------------------------------------------
    def _member_timeout(self, dst: str) -> float:
        """Per-destination retransmission timeout.

        Members are usually intra-region, but during an elastic shard move
        (repro.topo) migrating replicas sit in another region: an
        intra-region timeout there is shorter than the one-way delay, so
        every call would time out and retransmit forever."""
        if self.topology.region_of_node(dst) == self.region:
            return 4 * self.timing.intra_region_rtt
        return 4 * self.timing.cross_region_rtt

    def _reliable(
        self,
        dst: str,
        msg: WireMessage,
        obligation_ts: Optional[Timestamp] = None,
        timeout: Optional[float] = None,
        on_ack: Optional[Callable] = None,
        max_tries: int = 0,
    ) -> None:
        obl_id = next(self._obl_ids)
        if obligation_ts is not None:
            self._obligations.setdefault(dst, {})[obl_id] = obligation_ts
        timeout = timeout or max(self._member_timeout(dst), 10.0)

        def proc():
            tries = 0
            try:
                while True:
                    try:
                        value = yield self.endpoint.call(dst, msg, timeout=timeout)
                        if on_ack is not None:
                            on_ack(value)
                        return
                    except (RpcTimeout, RpcRemoteError):
                        tries += 1
                        self.stats.inc("retransmissions")
                        if max_tries and tries >= max_tries:
                            self.stats.inc("delivery_gaveup")
                            return
                        if dst in self.removed:
                            return
            finally:
                pending = self._obligations.get(dst)
                if pending is not None:
                    pending.pop(obl_id, None)

        self.sim.spawn(proc(), name=f"{self.host}.reliable.{msg.NAME}")

    # ------------------------------------------------------------------
    # Failover: node removal (Algorithm 3)
    # ------------------------------------------------------------------
    def on_remove_prep(self, src: str, payload: RemovePrep):
        to_remove = set(payload.to_remove)
        pend_irts, pend_crts = [], []
        for rec in self.records.values():
            if isinstance(rec, _AnnouncedStub):
                continue
            if rec.coordinator in to_remove and rec.status == TxnStatus.PREPARED:
                if rec.is_crt:
                    pend_crts.append(
                        {"txn_id": rec.txn_id, "txn": rec.txn, "committed": False, "commit_ts": None}
                    )
                else:
                    pend_irts.append({"txn_id": rec.txn_id, "ts": rec.ts})
        for txn_id, entry in self.crt_log.items():
            coord = entry["coord"]
            if coord in to_remove:
                rec = self.records.get(txn_id)
                committed = rec is not None and not isinstance(rec, _AnnouncedStub) and rec.status in (
                    TxnStatus.COMMITTED, TxnStatus.EXECUTED,
                )
                pend_crts.append(
                    {
                        "txn_id": txn_id,
                        "txn": entry["txn"],
                        "committed": committed or entry["commit_ts"] is not None,
                        "commit_ts": entry["commit_ts"] or (rec.ts if committed else None),
                    }
                )
        return {"node": self.host, "pend_irts": pend_irts, "pend_crts": pend_crts}

    def on_remove_commit(self, src: str, payload: RemoveCommit):
        self.vid = payload.vid
        removed = set(payload.removed)
        self.removed |= removed
        self.members = [m for m in self.members if m not in removed]
        for node in removed:
            self.max_ts.pop(node, None)
            self._obligations.pop(node, None)
            for shard_id in self.catalog.shards_on_node(node):
                self.catalog.remove_replica(shard_id, node)
        # Commit orphaned IRTs seen by at least one node (low latency policy).
        for entry in payload.commit_irts:
            rec = self.records.get(entry["txn_id"])
            if rec is not None and not isinstance(rec, _AnnouncedStub) and rec.status == TxnStatus.PREPARED:
                rec.status = TxnStatus.COMMITTED
                rec.t_committed = self.sim.now
        # Abort orphaned CRTs (cross-region status retrieval is too costly).
        for entry in payload.abort_crts:
            self.on_abort_crt(src, AbortCrt(txn_id=entry["txn_id"]))
        for entry in payload.commit_crts:
            rec = self.records.get(entry["txn_id"])
            if rec is not None and not isinstance(rec, _AnnouncedStub) and rec.status == TxnStatus.PREPARED:
                self._adopt_commit(rec, entry["commit_ts"])
        self._try_execute()
        return {"node": self.host}

    # ------------------------------------------------------------------
    # Failover: manager takeover (§4.4)
    # ------------------------------------------------------------------
    def on_mgr_takeover(self, src: str, payload: MgrTakeover):
        old_manager = self.manager
        self.manager = src
        # Report our current view: the standby's membership may be stale
        # (removals happen while it is passive), and it adopts the freshest
        # view among the replies.
        view = {"vid": self.vid, "members": list(self.members),
                "removed": sorted(self.removed)}
        self.vid = max(self.vid, payload.vid)
        old_ts = self.max_ts.pop(old_manager, ZERO_TS)
        self.max_ts.setdefault(src, old_ts)
        return {"node": self.host, "mgr_max_ts": old_ts,
                "my_clock": self.dclock.peek(), "view": view}

    # ------------------------------------------------------------------
    # Recovery: adding a replica (Algorithm 4)
    # ------------------------------------------------------------------
    def on_transfer_ckpt(self, src: str, payload: TransferCkpt):
        new_node = payload.node
        ts_ckpt = self.executed_log[-1][0] if self.executed_log else self.dclock.peek()
        snapshot = self.shard.snapshot()
        # Remember what the checkpoint covers: after the view installs we
        # redeliver everything newer (the paper's notifiedTs[n] = ts_ckpt).
        self._ckpt_donor_state = {"node": new_node, "ts_ckpt": ts_ckpt}

        def proc():
            yield self.endpoint.call(
                new_node,
                InstallCkpt(snapshot=snapshot, ts_ckpt=ts_ckpt, shard=self.shard_id),
                timeout=self._member_timeout(new_node),
            )
            return ts_ckpt

        return proc()

    def _send_catchup(self, new_node: str, ts_ckpt: Timestamp) -> None:
        """Redeliver post-checkpoint relevant transactions to a new replica.

        Covers executed/committed transactions the checkpoint missed and
        in-flight prepared ones whose commits may race the view install.
        """
        entries = []
        for rec in self.records.values():
            if isinstance(rec, _AnnouncedStub) or rec.ts is None:
                continue
            if self.shard_id not in rec.txn.shard_ids:
                continue
            if rec.status == TxnStatus.ABORTED:
                continue
            if rec.status == TxnStatus.EXECUTED and rec.ts <= ts_ckpt:
                continue  # already inside the checkpoint
            entries.append({
                "txn": rec.txn,
                "ts": rec.ts,
                "status": rec.status,
                "is_crt": rec.is_crt,
                "coord": rec.coordinator,
                "inputs": dict(rec.inputs),
                "anticipated_ts": rec.anticipated_ts,
            })
        if entries:
            self._reliable(new_node, ReplicaCatchup(entries=entries))

    def on_replica_catchup(self, src: str, payload: ReplicaCatchup):
        for entry in payload.entries:
            txn = entry["txn"]
            rec = self._record(txn, entry["is_crt"], entry["coord"],
                               status=TxnStatus.PREPARED)
            rec.inputs.update(entry["inputs"])
            rec.participates = True
            rec.needed = txn.external_needs(self.shard_id)
            status = entry["status"]
            if status in (TxnStatus.COMMITTED, TxnStatus.EXECUTED):
                if rec.status not in (TxnStatus.COMMITTED, TxnStatus.EXECUTED):
                    self._adopt_commit(rec, entry["ts"])
            elif rec.status == TxnStatus.PREPARED and rec.txn_id not in self.ready_q:
                if entry["is_crt"]:
                    if entry["anticipated_ts"] is not None:
                        rec.anticipated_ts = entry["anticipated_ts"]
                        self.wait_q.insert(rec.txn_id, entry["anticipated_ts"])
                else:
                    self.ready_q.insert(entry["ts"], rec)
        self._try_execute()
        return {"node": self.host}

    def on_install_ckpt(self, src: str, payload: InstallCkpt):
        self.shard.restore(payload.snapshot)
        return {"node": self.host, "ts_ckpt": payload.ts_ckpt}

    def on_add_prep(self, src: str, payload: AddPrep):
        # The "fake CRT" accessing all nodes: freeze clocks below ts_ins.
        self.wait_q.insert(f"add:{payload.node}", payload.ts_ins)
        return {"node": self.host}

    def on_add_commit(self, src: str, payload: AddCommit):
        new_node = payload.node
        ts_ins: Timestamp = payload.ts_ins
        self.vid = payload.vid
        self.wait_q.remove(f"add:{new_node}")
        self.removed.discard(new_node)
        if new_node == self.host:
            # We are the new replica: jump our clock past the install point.
            self.dclock.jump_to(ts_ins)
            self.members = list(payload.members)
            for shard_id in [payload.shard]:
                self.catalog.add_replica(shard_id, new_node)
        else:
            if new_node not in self.members:
                self.members.append(new_node)
            self.catalog.add_replica(payload.shard, new_node)
            self.max_ts[new_node] = ts_ins
            donor_state = getattr(self, "_ckpt_donor_state", None)
            if donor_state and donor_state["node"] == new_node:
                # Redeliver now and once more after the dust settles, in
                # case a commit raced the catalog update.
                self._send_catchup(new_node, donor_state["ts_ckpt"])
                def later():
                    yield self.sim.timeout(10 * self.timing.intra_region_rtt)
                    self._send_catchup(new_node, donor_state["ts_ckpt"])
                self.sim.spawn(later(), name=f"{self.host}.catchup2")
        self._try_execute()
        return {"node": self.host}

    # ------------------------------------------------------------------
    # Elastic reshard view flip (repro.topo)
    # ------------------------------------------------------------------
    def on_view_sync(self, src: str, payload: ViewSync):
        """Install the post-move view: manager flip and/or member set.

        The old manager's ``max_ts`` entry is dropped and **not** carried
        over to the new manager: the new manager's pending floor is
        independent of the old one's, so inheriting the old report could
        overstate the new floor and let us execute past a CRT the new
        manager is still anticipating.  Until the new manager's next
        periodic report arrives (one pct_interval), the PCT threshold sits
        at ZERO — a brief stall, never an unsafe execution."""
        if payload.manager is not None and payload.manager != self.manager:
            self.max_ts.pop(self.manager, None)
            self.manager = payload.manager
        if payload.members is not None:
            self.members = list(payload.members)
            keep = set(self.members)
            keep.add(self.manager)
            for host in [h for h in self.max_ts if h not in keep]:
                self.max_ts.pop(host, None)
                self._obligations.pop(host, None)
        self._try_execute()
        return {"node": self.host}


class _AnnouncedStub:
    """Minimal record for CRTs known only by id (announce / early output)."""

    def __init__(self, txn_id: str):
        self.txn_id = txn_id
        self.status = TxnStatus.ANNOUNCED
        self.inputs: Dict[str, Any] = {}
        self.is_crt = True
        self.coordinator = ""


def _announced_stub(txn_id: str, _ts) -> _AnnouncedStub:
    return _AnnouncedStub(txn_id)
