"""The stretchable hybrid clock (``dclock``) of DAST (§3.2, §4.2).

A node's dclock normally tracks its physical clock (plus a calibration
offset that keeps intra-region dclocks aligned with the fastest node).  When
advancing the physical part would pass the timestamp of a pending CRT — the
*floor*, i.e. the head of the node's waitQ — the dclock **freezes** ``time``
and advances ``frac`` instead, so subsequently assigned timestamps stay
*below* the CRT's and IRTs are never ordered after (hence blocked by) it.

Key invariant (monotone promise): every value this clock ever returns —
whether assigned to a transaction or merely *reported* to peers for PCT —
is strictly greater than all previously returned values, and every future
value is strictly greater than anything reported so far.  PCT's correctness
(Lemma 1) rests on exactly this.
"""

from __future__ import annotations

import math

from typing import Callable, Optional

from repro.clock.hlc import Timestamp, ZERO_TS
from repro.sim.clocks import ClockSource

__all__ = ["DClock"]


class DClock:
    """Stretchable hybrid clock bound to one node.

    ``floor_fn`` supplies the current stretch floor (smallest waitQ
    timestamp) each time the clock advances; ``None`` means unconstrained.
    """

    def __init__(self, source: ClockSource, nid: int, floor_fn: Optional[Callable[[], Optional[Timestamp]]] = None):
        self.source = source
        self.nid = nid
        self.offset = 0.0  # calibration offset: dclock runs ahead of the system clock
        self.last = ZERO_TS.with_nid(nid)
        self._floor_fn = floor_fn
        # Ablation switches (benchmarks/test_ablations.py): disabling
        # stretching makes the clock ignore its floor; disabling calibration
        # makes calibrate_to()/observe() no-ops.
        self.stretch_enabled = True
        self.calibration_enabled = True
        # Telemetry for the evaluation: how often the clock had to stretch.
        self.stretch_count = 0
        self.tick_count = 0

    # ------------------------------------------------------------------
    # Core operation
    # ------------------------------------------------------------------
    def tick(self) -> Timestamp:
        """Advance the clock and return a fresh, unique timestamp.

        Used both for assigning transaction timestamps (``CreateTs`` in
        Algorithm 1) and for producing clock reports for PCT — the two must
        share one monotone sequence, see the module invariant.

        When the physical candidate would pass the floor, the clock freezes
        **at** the floor (time = the float just below ``floor.time``) and
        grows ``frac`` — not at wherever it happened to be: freezing at a
        stale time would leave this clock unable to ever pass timestamps
        between its frozen position and the floor, stalling PCT.
        """
        self.tick_count += 1
        floor = self._floor_fn() if (self._floor_fn is not None and self.stretch_enabled) else None
        candidate = Timestamp(self.source.now() + self.offset, 0, self.nid)
        if floor is not None and candidate >= floor:
            frozen_time = math.nextafter(floor.time, -math.inf)
            if self.last.time < frozen_time:
                candidate = Timestamp(frozen_time, 0, self.nid)
            else:
                candidate = self.last.next_frac(self.nid)
            self.stretch_count += 1
        if candidate <= self.last:
            # Physical clock stalled or stepped backwards: stay monotone.
            candidate = self.last.next_frac(self.nid)
        self.last = candidate
        return candidate

    def observe(self, peer_value: Timestamp) -> None:
        """HLC-style adoption of a peer's reported clock value (§4.2).

        Fast-forwards ``last`` so our next values exceed everything the peer
        has reported — this is what lets frozen (stretched) clocks of
        different nodes leapfrog each other's ``frac`` values instead of
        waiting out the freeze.  Adoption is skipped when the peer's value
        has reached our floor's physical time: adopting it could exhaust the
        space below the floor and break the promise; the situation resolves
        as soon as the pending CRT commits.
        """
        if not self.calibration_enabled:
            return
        floor = self._floor_fn() if (self._floor_fn is not None and self.stretch_enabled) else None
        if floor is not None and peer_value.time >= floor.time:
            return
        if peer_value > self.last:
            self.last = Timestamp(peer_value.time, peer_value.frac, self.nid)

    def peek(self) -> Timestamp:
        """The latest value handed out (no advancement, no promise made)."""
        return self.last

    def physical(self) -> float:
        """The raw calibrated physical reading (no stretching applied)."""
        return self.source.now() + self.offset

    # ------------------------------------------------------------------
    # Calibration (§4.2 intra-region, §4.3 cross-region)
    # ------------------------------------------------------------------
    def calibrate_to(self, ts: Timestamp, slack: float = 0.0) -> None:
        """Grow the offset so the physical part can pass ``ts.time + slack``.

        Called when a peer's notification timestamp is ahead of this clock:
        intra-region nodes chase the fastest dclock (§4.2); on cross-region
        messages the target is ``ts + RTT/2`` (§4.3, ``slack`` = RTT/2).
        Only ever *increases* the offset, preserving monotonicity.
        """
        self.calibrate_to_time(ts.time, slack)

    def calibrate_to_time(self, t: float, slack: float = 0.0) -> None:
        """Float-time variant of :meth:`calibrate_to` for physical tags."""
        if not self.calibration_enabled:
            return
        target = t + slack
        now = self.source.now()
        if now + self.offset < target:
            self.offset = target - now

    def jump_to(self, ts: Timestamp) -> None:
        """Force the clock strictly past ``ts`` (failover/new-replica path).

        Used when a newly added node or newly elected manager must not
        generate timestamps preceding already-executed transactions (§4.4).
        Bypasses the calibration ablation switch: this is a correctness
        step, not a latency optimisation.
        """
        target = ts.time + 1e-6
        now = self.source.now()
        if now + self.offset < target:
            self.offset = target - now
        if self.last < ts:
            self.last = ts
