"""Hybrid timestamps for DAST's stretchable clock.

A :class:`Timestamp` has the paper's three fields (§3.2): ``time`` (the
physical part, ms), ``frac`` (the logical part used to stretch granularity)
and ``nid`` (a unique node id for total-order tie-breaking).  Timestamps are
ordered lexicographically by ``(time, frac, nid)`` — so ``199.(1)`` (time
199, frac 1) sorts *before* an anticipated CRT timestamp at time 200, which
is exactly how a stretched IRT slots ahead of a pending CRT (Fig 1b).

The paper writes the tuple as ``(time, nid, frac)``; we order ``frac`` before
``nid`` so that successive stretched timestamps from different nodes
interleave by logical position first.  Any total order with ``time`` as the
major key and unique tie-breaking satisfies the protocol.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["Timestamp", "ZERO_TS", "CAP_NID", "just_below"]


class Timestamp(NamedTuple):
    """Totally-ordered hybrid timestamp ``(time, frac, nid)``."""

    time: float
    frac: int
    nid: int

    def next_frac(self, nid: int) -> "Timestamp":
        """The smallest useful timestamp above ``self`` with a frozen time."""
        return Timestamp(self.time, self.frac + 1, nid)

    def with_nid(self, nid: int) -> "Timestamp":
        return Timestamp(self.time, self.frac, nid)

    def __str__(self) -> str:  # compact rendering for logs/debugging
        if self.frac:
            return f"{self.time:.3f}.({self.frac})@{self.nid}"
        return f"{self.time:.3f}@{self.nid}"


ZERO_TS = Timestamp(0.0, 0, -1)

# Sentinel nid used when capping a report strictly below a floor timestamp:
# smaller than any real node id, so ``Timestamp(t, f, CAP_NID)`` sorts below
# every genuine ``Timestamp(t, f, nid)`` with the same physical/logical part.
CAP_NID = -(1 << 60)


def just_below(ts: Timestamp) -> Timestamp:
    """The largest reportable value strictly below ``ts``.

    Used by nodes and managers to enforce the PCT promise: a clock report
    must never reach a floor (waitQ minimum / pending anticipation) that an
    unresolved CRT may still commit under.
    """
    return Timestamp(ts.time, ts.frac, CAP_NID)
