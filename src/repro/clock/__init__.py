"""Hybrid timestamps and the stretchable dclock."""

from repro.clock.dclock import DClock
from repro.clock.hlc import Timestamp, ZERO_TS

__all__ = ["DClock", "Timestamp", "ZERO_TS"]
