"""Hybrid timestamps and the stretchable dclock."""

from repro.clock.dclock import DClock
from repro.clock.hlc import CAP_NID, Timestamp, ZERO_TS, just_below

__all__ = ["DClock", "Timestamp", "ZERO_TS", "CAP_NID", "just_below"]
