"""SLOG baseline [Ren, Li, Abadi, VLDB'19] as evaluated in the paper (§6).

Architecture preserved from the original:

* each region has a **sequencer** that orders every transaction touching
  the region into a regional log, broadcast to the region's nodes;
* **single-home** transactions (IRTs) go straight into the regional log;
* **multi-home** transactions (CRTs) are sent to a **global ordering
  service** (the paper's evaluation used Raft with three replicas and a
  5 ms log-exchange interval) which sequences them and ships *every* entry
  to *every* region — a region missing an entry could not tell "irrelevant"
  from "lost".  That all-regions fan-out is SLOG's R3 bottleneck (Fig 8),
  modelled here by charging the leader per-region dispatch CPU per entry;
* nodes execute deterministically under two-phase locking in log order;
  per the paper's baseline calibration, locks are released as soon as a
  transaction's pieces on that shard finish (2PL, not strong-strict 2PL).

R1 violation preserved: a CRT holds its locks while waiting for
cross-region inputs, so conflicting IRTs behind it in the log block for up
to a cross-region RTT — the "execution blocking" the paper quotes SLOG's
own paper admitting.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.base import BaselineSystem
from repro.errors import RpcTimeout
from repro.sim.clocks import ClockSource
from repro.sim.rpc import Endpoint
from repro.storage.locks import LockManager, LockMode
from repro.storage.shard import Shard
from repro.txn.executor import execute_on_shard
from repro.txn.model import Transaction
from repro.txn.result import TxnResult
from repro.util import Stats
from repro.wire.messages import (
    ExecDone,
    RaftAppend,
    SendOutput,
    SlogGlobalBatch,
    SlogGlobalSubmit,
    SlogLog,
    SlogSubmit,
    Submit,
)

__all__ = ["SlogSystem", "SlogNode", "SlogSequencer", "SlogGlobalOrderer"]

GLOBAL_REGION = "global"


class SlogGlobalOrderer:
    """Leader of the global ordering service (followers model Raft acks)."""

    def __init__(self, system: "SlogSystem"):
        self.system = system
        self.sim = system.sim
        self.host = f"{GLOBAL_REGION}.seq0"
        self.followers = [f"{GLOBAL_REGION}.seq{i}" for i in (1, 2)]
        self.endpoint = Endpoint(
            self.sim, system.network, self.host, GLOBAL_REGION,
            service_time=system.timing.service_time,
            batch_window=system.timing.batch_window,
        )
        self._follower_eps = [
            Endpoint(self.sim, system.network, h, GLOBAL_REGION,
                     service_time=system.timing.service_time)
            for h in self.followers
        ]
        for ep in self._follower_eps:
            ep.register("raft_append", lambda src, p: {"ok": True})
        self.batch: List[SlogGlobalSubmit] = []
        self.next_seq = 0
        self.stats = Stats()
        self._running = False
        self.endpoint.register("slog_global_submit", self.on_submit)

    def start(self) -> None:
        self._running = True
        self.sim.spawn(self._batch_loop(), name="slog.global")

    def stop(self) -> None:
        self._running = False

    def on_submit(self, src: str, payload: SlogGlobalSubmit) -> None:
        self.batch.append(payload)
        self.stats.inc("global_submits")

    def _batch_loop(self):
        interval = self.system.timing.slog_batch_interval
        while self._running:
            yield self.sim.timeout(interval)
            if not self.batch:
                continue
            batch, self.batch = self.batch, []
            for entry in batch:
                entry.seq = self.next_seq
                self.next_seq += 1
            # Raft-style durability: majority ack from followers.  Under
            # heavy dispatch load the leader's own CPU backlog delays the
            # ack responses past the timeout; Raft retries, so do we —
            # this is what turns the Fig 8 bottleneck into graceful
            # latency collapse rather than a halt.
            while True:
                acks = [
                    self.endpoint.call(f, RaftAppend(n=len(batch)), timeout=100.0)
                    for f in self.followers
                ]
                try:
                    yield self.sim.any_of(acks)  # leader + 1 follower = majority
                    break
                except RpcTimeout:
                    self.stats.inc("raft_retries")
            # Fan out EVERY entry to EVERY region (the scalability sink):
            # charge leader CPU proportional to regions x entries.
            regions = self.system.topology.regions
            self.endpoint.charge(
                self.system.timing.service_time * len(regions) * len(batch)
            )
            for region in regions:
                self.endpoint.send(
                    self.system.sequencers[region].host, SlogGlobalBatch(entries=batch)
                )
            self.stats.inc("batches")
            self.stats.inc("global_ordered", len(batch))


class SlogSequencer:
    """Per-region total order over transactions touching the region."""

    def __init__(self, system: "SlogSystem", region: str):
        self.system = system
        self.sim = system.sim
        self.region = region
        self.host = f"{region}.seq"
        self.endpoint = Endpoint(
            self.sim, system.network, self.host, region,
            service_time=system.timing.service_time,
            batch_window=system.timing.batch_window,
        )
        self.log_index = 0
        self.stats = Stats()
        self.endpoint.register("slog_submit", self.on_submit)
        self.endpoint.register("slog_global_batch", self.on_global_batch)

    def on_submit(self, src: str, payload: SlogSubmit) -> None:
        txn: Transaction = payload.txn
        regions = {self.system.catalog.region_of_shard(s) for s in txn.shard_ids}
        if regions == {self.region}:
            self._append(payload)  # single-home: regional order suffices
        else:
            self.endpoint.send(
                self.system.orderer.host,
                SlogGlobalSubmit(txn=payload.txn, coord=payload.coord),
            )

    def on_global_batch(self, src: str, payload: SlogGlobalBatch) -> None:
        for entry in payload.entries:
            txn: Transaction = entry.txn
            touches_me = any(
                self.system.catalog.region_of_shard(s) == self.region
                for s in txn.shard_ids
            )
            if touches_me:
                self._append(entry)
            self.stats.inc("global_entries_seen")

    def _append(self, entry) -> None:
        index = self.log_index
        self.log_index += 1
        msg = SlogLog(index=index, txn=entry.txn, coord=entry.coord)
        for node in self.system.topology.nodes_in_region(self.region):
            self.endpoint.send(node, msg)
        self.stats.inc("appended")


class SlogNode:
    """A shard replica executing the regional log under deterministic 2PL."""

    def __init__(self, system: "SlogSystem", host: str, shard: Shard):
        self.system = system
        self.sim = system.sim
        self.host = host
        self.region = system.topology.region_of_node(host)
        self.shard = shard
        self.shard_id = shard.shard_id
        self.timing = system.timing
        self.endpoint = Endpoint(
            self.sim, system.network, host, self.region,
            service_time=self.timing.service_time,
            batch_window=self.timing.batch_window,
        )
        self.locks = LockManager(self.sim)
        self.next_index = 0
        self._pending_log: Dict[int, SlogLog] = {}
        self._inputs: Dict[str, Dict[str, object]] = {}
        self._input_events: Dict[str, object] = {}
        self.coordinating: Dict[str, dict] = {}
        self.stats = Stats()
        self.tracer = None  # optional repro.sim.trace.Tracer
        ep = self.endpoint
        ep.register("submit", self.on_submit)
        ep.register("slog_log", self.on_log)
        ep.register("send_output", self.on_send_output)
        ep.register("exec_done", self.on_exec_done)

    def _trace(self, kind: str, **fields) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, self.host, kind, **fields)

    def start(self) -> None:
        pass

    # ------------------------------------------------------------------
    # Coordinator role: forward to sequencer, gather exec reports
    # ------------------------------------------------------------------
    def on_submit(self, src: str, payload: Submit):
        txn = payload.txn
        txn.home_region = self.region
        regions = sorted({self.system.catalog.region_of_shard(s) for s in txn.shard_ids})
        txn.participating_regions = tuple(regions)
        is_crt = len(regions) > 1 or regions[0] != self.region
        done = self.sim.event()
        self.coordinating[txn.txn_id] = {
            "shards": set(txn.shard_ids), "reports": {}, "done": done,
        }
        self.endpoint.send(
            f"{self.region}.seq", SlogSubmit(txn=txn, coord=self.host)
        )
        yield done
        state = self.coordinating.pop(txn.txn_id)
        outputs: Dict[str, object] = {}
        aborted, reason = False, ""
        for report in state["reports"].values():
            outputs.update(report.outputs)
            if report.aborted:
                aborted, reason = True, report.reason
        return TxnResult(txn.txn_id, txn.txn_type, not aborted, is_crt,
                         outputs=outputs, abort_reason=reason)

    def on_exec_done(self, src: str, payload: ExecDone) -> None:
        state = self.coordinating.get(payload.txn_id)
        if state is None:
            return
        state["reports"].setdefault(payload.shard, payload)
        if set(state["reports"]) >= state["shards"] and not state["done"].triggered:
            state["done"].succeed(None)

    # ------------------------------------------------------------------
    # Deterministic execution in log order
    # ------------------------------------------------------------------
    def on_log(self, src: str, payload: SlogLog) -> None:
        self._pending_log[payload.index] = payload
        while self.next_index in self._pending_log:
            entry = self._pending_log.pop(self.next_index)
            self.next_index += 1
            self._admit(entry)

    def _admit(self, entry: SlogLog) -> None:
        txn: Transaction = entry.txn
        if self.shard_id not in txn.shard_ids:
            return  # the entry is only needed for log continuity
        wants = {key: LockMode.EXCLUSIVE for key in txn.lock_keys_on(self.shard_id)}
        granted = self.locks.request(txn.txn_id, wants) if wants else None
        self.sim.spawn(self._run_entry(txn, entry.coord, granted),
                       name=f"{self.host}.slog.{txn.txn_id}")

    def _run_entry(self, txn: Transaction, coord: str, granted):
        if granted is not None:
            yield granted  # 2PL: acquired in log order, FIFO per key
        needed = txn.external_needs(self.shard_id)
        inputs = self._inputs.setdefault(txn.txn_id, {})
        if not needed <= set(inputs):
            # Hold the locks while waiting for remote inputs: this is the
            # dependency blocking that costs SLOG its IRT tail (R1).
            event = self.sim.event()
            self._input_events[txn.txn_id] = (event, needed)
            self.stats.inc("input_waits")
            yield event
        outcome = execute_on_shard(txn, self.shard_id, self.shard, inputs)
        self.locks.release(txn.txn_id)
        self._inputs.pop(txn.txn_id, None)
        pushes: Dict[str, Dict[str, object]] = {}
        for var, value in outcome.outputs.items():
            for consumer in txn.consumers_of(var):
                pushes.setdefault(consumer, {})[var] = value
        for consumer, values in pushes.items():
            for node in self.system.catalog.replicas_of(consumer):
                if node != self.host:
                    self.endpoint.send(
                        node, SendOutput(txn_id=txn.txn_id, values=values)
                    )
        self.endpoint.send(coord, ExecDone(
            txn_id=txn.txn_id, shard=self.shard_id,
            outputs=outcome.outputs, aborted=outcome.aborted,
            reason=outcome.abort_reason,
        ))
        self.stats.inc("executed")
        self._trace("execute", txn=txn.txn_id)

    def on_send_output(self, src: str, payload: SendOutput) -> None:
        txn_id = payload.txn_id
        inputs = self._inputs.setdefault(txn_id, {})
        for var, value in payload.values.items():
            inputs.setdefault(var, value)
        waiting = self._input_events.get(txn_id)
        if waiting is not None:
            event, needed = waiting
            if needed <= set(inputs) and not event.triggered:
                del self._input_events[txn_id]
                event.succeed(None)


class SlogSystem(BaselineSystem):
    """SLOG deployment: nodes + per-region sequencers + the global orderer."""

    name = "slog"

    def _build_extras(self) -> None:
        self.orderer = SlogGlobalOrderer(self)
        self.sequencers: Dict[str, SlogSequencer] = {
            region: SlogSequencer(self, region) for region in self.topology.regions
        }

    def _build_node(self, host: str, shard: Shard, source: ClockSource, nid: int):
        return SlogNode(self, host, shard)

    def start(self) -> None:
        super().start()
        self.orderer.start()
