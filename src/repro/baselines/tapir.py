"""Tapir baseline: deferred-update (OCC) transactions over inconsistent
replication [Zhang et al., TOCS'18], as evaluated in the paper (§2, §6).

Shape preserved from the original:

* a transaction **executes first** — reads served by the *nearest* replica
  of each shard (cross-region reads for CRTs), writes buffered;
* then a single **prepare** round validates reads optimistically at every
  replica of every participating shard (majority OK per shard);
* the client-perceived latency ends at the prepare quorum — the commit
  round is asynchronous (Tapir's signature latency win, meeting R1 at low
  contention);
* any conflict **aborts and retries** the whole transaction with randomized
  exponential backoff — which is exactly why Tapir violates R2 and why its
  tail explodes under contention (Figs 5-7).

Serializability: OCC validation against per-key versions plus prepared-set
conflict checks gives the non-strict serializable variant the paper
evaluates ("we extended the implementation ... to a non-strict serializable
version").
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.baselines.base import BaselineSystem
from repro.errors import RpcTimeout
from repro.sim.clocks import ClockSource
from repro.sim.rpc import Endpoint, RpcRemoteError
from repro.storage.shard import Shard
from repro.txn.executor import execute_on_shard
from repro.txn.model import Transaction
from repro.txn.result import TxnResult
from repro.util import Stats
from repro.wire.messages import (
    Submit,
    TapirAbort,
    TapirCommit,
    TapirExec,
    TapirPrepare,
)

__all__ = ["TapirSystem", "TapirNode"]

MAX_RETRIES = 64

Key = Tuple[str, Tuple]


class _Prepared:
    __slots__ = ("reads", "writes")

    def __init__(self, reads: Dict[Key, int], writes: Set[Key]):
        self.reads = reads
        self.writes = writes


class TapirNode:
    """One shard replica + coordinator role."""

    def __init__(self, system: "TapirSystem", host: str, shard: Shard):
        self.system = system
        self.sim = system.sim
        self.host = host
        self.region = system.topology.region_of_node(host)
        self.shard = shard
        self.shard_id = shard.shard_id
        self.timing = system.timing
        self.endpoint = Endpoint(
            self.sim, system.network, host, self.region,
            service_time=self.timing.service_time,
            batch_window=self.timing.batch_window,
        )
        self.versions: Dict[Key, int] = {}
        self.prepared: Dict[str, _Prepared] = {}
        self.stats = Stats()
        self.tracer = None  # optional repro.sim.trace.Tracer
        self._rng = system.rng.stream(f"tapir.{host}")
        ep = self.endpoint
        ep.register("submit", self.on_submit)
        ep.register("tapir_exec", self.on_exec)
        ep.register("tapir_prepare", self.on_prepare)
        ep.register("tapir_commit", self.on_commit)
        ep.register("tapir_abort", self.on_abort)

    def _trace(self, kind: str, **fields) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, self.host, kind, **fields)

    # ------------------------------------------------------------------
    # Replica side
    # ------------------------------------------------------------------
    def on_exec(self, src: str, payload: TapirExec):
        txn: Transaction = payload.txn
        outcome = execute_on_shard(
            txn, self.shard_id, self.shard, payload.inputs,
            apply_writes=False, record=True,
            piece_indexes=payload.piece_indexes,
            preload_ops=payload.prior_ops,
        )
        read_versions = {k: self.versions.get(k, 0) for k in outcome.read_set}
        return {
            "outputs": outcome.outputs,
            "reads": read_versions,
            "ops": outcome.ops,
            "writes": sorted(set(outcome.write_set), key=repr),
            "aborted": outcome.aborted,
            "reason": outcome.abort_reason,
        }

    def on_prepare(self, src: str, payload: TapirPrepare):
        txn_id = payload.txn_id
        reads: Dict[Key, int] = payload.reads
        writes: Set[Key] = set(payload.writes)
        # Validation 1: read versions still current on this replica.
        for key, version in reads.items():
            if self.versions.get(key, 0) != version:
                self.stats.inc("vote_no_version")
                return {"vote": False}
        # Validation 2: no overlap with another prepared transaction
        # (write-write, read-write, or write-read).
        for other_id, other in self.prepared.items():
            if other_id == txn_id:
                continue
            if writes & other.writes:
                self.stats.inc("vote_no_ww")
                return {"vote": False}
            if writes & set(other.reads) or other.writes & set(reads):
                self.stats.inc("vote_no_rw")
                return {"vote": False}
        self.prepared[txn_id] = _Prepared(dict(reads), writes)
        self.stats.inc("vote_ok")
        return {"vote": True}

    def on_commit(self, src: str, payload: TapirCommit) -> None:
        txn_id = payload.txn_id
        self.prepared.pop(txn_id, None)
        for op, table, key, data in payload.ops_by_shard.get(self.shard_id, ()):
            if op == "update":
                self.shard.update(table, key, data)
            elif op == "insert":
                if self.shard.try_get(table, key) is None:
                    self.shard.insert(table, data)
            elif op == "delete":
                if self.shard.try_get(table, key) is not None:
                    self.shard.delete(table, key)
            self.versions[(table, key)] = self.versions.get((table, key), 0) + 1
        self.stats.inc("applied_commits")

    def on_abort(self, src: str, payload: TapirAbort) -> None:
        self.prepared.pop(payload.txn_id, None)

    # ------------------------------------------------------------------
    # Coordinator side
    # ------------------------------------------------------------------
    def on_submit(self, src: str, payload: Submit):
        txn = payload.txn
        txn.home_region = self.region
        regions = sorted({self.system.catalog.region_of_shard(s) for s in txn.shard_ids})
        txn.participating_regions = tuple(regions)
        is_crt = len(regions) > 1 or regions[0] != self.region
        retries = 0
        while True:
            outcome = yield from self._attempt(txn)
            status, outputs, reason = outcome
            if status == "committed":
                self.stats.inc("txn_committed")
                return TxnResult(txn.txn_id, txn.txn_type, True, is_crt,
                                 outputs=outputs, retries=retries)
            if status == "user_abort":
                self.stats.inc("txn_user_abort")
                return TxnResult(txn.txn_id, txn.txn_type, False, is_crt,
                                 abort_reason=reason, retries=retries)
            retries += 1
            self.stats.inc("txn_retry")
            self._trace("retry", txn=txn.txn_id, attempt=retries)
            if retries > MAX_RETRIES:
                self.stats.inc("txn_gaveup")
                return TxnResult(txn.txn_id, txn.txn_type, False, is_crt,
                                 abort_reason="conflict (gave up)", retries=retries)
            backoff = (
                self.timing.intra_region_rtt
                * min(2 ** min(retries, 5), 16)
                * self._rng.uniform(0.5, 1.5)
            )
            yield self.sim.timeout(backoff)

    def _attempt(self, txn: Transaction):
        catalog = self.system.catalog
        env: Dict[str, object] = {}
        # Execution phase, piece by piece in index (value-dependency) order.
        # Pieces of one shard see the transaction's earlier buffered writes
        # on that shard via preloaded ops.  Contiguous pieces on the same
        # shard are batched into one RPC.
        exec_reports: Dict[str, dict] = {}
        groups: List[Tuple[str, List[int]]] = []
        for piece in txn.pieces:
            if groups and groups[-1][0] == piece.shard_id:
                groups[-1][1].append(piece.index)
            else:
                groups.append((piece.shard_id, [piece.index]))
        for shard_id, indexes in groups:
            target = self._nearest_replica(shard_id)
            prior = exec_reports.get(shard_id)
            try:
                report = yield self.endpoint.call(
                    target,
                    TapirExec(txn=txn, inputs=dict(env), piece_indexes=indexes,
                              prior_ops=list(prior["ops"]) if prior else []),
                    timeout=4 * self.timing.cross_region_rtt,
                )
            except (RpcTimeout, RpcRemoteError):
                return ("conflict", {}, "exec timeout")
            if report["aborted"]:
                return ("user_abort", report["outputs"], report["reason"])
            env.update(report["outputs"])
            if prior is None:
                exec_reports[shard_id] = report
            else:
                # Merge this group's accesses into the shard's report.
                prior["reads"].update(report["reads"])
                prior["ops"] = list(prior["ops"]) + list(report["ops"])
                prior["writes"] = sorted(set(prior["writes"]) | set(report["writes"]), key=repr)
                prior["outputs"].update(report["outputs"])
        # Prepare phase: validate at every replica, majority OK per shard.
        votes: Dict[str, List[bool]] = {s: [] for s in txn.shard_ids}
        vote_events = []
        for shard_id in txn.shard_ids:
            report = exec_reports[shard_id]
            for replica in catalog.replicas_of(shard_id):
                ev = self.endpoint.call(
                    replica,
                    TapirPrepare(txn_id=txn.txn_id, reads=report["reads"],
                                 writes=report["writes"]),
                    timeout=4 * self.timing.cross_region_rtt,
                )
                vote_events.append((shard_id, ev))
        decided = self.sim.event()

        def check(shard_id: str):
            def on_vote(ev) -> None:
                if decided.triggered:
                    return
                votes[shard_id].append(bool(ev.ok and ev.value.get("vote")))
                yes = {s: sum(1 for v in votes[s] if v) for s in votes}
                no = {s: sum(1 for v in votes[s] if not v) for s in votes}
                quorums = {s: catalog.shard(s).quorum_size for s in votes}
                total = {s: len(catalog.replicas_of(s)) for s in votes}
                if all(yes[s] >= quorums[s] for s in votes):
                    decided.succeed(True)
                elif any(no[s] > total[s] - quorums[s] for s in votes):
                    decided.succeed(False)  # quorum of OKs impossible
            return on_vote

        for shard_id, ev in vote_events:
            ev.add_callback(check(shard_id))
        ok = yield decided
        if not ok:
            abort_msg = TapirAbort(txn_id=txn.txn_id)
            for shard_id in txn.shard_ids:
                for replica in catalog.replicas_of(shard_id):
                    self.endpoint.send(replica, abort_msg)
            return ("conflict", {}, "prepare conflict")
        # Commit asynchronously: the client reply does not wait for it.
        commit_msg = TapirCommit(
            txn_id=txn.txn_id,
            ops_by_shard={s: exec_reports[s]["ops"] for s in txn.shard_ids},
        )
        for shard_id in txn.shard_ids:
            for replica in catalog.replicas_of(shard_id):
                self.endpoint.send(replica, commit_msg)
        return ("committed", env, "")

    def _nearest_replica(self, shard_id: str) -> str:
        replicas = self.system.catalog.replicas_of(shard_id)
        if self.host in replicas:
            return self.host
        return self._rng.choice(list(replicas))

    def start(self) -> None:  # uniform lifecycle surface
        pass


class TapirSystem(BaselineSystem):
    """Tapir deployment: one TapirNode per shard replica."""

    name = "tapir"

    def _build_node(self, host: str, shard: Shard, source: ClockSource, nid: int):
        return TapirNode(self, host, shard)
