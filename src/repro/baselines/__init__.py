"""Baseline systems evaluated against DAST: Janus, Tapir, SLOG."""

from repro.baselines.base import BaselineSystem
from repro.baselines.janus import JanusNode, JanusSystem
from repro.baselines.slog import SlogGlobalOrderer, SlogNode, SlogSequencer, SlogSystem
from repro.baselines.tapir import TapirNode, TapirSystem

__all__ = [
    "BaselineSystem",
    "JanusNode",
    "JanusSystem",
    "SlogGlobalOrderer",
    "SlogNode",
    "SlogSequencer",
    "SlogSystem",
    "TapirNode",
    "TapirSystem",
]
