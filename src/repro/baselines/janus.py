"""Janus baseline [Mu et al., OSDI'16] — the paper's own codebase (§5, §6).

Shape preserved from the original:

* **PreAccept** round: every replica of every participating shard records
  the transaction and returns its locally-observed dependency set
  (conflicting transactions seen earlier on the same keys);
* **fast path**: if, for every shard, a quorum returned *identical*
  dependency sets, the coordinator commits immediately (1 WAN RTT);
* **slow path**: otherwise an **Accept** round fixes the union dependencies
  (one extra RTT) before commit;
* replicas execute a committed transaction after its dependencies execute
  (SCC-ordered for cycles), so Janus never aborts on conflict (R2 holds)
  but a conflicting IRT behind a CRT waits out the CRT's cross-region
  coordination/input — both blocking flavours of Figure 1 (R1 violated).

Simplification vs. the original: commit messages carry one level of the
dependency graph (each dep's shards and direct deps) instead of shipping
consolidated subgraphs.  Execution admits committed transactions SCC-by-SCC
(txn-id order inside an SCC) into a deterministic local serial order, then
runs their pieces under FIFO per-key locks with piece-granular input
waiting — the piece granularity mirrors Janus's executor and is what keeps
an input-waiting piece from stalling unrelated work.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.baselines.base import BaselineSystem
from repro.sim.clocks import ClockSource
from repro.sim.rpc import Endpoint
from repro.storage.locks import LockManager, LockMode
from repro.storage.shard import Shard
from repro.txn.executor import execute_on_shard
from repro.txn.model import Transaction
from repro.txn.result import TxnResult
from repro.util import Stats
from repro.wire.messages import (
    ExecDone,
    JanusAccept,
    JanusCommit,
    JanusPreaccept,
    SendOutput,
    Submit,
)

__all__ = ["JanusSystem", "JanusNode"]


class _JanusRec:
    __slots__ = (
        "txn", "coord", "status", "deps", "inputs", "relevant_deps",
        "pieces_left", "local_env", "outputs", "aborted", "abort_reason",
    )

    PREACCEPTED = "preaccepted"
    ACCEPTED = "accepted"
    COMMITTED = "committed"
    EXECUTED = "executed"

    def __init__(self, txn: Transaction, coord: str):
        self.txn = txn
        self.coord = coord
        self.status = self.PREACCEPTED
        # dep txn_id -> (shards tuple, direct-deps tuple)
        self.deps: Dict[str, Tuple] = {}
        self.inputs: Dict[str, object] = {}
        self.relevant_deps: Set[str] = set()
        self.pieces_left = 0
        self.local_env: Dict[str, object] = {}
        self.outputs: Dict[str, object] = {}
        self.aborted = False
        self.abort_reason = ""


class JanusNode:
    """One shard replica + coordinator role."""

    def __init__(self, system: "JanusSystem", host: str, shard: Shard):
        self.system = system
        self.sim = system.sim
        self.host = host
        self.region = system.topology.region_of_node(host)
        self.shard = shard
        self.shard_id = shard.shard_id
        self.timing = system.timing
        self.endpoint = Endpoint(
            self.sim, system.network, host, self.region,
            service_time=self.timing.service_time,
            batch_window=self.timing.batch_window,
        )
        self.records: Dict[str, _JanusRec] = {}
        self.executed_ids: Set[str] = set()
        self._enqueued: Set[str] = set()
        self._input_waiters: Dict[str, List] = {}
        self.locks = LockManager(self.sim)
        # key -> unexecuted txn ids that touched it (conflict tracking)
        self.key_last: Dict[object, List[str]] = {}
        self.coordinating: Dict[str, dict] = {}
        self.stats = Stats()
        self.tracer = None  # optional repro.sim.trace.Tracer
        ep = self.endpoint
        ep.register("submit", self.on_submit)
        ep.register("janus_preaccept", self.on_preaccept)
        ep.register("janus_accept", self.on_accept)
        ep.register("janus_commit", self.on_commit)
        ep.register("send_output", self.on_send_output)
        ep.register("exec_done", self.on_exec_done)

    def _trace(self, kind: str, **fields) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, self.host, kind, **fields)

    def start(self) -> None:
        pass

    # ------------------------------------------------------------------
    # Replica protocol
    # ------------------------------------------------------------------
    def on_preaccept(self, src: str, payload: JanusPreaccept):
        txn: Transaction = payload.txn
        if txn.txn_id in self.executed_ids:
            return {"deps": {}, "node": self.host}
        rec = self.records.get(txn.txn_id)
        if rec is None or rec.status == "stub":
            stashed = rec.inputs if rec is not None else {}
            rec = _JanusRec(txn, payload.coord)
            rec.inputs.update(stashed)
            self.records[txn.txn_id] = rec
            deps: Dict[str, Tuple] = {}
            for key in txn.lock_keys_on(self.shard_id):
                for dep_id in self.key_last.get(key, ()):
                    if dep_id != txn.txn_id and dep_id not in deps:
                        dep_rec = self.records.get(dep_id)
                        if dep_rec is not None and dep_rec.status != _JanusRec.EXECUTED:
                            deps[dep_id] = (
                                tuple(dep_rec.txn.shard_ids),
                                tuple(sorted(dep_rec.deps)),
                            )
                self.key_last.setdefault(key, []).append(txn.txn_id)
            rec.deps = deps
        return {"deps": rec.deps, "node": self.host}

    def on_accept(self, src: str, payload: JanusAccept):
        rec = self.records.get(payload.txn_id)
        if rec is not None and rec.status == _JanusRec.PREACCEPTED:
            rec.deps = payload.deps
            rec.status = _JanusRec.ACCEPTED
        return {"ok": True}

    def on_commit(self, src: str, payload: JanusCommit):
        txn_id = payload.txn_id
        if txn_id in self.executed_ids:
            return {"ok": True}
        rec = self.records.get(txn_id)
        if rec is None or rec.status == "stub":
            stashed = rec.inputs if rec is not None else {}
            rec = _JanusRec(payload.txn, payload.coord)
            rec.inputs.update(stashed)
            self.records[txn_id] = rec
            for key in rec.txn.lock_keys_on(self.shard_id):
                self.key_last.setdefault(key, []).append(txn_id)
        if rec.status in (_JanusRec.COMMITTED, _JanusRec.EXECUTED):
            return {"ok": True}
        rec.deps = payload.deps
        rec.status = _JanusRec.COMMITTED
        rec.relevant_deps = {
            dep_id
            for dep_id, (shards, _dd) in rec.deps.items()
            if self.shard_id in shards
        }
        self._try_execute()
        return {"ok": True}

    # ------------------------------------------------------------------
    # Dependency-ordered execution (SCC condensation, as in Janus §4)
    # ------------------------------------------------------------------
    def _try_execute(self) -> None:
        """Admit committed transactions into the deterministic local order.

        A committed transaction becomes *enqueueable* when every relevant
        dependency is already executed/enqueued or belongs to its own SCC.
        Whole SCCs enqueue atomically in txn-id order.  Once enqueued, a
        transaction's pieces acquire FIFO locks on their footprints and run
        **piece by piece** as locks and pushed inputs become available —
        piece granularity is what lets an input-waiting piece (which holds
        no conflicting locks, e.g. a history insert) avoid stalling the
        whole shard, exactly the behaviour the paper observed in Janus
        ("a dependent piece ... blocked by other CRTs' pieces waiting for
        inputs" costs one extra RTT rather than deadlocking).

        Determinism: the dependency sets come from the coordinator's commit
        message (identical at every replica), SCCs break ties by txn id,
        and the lock manager grants FIFO — so all replicas serialize
        conflicting pieces identically.
        """
        while True:
            candidates = {
                tid: rec for tid, rec in self.records.items()
                if rec.status == _JanusRec.COMMITTED and tid not in self._enqueued
            }
            if not candidates:
                return
            graph = nx.DiGraph()
            graph.add_nodes_from(candidates)
            blocked = set()
            for tid, rec in candidates.items():
                for dep_id in rec.relevant_deps:
                    if dep_id in self.executed_ids or dep_id in self._enqueued:
                        continue
                    if dep_id in candidates:
                        graph.add_edge(tid, dep_id)  # tid ordered after dep_id
                    else:
                        blocked.add(tid)  # dep not committed here yet
            condensed = nx.condensation(graph)
            comp_ready: Dict[int, bool] = {}
            progressed = False
            # Reverse topological order: dependencies (successors) first.
            for comp in reversed(list(nx.topological_sort(condensed))):
                members = sorted(condensed.nodes[comp]["members"])
                ready = (
                    all(comp_ready[s] for s in condensed.successors(comp))
                    and not any(m in blocked for m in members)
                )
                comp_ready[comp] = ready
                if ready:
                    for tid in members:
                        self._enqueue(candidates[tid])
                    progressed = True
            if not progressed:
                return

    def _enqueue(self, rec: _JanusRec) -> None:
        """Fix ``rec``'s position in the local serial order; launch pieces."""
        txn = rec.txn
        self._enqueued.add(txn.txn_id)
        pieces = txn.pieces_on(self.shard_id)
        rec.pieces_left = len(pieces)
        rec.local_env = dict(rec.inputs)
        for piece in pieces:
            wants = {key: LockMode.EXCLUSIVE for key in piece.lock_keys}
            owner = f"{txn.txn_id}#p{piece.index}"
            granted = self.locks.request(owner, wants) if wants else None
            self.sim.spawn(
                self._run_piece(rec, piece, owner, granted),
                name=f"{self.host}.janus.{owner}",
            )

    def _run_piece(self, rec: _JanusRec, piece, owner: str, granted):
        if granted is not None:
            yield granted
        while not set(piece.needs) <= (set(rec.local_env) | set(rec.inputs)):
            event = self.sim.event()
            self._input_waiters.setdefault(rec.txn.txn_id, []).append(event)
            self.stats.inc("piece_input_waits")
            yield event
        rec.local_env.update(rec.inputs)
        outcome = execute_on_shard(
            rec.txn, self.shard_id, self.shard, rec.local_env,
            piece_indexes=[piece.index],
        )
        if piece.lock_keys:
            self.locks.release(owner)
        rec.local_env.update(outcome.outputs)
        rec.outputs.update(outcome.outputs)
        self._wake_waiters(rec.txn.txn_id)
        if outcome.aborted:
            rec.aborted = True
            rec.abort_reason = outcome.abort_reason
        pushes: Dict[str, Dict[str, object]] = {}
        for var, value in outcome.outputs.items():
            for consumer in rec.txn.consumers_of(var):
                pushes.setdefault(consumer, {})[var] = value
        for consumer, values in pushes.items():
            for node in self.system.catalog.replicas_of(consumer):
                if node != self.host:
                    self.endpoint.send(
                        node, SendOutput(txn_id=rec.txn.txn_id, values=values)
                    )
        rec.pieces_left -= 1
        if rec.pieces_left == 0:
            self._finish_execution(rec)

    def _finish_execution(self, rec: _JanusRec) -> None:
        txn = rec.txn
        rec.status = _JanusRec.EXECUTED
        self.executed_ids.add(txn.txn_id)
        self.stats.inc("executed")
        self._trace("execute", txn=txn.txn_id)
        for key in txn.lock_keys_on(self.shard_id):
            entries = self.key_last.get(key)
            if entries and txn.txn_id in entries:
                entries.remove(txn.txn_id)
                if not entries:
                    del self.key_last[key]
        self.endpoint.send(rec.coord, ExecDone(
            txn_id=txn.txn_id, shard=self.shard_id,
            outputs=rec.outputs, aborted=rec.aborted,
            reason=rec.abort_reason,
        ))
        self.records.pop(txn.txn_id, None)
        self._enqueued.discard(txn.txn_id)
        self._input_waiters.pop(txn.txn_id, None)
        self._try_execute()

    def _wake_waiters(self, txn_id: str) -> None:
        waiters = self._input_waiters.pop(txn_id, [])
        for event in waiters:
            if not event.triggered:
                event.succeed(None)

    def on_send_output(self, src: str, payload: SendOutput) -> None:
        txn_id = payload.txn_id
        if txn_id in self.executed_ids:
            return
        rec = self.records.get(txn_id)
        if rec is None:
            rec = _JanusRec.__new__(_JanusRec)
            rec.txn = None  # early outputs before preaccept: stash inputs
            rec.coord = ""
            rec.status = "stub"
            rec.deps = {}
            rec.inputs = {}
            rec.relevant_deps = set()
            self.records[txn_id] = rec
        for var, value in payload.values.items():
            rec.inputs.setdefault(var, value)
        self._wake_waiters(txn_id)

    # ------------------------------------------------------------------
    # Coordinator role
    # ------------------------------------------------------------------
    def on_submit(self, src: str, payload: Submit):
        txn = payload.txn
        catalog = self.system.catalog
        txn.home_region = self.region
        regions = sorted({catalog.region_of_shard(s) for s in txn.shard_ids})
        txn.participating_regions = tuple(regions)
        is_crt = len(regions) > 1 or regions[0] != self.region
        timeout = 6 * self.timing.cross_region_rtt
        # PreAccept at every replica of every shard; quorum replies per shard.
        replies: Dict[str, List[dict]] = {s: [] for s in txn.shard_ids}
        quorum_ev = self.sim.event()

        def on_reply(shard_id: str):
            def cb(ev) -> None:
                if ev.ok:
                    replies[shard_id].append(ev.value)
                if not quorum_ev.triggered and all(
                    len(replies[s]) >= catalog.shard(s).quorum_size
                    for s in txn.shard_ids
                ):
                    quorum_ev.succeed(None)
            return cb

        for shard_id in txn.shard_ids:
            for replica in catalog.replicas_of(shard_id):
                self.endpoint.call(
                    replica, JanusPreaccept(txn=txn, coord=self.host),
                    timeout=timeout,
                ).add_callback(on_reply(shard_id))
        yield quorum_ev
        fast = True
        union: Dict[str, Tuple] = {}
        for shard_id in txn.shard_ids:
            dep_sets = [frozenset(r["deps"]) for r in replies[shard_id]]
            if any(ds != dep_sets[0] for ds in dep_sets[1:]):
                fast = False
            for r in replies[shard_id]:
                union.update(r["deps"])
        if fast:
            self.stats.inc("fast_path")
        else:
            self.stats.inc("slow_path")
            accept_events = []
            for shard_id in txn.shard_ids:
                for replica in catalog.replicas_of(shard_id):
                    accept_events.append(self.endpoint.call(
                        replica, JanusAccept(txn_id=txn.txn_id, deps=union),
                        timeout=timeout,
                    ))
            # Majority per shard; waiting for all-of a majority subset is
            # approximated by waiting for ceil(half) of all accept acks.
            needed = sum(catalog.shard(s).quorum_size for s in txn.shard_ids)
            got = [0]
            acc_ev = self.sim.event()
            for ev in accept_events:
                def acc_cb(e, got=got, acc_ev=acc_ev):
                    if e.ok:
                        got[0] += 1
                        if got[0] >= needed and not acc_ev.triggered:
                            acc_ev.succeed(None)
                ev.add_callback(acc_cb)
            yield acc_ev
        done = self.sim.event()
        self.coordinating[txn.txn_id] = {
            "shards": set(txn.shard_ids), "reports": {}, "done": done,
        }
        for shard_id in txn.shard_ids:
            for replica in catalog.replicas_of(shard_id):
                self.endpoint.call(
                    replica,
                    JanusCommit(txn_id=txn.txn_id, txn=txn, coord=self.host,
                                deps=union),
                    timeout=timeout,
                )
        yield done
        state = self.coordinating.pop(txn.txn_id)
        outputs: Dict[str, object] = {}
        aborted, reason = False, ""
        for report in state["reports"].values():
            outputs.update(report.outputs)
            if report.aborted:
                aborted, reason = True, report.reason
        return TxnResult(txn.txn_id, txn.txn_type, not aborted, is_crt,
                         outputs=outputs, abort_reason=reason)

    def on_exec_done(self, src: str, payload: ExecDone) -> None:
        state = self.coordinating.get(payload.txn_id)
        if state is None:
            return
        state["reports"].setdefault(payload.shard, payload)
        if set(state["reports"]) >= state["shards"] and not state["done"].triggered:
            state["done"].succeed(None)


class JanusSystem(BaselineSystem):
    """Janus deployment: one JanusNode per shard replica."""

    name = "janus"

    def _build_node(self, host: str, shard: Shard, source: ClockSource, nid: int):
        return JanusNode(self, host, shard)
