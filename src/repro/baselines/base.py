"""Shared scaffolding for the baseline systems (Janus, Tapir, SLOG).

Every system under test exposes the same surface as :class:`DastSystem`:
``submit(client, node, txn) -> Event[TxnResult]``, ``start()``, ``run()``,
the same topology/catalog, identically loaded shard replicas, and the same
measurement hooks — so the benchmark harness treats all four uniformly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.config import Topology
from repro.errors import ConfigError
from repro.sim.clocks import ClockSource
from repro.sim.kernel import Event, Simulator
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.rpc import Endpoint
from repro.sim.trace import trace_client_rpc
from repro.storage.catalog import Catalog
from repro.storage.shard import Shard
from repro.storage.table import TableSchema
from repro.txn.model import Transaction
from repro.util import Stats
from repro.wire.messages import Submit

__all__ = ["BaselineSystem"]


class BaselineSystem:
    """Common build-out; subclasses plug in their node class and extras."""

    name = "baseline"

    def __init__(
        self,
        topology: Topology,
        schemas: Sequence[TableSchema],
        loader: Callable[[Shard, int], None],
        seed: int = 1,
        clock_skew: float = 0.0,
    ):
        self.topology = topology
        self.timing = topology.config.timing
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        self.network = Network(
            self.sim,
            self.rng,
            intra_region_rtt=self.timing.intra_region_rtt,
            cross_region_rtt=self.timing.cross_region_rtt,
            drop_probability=self.timing.drop_probability,
        )
        self.catalog = Catalog(self._partition)
        self.schemas = list(schemas)
        self.loader = loader
        self.stats = Stats()
        self.submitted: Dict[str, Transaction] = {}
        # Observability attachments (None -> zero instrumentation work).
        self.tracer = None
        self.registry = None
        self.probes = None
        self.clock_sources: Dict[str, ClockSource] = {}
        self.nodes: Dict[str, object] = {}
        for region in topology.regions:
            for shard_id in topology.shards_in_region(region):
                self.catalog.add_shard(shard_id, region, topology.replicas_of(shard_id))
        skew_rng = self.rng.stream("clock-skew")
        self._build_extras()
        nid = 0
        for region in topology.regions:
            for node_host in topology.nodes_in_region(region):
                shard_id = topology.shard_of_node(node_host)
                shard = Shard(shard_id, self.schemas)
                self.loader(shard, topology.shard_index(shard_id))
                offset = skew_rng.uniform(-clock_skew, clock_skew) if clock_skew else 0.0
                source = ClockSource(self.sim, offset=offset)
                self.clock_sources[node_host] = source
                self.nodes[node_host] = self._build_node(node_host, shard, source, nid)
                nid += 1
        self.client_endpoints: Dict[str, Endpoint] = {}
        for client in topology.all_clients():
            region = client.split(".", 1)[0]
            self.client_endpoints[client] = Endpoint(self.sim, self.network, client, region)

    # -- subclass hooks ----------------------------------------------------
    def _build_extras(self) -> None:
        """Create system-specific infrastructure (orderers, sequencers)."""

    def _build_node(self, host: str, shard: Shard, source: ClockSource, nid: int):
        raise NotImplementedError

    def _partition(self, table: str, key) -> str:
        raise ConfigError(f"{self.name} resolves shards from transaction pieces")

    # -- uniform surface -----------------------------------------------------
    def start(self) -> None:
        for node in self.nodes.values():
            start = getattr(node, "start", None)
            if start:
                start()

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    def submit(self, client: str, node_host: str, txn: Transaction,
               timeout: Optional[float] = None) -> Event:
        endpoint = self.client_endpoints.get(client)
        if endpoint is None:
            region = client.split(".", 1)[0]
            endpoint = Endpoint(self.sim, self.network, client, region)
            self.client_endpoints[client] = endpoint
        self.submitted[txn.txn_id] = txn
        tracer = self.tracer
        if tracer is not None and tracer.causal:
            event = tracer.traced_submit(endpoint, client, node_host,
                                         Submit(txn=txn), txn.txn_id, timeout)
        else:
            event = endpoint.call(node_host, Submit(txn=txn), timeout=timeout)
        if tracer is not None:
            trace_client_rpc(self.sim, tracer, client, txn.txn_id, event)
        return event

    # -- fault injection -------------------------------------------------------
    def skew_clocks(self, prefix: str, delta_ms: float) -> int:
        """Step every clock whose host starts with ``prefix`` by ``delta_ms``."""
        touched = 0
        for host, source in self.clock_sources.items():
            if host.startswith(prefix):
                source.adjust(delta_ms)
                touched += 1
        return touched

    # -- observability ---------------------------------------------------------
    def attach_tracer(self, kinds=None, hosts=None, capacity: int = 200_000,
                      causal: bool = False):
        """Attach a system-wide tracer (client + node events)."""
        from repro.obs.bundle import attach_tracer

        return attach_tracer(self, kinds=kinds, hosts=hosts, capacity=capacity,
                             causal=causal)

    def attach_registry(self, registry=None):
        from repro.obs.bundle import attach_registry

        return attach_registry(self, registry=registry)

    def attach_obs(self, kinds=None, hosts=None, capacity: int = 200_000,
                   probe_interval: float = 50.0, causal: bool = False):
        from repro.obs.bundle import attach_obs

        return attach_obs(self, kinds=kinds, hosts=hosts, capacity=capacity,
                          probe_interval=probe_interval, causal=causal)

    # -- shared introspection -------------------------------------------------
    def replicas_digest(self, shard_id: str) -> List[str]:
        return [
            self.nodes[host].shard.digest()
            for host in self.catalog.replicas_of(shard_id)
            if host in self.nodes
        ]
