"""Closed-loop client drivers (§6: clients submit in closed loop to a
random replica of their home warehouse/shard)."""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.errors import NetworkError, RpcTimeout
from repro.sim.rpc import RpcRemoteError
from repro.txn.result import TxnResult
from repro.workloads.base import ClientBinding, Workload

__all__ = ["ClosedLoopClient", "spawn_clients"]


class ClosedLoopClient:
    """Submits one transaction at a time, forever, recording results."""

    def __init__(
        self,
        system,
        workload: Workload,
        binding: ClientBinding,
        on_result: Callable[[TxnResult], None],
        rng: random.Random,
        think_time: float = 0.0,
        request_timeout: float = 10000.0,
    ):
        self.system = system
        self.workload = workload
        self.binding = binding
        self.on_result = on_result
        self.rng = rng
        self.think_time = think_time
        self.request_timeout = request_timeout
        self.completed = 0
        self.failed = 0
        self._running = False

    def _sim(self):
        # The kernel owning this client under partitioned execution
        # (repro.sim.par): its region kernel, or its shard-partition
        # kernel under sub-region sharding; systems without partition
        # kernels fall back to the shared one.
        sim_for_host = getattr(self.system, "sim_for_host", None)
        if sim_for_host is not None:
            return sim_for_host(self.binding.client)
        sim_for = getattr(self.system, "sim_for", None)
        if sim_for is not None:
            return sim_for(self.binding.region)
        return self.system.sim

    def start(self) -> None:
        self._running = True
        self._sim().spawn(self._loop(), name=f"client.{self.binding.client}")

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        sim = self._sim()
        while self._running:
            txn = self.workload.next_transaction(self.binding, self.rng)
            replicas = [
                r for r in self.system.catalog.replicas_of(self.binding.home_shard)
                if not self.system.network.is_down(r)
            ]
            if not replicas:
                yield sim.timeout(50.0)
                continue
            target = self.rng.choice(replicas)
            submit_time = sim.now
            try:
                result = yield self.system.submit(
                    self.binding.client, target, txn, timeout=self.request_timeout
                )
            except (RpcTimeout, RpcRemoteError, NetworkError):
                self.failed += 1
                yield sim.timeout(10.0)  # back off before retrying elsewhere
                continue
            result.submit_time = submit_time
            result.finish_time = sim.now
            self.completed += 1
            self.on_result(result)
            if self.think_time:
                yield sim.timeout(self.think_time)


def spawn_clients(
    system,
    workload: Workload,
    on_result: Callable[[TxnResult], None],
    think_time: float = 0.0,
    limit_per_region: Optional[int] = None,
    request_timeout: float = 10000.0,
) -> List[ClosedLoopClient]:
    """Create and start one closed-loop client per topology client slot."""
    clients: List[ClosedLoopClient] = []
    per_region_count: dict = {}
    for binding in workload.bind_clients():
        if limit_per_region is not None:
            seen = per_region_count.get(binding.region, 0)
            if seen >= limit_per_region:
                continue
            per_region_count[binding.region] = seen + 1
        rng = system.rng.stream(f"client.{binding.client}")
        client = ClosedLoopClient(
            system, workload, binding, on_result, rng,
            think_time=think_time, request_timeout=request_timeout,
        )
        client.start()
        clients.append(client)
    return clients
