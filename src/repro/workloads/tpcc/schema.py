"""TPC-C schema (reduced cardinality, full table set).

One warehouse per shard, exactly as the paper deploys it ("we horizontally
partitioned the TPC-C database based on warehouse id, i.e., each shard is a
warehouse").  The item catalog is read-only and replicated into every shard,
the standard trick for warehouse-partitioned TPC-C.

Cardinalities are scaled down from the spec (100k items -> 100, 3k customers
per district -> configurable) — the protocols only see key-access patterns
and conflict rates, which the knobs preserve.
"""

from __future__ import annotations

from typing import List

from repro.storage.table import TableSchema

__all__ = [
    "tpcc_schemas",
    "DISTRICTS_PER_WAREHOUSE",
    "CUSTOMERS_PER_DISTRICT",
    "ITEMS",
    "INITIAL_ORDERS_PER_DISTRICT",
]

DISTRICTS_PER_WAREHOUSE = 4
CUSTOMERS_PER_DISTRICT = 30
ITEMS = 100
INITIAL_ORDERS_PER_DISTRICT = 5


def tpcc_schemas() -> List[TableSchema]:
    return [
        TableSchema(
            "warehouse",
            ["w_id", "w_name", "w_ytd"],
            ["w_id"],
        ),
        TableSchema(
            "district",
            ["d_w_id", "d_id", "d_name", "d_ytd", "d_next_o_id"],
            ["d_w_id", "d_id"],
        ),
        TableSchema(
            "customer",
            [
                "c_w_id", "c_d_id", "c_id", "c_first", "c_last", "c_credit",
                "c_balance", "c_ytd_payment", "c_payment_cnt", "c_delivery_cnt",
                "c_data",
            ],
            ["c_w_id", "c_d_id", "c_id"],
            indexes={"by_last": ["c_w_id", "c_d_id", "c_last"]},
        ),
        TableSchema(
            "history",
            ["h_id", "h_c_id", "h_c_w_id", "h_c_d_id", "h_w_id", "h_d_id", "h_amount", "h_data"],
            ["h_id"],
        ),
        TableSchema(
            "new_order",
            ["no_w_id", "no_d_id", "no_o_id"],
            ["no_w_id", "no_d_id", "no_o_id"],
        ),
        TableSchema(
            "orders",
            ["o_w_id", "o_d_id", "o_id", "o_c_id", "o_carrier_id", "o_ol_cnt", "o_entry_ts"],
            ["o_w_id", "o_d_id", "o_id"],
            indexes={"by_customer": ["o_w_id", "o_d_id", "o_c_id"]},
        ),
        TableSchema(
            "order_line",
            [
                "ol_w_id", "ol_d_id", "ol_o_id", "ol_number", "ol_i_id",
                "ol_supply_w_id", "ol_quantity", "ol_amount", "ol_delivery_ts",
            ],
            ["ol_w_id", "ol_d_id", "ol_o_id", "ol_number"],
        ),
        TableSchema(
            "item",
            ["i_id", "i_name", "i_price"],
            ["i_id"],
        ),
        TableSchema(
            "stock",
            ["s_w_id", "s_i_id", "s_quantity", "s_ytd", "s_order_cnt", "s_remote_cnt"],
            ["s_w_id", "s_i_id"],
        ),
    ]
