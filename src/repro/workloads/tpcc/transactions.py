"""The five TPC-C transaction types as DAST stored procedures.

Every body is deterministic given the transaction's parameters and the
database state (required by §4.1): all randomness is drawn at generation
time and baked into the parameters.

Cross-shard structure (matching the paper's analysis):

* **new-order** — home piece (district bump, order/new-order/order-line
  inserts) plus one *independent* stock piece per remote supply warehouse;
  no value dependencies.  ~1% of orders reference an invalid item and roll
  back via the conditional-abort protocol: every piece evaluates the same
  item-validity predicate (the item catalog is replicated on all shards).
* **payment** — home piece (warehouse/district YTD), customer piece at the
  customer's warehouse (60% selected *by last name* via a secondary index),
  then a history piece back at home that needs the resolved customer id —
  the cross-region **value dependency** the paper singles out as the cause
  of FCFS systems' IRT tail.
* **order-status / delivery / stock-level** — always single-warehouse (IRTs,
  Table 2 shows 0% CRT ratio for all three).
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional, Sequence, Tuple

from repro.txn.model import Piece, Transaction
from repro.workloads.tpcc.schema import DISTRICTS_PER_WAREHOUSE, ITEMS

__all__ = [
    "build_new_order",
    "build_payment",
    "build_order_status",
    "build_delivery",
    "build_stock_level",
]

_history_ids = itertools.count(1)


def _shard(topology, w_id: int) -> str:
    return topology.shard_name(w_id)


# ----------------------------------------------------------------------
# new-order
# ----------------------------------------------------------------------
def build_new_order(
    topology,
    w_id: int,
    d_id: int,
    c_id: int,
    lines: Sequence[Tuple[int, int, int]],
    now: float = 0.0,
) -> Transaction:
    """``lines``: (item_id, supply_w_id, quantity); item_id >= ITEMS marks
    the spec's 1% invalid-item rollback case."""
    item_ids = [i for i, _sw, _q in lines]

    def home_body(ctx) -> None:
        for i_id in item_ids:
            if ctx.store.try_get("item", (i_id,)) is None:
                ctx.abort("invalid item")
        ctx.store.get("warehouse", (w_id,))
        district = ctx.store.get("district", (w_id, d_id))
        o_id = district["d_next_o_id"]
        ctx.store.update("district", (w_id, d_id), {"d_next_o_id": o_id + 1})
        ctx.store.insert(
            "orders",
            {
                "o_w_id": w_id, "o_d_id": d_id, "o_id": o_id, "o_c_id": c_id,
                "o_carrier_id": None, "o_ol_cnt": len(lines), "o_entry_ts": now,
            },
        )
        ctx.store.insert("new_order", {"no_w_id": w_id, "no_d_id": d_id, "no_o_id": o_id})
        total = 0.0
        for number, (i_id, supply_w, qty) in enumerate(lines):
            price = ctx.store.get("item", (i_id,))["i_price"]
            amount = price * qty
            total += amount
            ctx.store.insert(
                "order_line",
                {
                    "ol_w_id": w_id, "ol_d_id": d_id, "ol_o_id": o_id,
                    "ol_number": number, "ol_i_id": i_id,
                    "ol_supply_w_id": supply_w, "ol_quantity": qty,
                    "ol_amount": amount, "ol_delivery_ts": None,
                },
            )
            if supply_w == w_id:
                _update_stock(ctx.store, w_id, i_id, qty, remote=False)
        ctx.put("o_id", o_id)
        ctx.put("total_amount", total)

    def stock_body_for(supply_w: int, supply_lines: List[Tuple[int, int]]) -> Callable:
        def body(ctx) -> None:
            for i_id in item_ids:
                # Same predicate as the home piece: items are replicated, so
                # every participant reaches the same rollback decision.
                if ctx.store.try_get("item", (i_id,)) is None:
                    ctx.abort("invalid item")
            for i_id, qty in supply_lines:
                _update_stock(ctx.store, supply_w, i_id, qty, remote=True)

        return body

    pieces = [
        Piece(
            0, _shard(topology, w_id), home_body,
            produces=("o_id", "total_amount"),
            name="new_order_home",
            lock_keys=(("district", w_id, d_id),),
        )
    ]
    remote_lines: dict = {}
    for i_id, supply_w, qty in lines:
        if supply_w != w_id:
            remote_lines.setdefault(supply_w, []).append((i_id, qty))
    for idx, (supply_w, supply) in enumerate(sorted(remote_lines.items()), start=1):
        pieces.append(
            Piece(
                idx, _shard(topology, supply_w), stock_body_for(supply_w, supply),
                name=f"new_order_stock_w{supply_w}",
                lock_keys=tuple(("stock", supply_w, i) for i, _q in supply),
            )
        )
    return Transaction(
        "new_order", pieces,
        params={"w_id": w_id, "d_id": d_id, "c_id": c_id, "lines": list(lines)},
    )


def _update_stock(store, w_id: int, i_id: int, qty: int, remote: bool) -> None:
    stock = store.get("stock", (w_id, i_id))
    quantity = stock["s_quantity"] - qty
    if quantity < 10:
        quantity += 91
    changes = {
        "s_quantity": quantity,
        "s_ytd": stock["s_ytd"] + qty,
        "s_order_cnt": stock["s_order_cnt"] + 1,
    }
    if remote:
        changes["s_remote_cnt"] = stock["s_remote_cnt"] + 1
    store.update("stock", (w_id, i_id), changes)


# ----------------------------------------------------------------------
# payment
# ----------------------------------------------------------------------
def build_payment(
    topology,
    w_id: int,
    d_id: int,
    c_w_id: int,
    c_d_id: int,
    amount: float,
    c_id: Optional[int] = None,
    c_last: Optional[str] = None,
) -> Transaction:
    """Exactly one of ``c_id`` (40%) / ``c_last`` (60%, by-name) is given."""
    if (c_id is None) == (c_last is None):
        raise ValueError("payment selects the customer by id XOR by last name")
    by_name = c_last is not None
    h_id = next(_history_ids)

    def home_body(ctx) -> None:
        warehouse = ctx.store.get("warehouse", (w_id,))
        ctx.store.update("warehouse", (w_id,), {"w_ytd": warehouse["w_ytd"] + amount})
        district = ctx.store.get("district", (w_id, d_id))
        ctx.store.update("district", (w_id, d_id), {"d_ytd": district["d_ytd"] + amount})
        ctx.put("w_name", warehouse["w_name"])
        ctx.put("d_name", district["d_name"])

    def customer_body(ctx) -> None:
        if by_name:
            keys = ctx.store.lookup("customer", "by_last", (c_w_id, c_d_id, c_last))
            if not keys:
                ctx.abort("no customer with that last name")
            key = keys[(len(keys)) // 2]  # spec: the "middle" match
            resolved = key[2]
        else:
            resolved = c_id
        customer = ctx.store.get("customer", (c_w_id, c_d_id, resolved))
        changes = {
            "c_balance": customer["c_balance"] - amount,
            "c_ytd_payment": customer["c_ytd_payment"] + amount,
            "c_payment_cnt": customer["c_payment_cnt"] + 1,
        }
        if customer["c_credit"] == "BC":
            data = f"{resolved},{c_d_id},{c_w_id},{d_id},{w_id},{amount:.2f};" + customer["c_data"]
            changes["c_data"] = data[:500]
        ctx.store.update("customer", (c_w_id, c_d_id, resolved), changes)
        ctx.put("resolved_c_id", resolved)

    def history_body(ctx) -> None:
        # By-id payments know the customer id from the parameters; only the
        # by-name path needs the id resolved at the customer's shard — which
        # is what makes ~60% of payment CRTs carry a value dependency
        # (Tables 3/4: "payment-by-name ... cross-region value dependency").
        resolved = ctx.inputs["resolved_c_id"] if by_name else c_id
        ctx.store.insert(
            "history",
            {
                "h_id": h_id,
                "h_c_id": resolved,
                "h_c_w_id": c_w_id, "h_c_d_id": c_d_id,
                "h_w_id": w_id, "h_d_id": d_id,
                "h_amount": amount,
                "h_data": f"{ctx.inputs['w_name']} {ctx.inputs['d_name']}",
            },
        )

    home_shard = _shard(topology, w_id)
    cust_shard = _shard(topology, c_w_id)
    customer_locks = (
        (("customer_block", c_w_id, c_d_id),)
        if by_name
        else (("customer_block", c_w_id, c_d_id), ("customer", c_w_id, c_d_id, c_id))
    )
    pieces = [
        Piece(
            0, home_shard, home_body,
            produces=("w_name", "d_name"),
            name="payment_home",
            lock_keys=(("warehouse", w_id), ("district", w_id, d_id)),
        ),
        Piece(
            1, cust_shard, customer_body,
            produces=("resolved_c_id",),
            name="payment_customer",
            lock_keys=customer_locks,
        ),
        Piece(
            2, home_shard, history_body,
            needs=(("resolved_c_id",) if by_name else ()) + ("w_name", "d_name"),
            name="payment_history",
        ),
    ]
    return Transaction(
        "payment", pieces,
        params={
            "w_id": w_id, "d_id": d_id, "c_w_id": c_w_id, "c_d_id": c_d_id,
            "amount": amount, "by_name": by_name,
        },
    )


# ----------------------------------------------------------------------
# order-status (read-only, always home)
# ----------------------------------------------------------------------
def build_order_status(
    topology,
    w_id: int,
    d_id: int,
    c_id: Optional[int] = None,
    c_last: Optional[str] = None,
) -> Transaction:
    if (c_id is None) == (c_last is None):
        raise ValueError("order-status selects the customer by id XOR by last name")

    def body(ctx) -> None:
        if c_last is not None:
            keys = ctx.store.lookup("customer", "by_last", (w_id, d_id, c_last))
            if not keys:
                ctx.abort("no customer with that last name")
            resolved = keys[len(keys) // 2][2]
        else:
            resolved = c_id
        customer = ctx.store.get("customer", (w_id, d_id, resolved))
        order_keys = ctx.store.lookup("orders", "by_customer", (w_id, d_id, resolved))
        ctx.put("c_balance", customer["c_balance"])
        if not order_keys:
            ctx.put("last_order", None)
            ctx.put("lines", [])
            return
        last_key = order_keys[-1]
        order = ctx.store.get("orders", last_key)
        lines = []
        for number in range(order["o_ol_cnt"]):
            line = ctx.store.try_get("order_line", (w_id, d_id, order["o_id"], number))
            if line is not None:
                lines.append((line["ol_i_id"], line["ol_quantity"], line["ol_amount"]))
        ctx.put("last_order", order["o_id"])
        ctx.put("lines", lines)

    piece = Piece(
        0, _shard(topology, w_id), body,
        produces=("c_balance", "last_order", "lines"),
        writes=False, name="order_status",
    )
    return Transaction("order_status", [piece], params={"w_id": w_id, "d_id": d_id})


# ----------------------------------------------------------------------
# delivery (home-only batch over all districts)
# ----------------------------------------------------------------------
def build_delivery(topology, w_id: int, carrier_id: int, now: float = 0.0) -> Transaction:
    def body(ctx) -> None:
        delivered = []
        for d_id in range(DISTRICTS_PER_WAREHOUSE):
            pending = ctx.store.scan_prefix("new_order", (w_id, d_id))
            if not pending:
                continue
            no_key = pending[0]  # oldest undelivered order
            o_id = no_key[2]
            ctx.store.delete("new_order", no_key)
            order = ctx.store.get("orders", (w_id, d_id, o_id))
            ctx.store.update(
                "orders", (w_id, d_id, o_id), {"o_carrier_id": carrier_id}
            )
            total = 0.0
            for number in range(order["o_ol_cnt"]):
                line = ctx.store.try_get("order_line", (w_id, d_id, o_id, number))
                if line is None:
                    continue
                total += line["ol_amount"]
                ctx.store.update(
                    "order_line", (w_id, d_id, o_id, number), {"ol_delivery_ts": now}
                )
            customer = ctx.store.get("customer", (w_id, d_id, order["o_c_id"]))
            ctx.store.update(
                "customer",
                (w_id, d_id, order["o_c_id"]),
                {
                    "c_balance": customer["c_balance"] + total,
                    "c_delivery_cnt": customer["c_delivery_cnt"] + 1,
                },
            )
            delivered.append((d_id, o_id))
        ctx.put("delivered", delivered)

    piece = Piece(
        0, _shard(topology, w_id), body,
        produces=("delivered",), name="delivery",
        lock_keys=tuple(
            key
            for d_id in range(DISTRICTS_PER_WAREHOUSE)
            for key in (("district", w_id, d_id), ("customer_block", w_id, d_id))
        ),
    )
    return Transaction("delivery", [piece], params={"w_id": w_id, "carrier": carrier_id})


# ----------------------------------------------------------------------
# stock-level (read-only, always home)
# ----------------------------------------------------------------------
def build_stock_level(topology, w_id: int, d_id: int, threshold: int) -> Transaction:
    def body(ctx) -> None:
        district = ctx.store.get("district", (w_id, d_id))
        next_o_id = district["d_next_o_id"]
        items = set()
        for o_id in range(max(0, next_o_id - 20), next_o_id):
            order = ctx.store.try_get("orders", (w_id, d_id, o_id))
            if order is None:
                continue
            for number in range(order["o_ol_cnt"]):
                line = ctx.store.try_get("order_line", (w_id, d_id, o_id, number))
                if line is not None:
                    items.add(line["ol_i_id"])
        low = sum(
            1
            for i_id in sorted(items)
            if ctx.store.get("stock", (w_id, i_id))["s_quantity"] < threshold
        )
        ctx.put("low_stock", low)

    piece = Piece(
        0, _shard(topology, w_id), body,
        produces=("low_stock",), writes=False, name="stock_level",
    )
    return Transaction(
        "stock_level", [piece], params={"w_id": w_id, "d_id": d_id, "threshold": threshold}
    )
