"""TPC-C workload generators: the standard mix and the payment-only stress.

Standard mix (Table 2 of the paper): ~44% new-order, ~44% payment, ~4% each
of order-status, delivery, stock-level.  Remote-warehouse probabilities per
the spec: ~1% of new-order lines supplied by a remote warehouse, 15% of
payments for a customer of a remote warehouse — remote warehouses are
uniform over all other warehouses, so the *cross-region* share follows the
topology (with many regions nearly every remote pick is cross-region,
matching Table 2's ~10%/~15% CRT ratios).

``PaymentOnlyWorkload`` pins the transaction type to payment and makes the
cross-region probability an explicit knob (Fig 6's 1%-99% sweep); customers
are selected by last name 60% of the time, which is what gives ~60% of CRTs
a cross-region value dependency (Table 4).
"""

from __future__ import annotations

import random
from typing import List

from repro.config import Topology
from repro.storage.shard import Shard
from repro.storage.table import TableSchema
from repro.txn.model import Transaction
from repro.workloads.base import ClientBinding, Workload
from repro.workloads.tpcc.loader import last_name, load_warehouse
from repro.workloads.tpcc.schema import (
    CUSTOMERS_PER_DISTRICT,
    DISTRICTS_PER_WAREHOUSE,
    ITEMS,
    tpcc_schemas,
)
from repro.workloads.tpcc.transactions import (
    build_delivery,
    build_new_order,
    build_order_status,
    build_payment,
    build_stock_level,
)

__all__ = ["TpccWorkload", "PaymentOnlyWorkload"]

# Existing last names: customers have c_last = last_name(c_id % 50) with
# c_id < CUSTOMERS_PER_DISTRICT, so names 0..min(CPD,50)-1 always resolve.
# Staying inside that range keeps payment-by-name free of cross-shard
# conditional aborts (the workload-level contract §4.1 requires).
_NAME_RANGE = min(CUSTOMERS_PER_DISTRICT, 50)


class TpccWorkload(Workload):
    """The standard TPC-C mix (Table 2 ratios, spec remote probabilities)."""

    name = "tpcc"

    MIX = (
        ("new_order", 0.44),
        ("payment", 0.44),
        ("order_status", 0.04),
        ("delivery", 0.04),
        ("stock_level", 0.04),
    )

    def __init__(
        self,
        topology: Topology,
        seed: int = 1,
        remote_line_prob: float = 0.01,
        remote_payment_prob: float = 0.15,
        by_name_prob: float = 0.60,
        invalid_item_prob: float = 0.01,
    ):
        super().__init__(topology, seed)
        self.remote_line_prob = remote_line_prob
        self.remote_payment_prob = remote_payment_prob
        self.by_name_prob = by_name_prob
        self.invalid_item_prob = invalid_item_prob

    def schemas(self) -> List[TableSchema]:
        return tpcc_schemas()

    def load(self, shard: Shard, shard_index: int) -> None:
        load_warehouse(shard, shard_index)

    # ------------------------------------------------------------------
    def next_transaction(self, binding: ClientBinding, rng: random.Random) -> Transaction:
        roll = rng.random()
        acc = 0.0
        kind = self.MIX[-1][0]
        for name, weight in self.MIX:
            acc += weight
            if roll < acc:
                kind = name
                break
        w_id = binding.home_shard_index
        if kind == "new_order":
            return self._new_order(w_id, rng)
        if kind == "payment":
            return self._payment(w_id, rng)
        if kind == "order_status":
            return self._order_status(w_id, rng)
        if kind == "delivery":
            return build_delivery(self.topology, w_id, carrier_id=rng.randint(1, 10))
        return build_stock_level(
            self.topology, w_id, rng.randrange(DISTRICTS_PER_WAREHOUSE),
            threshold=rng.randint(10, 20),
        )

    # ------------------------------------------------------------------
    def _other_warehouse(self, w_id: int, rng: random.Random) -> int:
        n = self.topology.num_shards
        if n < 2:
            return w_id
        while True:
            other = rng.randrange(n)
            if other != w_id:
                return other

    def _new_order(self, w_id: int, rng: random.Random) -> Transaction:
        d_id = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        c_id = rng.randrange(CUSTOMERS_PER_DISTRICT)
        ol_cnt = rng.randint(5, 15)
        lines = []
        for _ in range(ol_cnt):
            i_id = rng.randrange(ITEMS)
            supply = w_id
            if rng.random() < self.remote_line_prob:
                supply = self._other_warehouse(w_id, rng)
            lines.append((i_id, supply, rng.randint(1, 10)))
        if rng.random() < self.invalid_item_prob:
            # Spec: ~1% of new-orders reference an unused item and roll back.
            i_id, supply, qty = lines[-1]
            lines[-1] = (ITEMS + 10_000, supply, qty)
        return build_new_order(self.topology, w_id, d_id, c_id, lines)

    def _payment(self, w_id: int, rng: random.Random) -> Transaction:
        d_id = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        c_w_id = w_id
        if rng.random() < self.remote_payment_prob:
            c_w_id = self._other_warehouse(w_id, rng)
        c_d_id = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        amount = round(rng.uniform(1.0, 5000.0), 2)
        if rng.random() < self.by_name_prob:
            return build_payment(
                self.topology, w_id, d_id, c_w_id, c_d_id, amount,
                c_last=last_name(rng.randrange(_NAME_RANGE)),
            )
        return build_payment(
            self.topology, w_id, d_id, c_w_id, c_d_id, amount,
            c_id=rng.randrange(CUSTOMERS_PER_DISTRICT),
        )

    def _order_status(self, w_id: int, rng: random.Random) -> Transaction:
        d_id = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        if rng.random() < self.by_name_prob:
            return build_order_status(
                self.topology, w_id, d_id, c_last=last_name(rng.randrange(_NAME_RANGE))
            )
        return build_order_status(
            self.topology, w_id, d_id, c_id=rng.randrange(CUSTOMERS_PER_DISTRICT)
        )


class PaymentOnlyWorkload(TpccWorkload):
    """The paper's CRT-ratio stress test (Fig 6, Table 4)."""

    name = "tpcc_payment_only"

    def __init__(self, topology: Topology, seed: int = 1, crt_ratio: float = 0.1,
                 by_name_prob: float = 0.60):
        super().__init__(topology, seed, by_name_prob=by_name_prob)
        self.crt_ratio = crt_ratio

    def next_transaction(self, binding: ClientBinding, rng: random.Random) -> Transaction:
        w_id = binding.home_shard_index
        d_id = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        c_w_id = w_id
        if rng.random() < self.crt_ratio:
            remote = self.remote_shard_index(binding, rng)
            if remote is not None:
                c_w_id = remote
        c_d_id = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        amount = round(rng.uniform(1.0, 5000.0), 2)
        if rng.random() < self.by_name_prob:
            return build_payment(
                self.topology, w_id, d_id, c_w_id, c_d_id, amount,
                c_last=last_name(rng.randrange(_NAME_RANGE)),
            )
        return build_payment(
            self.topology, w_id, d_id, c_w_id, c_d_id, amount,
            c_id=rng.randrange(CUSTOMERS_PER_DISTRICT),
        )
