"""TPC-C: schema, loader, five transaction types, mix generators."""

from repro.workloads.tpcc.loader import last_name, load_warehouse
from repro.workloads.tpcc.schema import (
    CUSTOMERS_PER_DISTRICT,
    DISTRICTS_PER_WAREHOUSE,
    INITIAL_ORDERS_PER_DISTRICT,
    ITEMS,
    tpcc_schemas,
)
from repro.workloads.tpcc.transactions import (
    build_delivery,
    build_new_order,
    build_order_status,
    build_payment,
    build_stock_level,
)
from repro.workloads.tpcc.workload import PaymentOnlyWorkload, TpccWorkload

__all__ = [
    "CUSTOMERS_PER_DISTRICT",
    "DISTRICTS_PER_WAREHOUSE",
    "INITIAL_ORDERS_PER_DISTRICT",
    "ITEMS",
    "PaymentOnlyWorkload",
    "TpccWorkload",
    "build_delivery",
    "build_new_order",
    "build_order_status",
    "build_payment",
    "build_stock_level",
    "last_name",
    "load_warehouse",
    "tpcc_schemas",
]
