"""Deterministic TPC-C data population (one warehouse per shard)."""

from __future__ import annotations

import random

from repro.storage.shard import Shard
from repro.workloads.tpcc.schema import (
    CUSTOMERS_PER_DISTRICT,
    DISTRICTS_PER_WAREHOUSE,
    INITIAL_ORDERS_PER_DISTRICT,
    ITEMS,
)

__all__ = ["load_warehouse", "last_name"]

_SYLLABLES = (
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
)


def last_name(number: int) -> str:
    """The TPC-C spec's syllable-concatenation last-name generator."""
    return (
        _SYLLABLES[(number // 100) % 10]
        + _SYLLABLES[(number // 10) % 10]
        + _SYLLABLES[number % 10]
    )


def load_warehouse(shard: Shard, w_id: int) -> None:
    """Populate one warehouse shard; identical on every replica."""
    rng = random.Random(424242 + w_id)  # same seed per warehouse on all replicas
    shard.insert("warehouse", {"w_id": w_id, "w_name": f"W{w_id}", "w_ytd": 300000.0})
    for i in range(ITEMS):
        shard.insert(
            "item",
            {"i_id": i, "i_name": f"item-{i}", "i_price": 1.0 + (i % 90)},
        )
        shard.insert(
            "stock",
            {
                "s_w_id": w_id, "s_i_id": i,
                "s_quantity": 50 + (i * 7 + w_id) % 50,
                "s_ytd": 0, "s_order_cnt": 0, "s_remote_cnt": 0,
            },
        )
    for d_id in range(DISTRICTS_PER_WAREHOUSE):
        shard.insert(
            "district",
            {
                "d_w_id": w_id, "d_id": d_id, "d_name": f"D{w_id}.{d_id}",
                "d_ytd": 30000.0,
                "d_next_o_id": INITIAL_ORDERS_PER_DISTRICT,
            },
        )
        for c_id in range(CUSTOMERS_PER_DISTRICT):
            shard.insert(
                "customer",
                {
                    "c_w_id": w_id, "c_d_id": d_id, "c_id": c_id,
                    "c_first": f"First{c_id}",
                    "c_last": last_name(c_id % 50),
                    "c_credit": "BC" if rng.random() < 0.1 else "GC",
                    "c_balance": -10.0,
                    "c_ytd_payment": 10.0,
                    "c_payment_cnt": 1,
                    "c_delivery_cnt": 0,
                    "c_data": "",
                },
            )
        for o_id in range(INITIAL_ORDERS_PER_DISTRICT):
            c_id = rng.randrange(CUSTOMERS_PER_DISTRICT)
            ol_cnt = rng.randint(5, 10)
            shard.insert(
                "orders",
                {
                    "o_w_id": w_id, "o_d_id": d_id, "o_id": o_id,
                    "o_c_id": c_id,
                    "o_carrier_id": None,
                    "o_ol_cnt": ol_cnt,
                    "o_entry_ts": 0.0,
                },
            )
            shard.insert(
                "new_order", {"no_w_id": w_id, "no_d_id": d_id, "no_o_id": o_id}
            )
            for ol in range(ol_cnt):
                shard.insert(
                    "order_line",
                    {
                        "ol_w_id": w_id, "ol_d_id": d_id, "ol_o_id": o_id,
                        "ol_number": ol,
                        "ol_i_id": rng.randrange(ITEMS),
                        "ol_supply_w_id": w_id,
                        "ol_quantity": rng.randint(1, 10),
                        "ol_amount": rng.uniform(1.0, 100.0),
                        "ol_delivery_ts": None,
                    },
                )
