"""Named workload registry: serializable keys for workload factories.

The fleet orchestrator ships :class:`~repro.fleet.spec.TrialSpec` objects
to worker processes as plain JSON, so a trial cannot carry a workload
*callable* — it names a registry key plus a JSON-safe parameter dict, and
the worker rebuilds the factory on its side.  Every entry takes
``(topology, params)`` and defaults the workload seed to the topology's
seed, matching how ``repro.bench.experiments`` has always built workloads.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping

from repro.config import Topology
from repro.errors import ConfigError
from repro.workloads.base import Workload
from repro.workloads.tpca import TpcaWorkload
from repro.workloads.tpcc import PaymentOnlyWorkload, TpccWorkload
from repro.workloads.ycsb import YcsbWorkload

__all__ = ["WORKLOADS", "workload_factory", "register_workload"]


def _seeded(params: Mapping, topology: Topology) -> Dict:
    """Copy ``params`` with the workload seed defaulted to the topology seed."""
    out = dict(params)
    out.setdefault("seed", topology.config.seed)
    return out


WORKLOADS: Dict[str, Callable[[Topology, Mapping], Workload]] = {
    "tpcc": lambda topo, p: TpccWorkload(topo, **_seeded(p, topo)),
    "payment": lambda topo, p: PaymentOnlyWorkload(topo, **_seeded(p, topo)),
    "tpca": lambda topo, p: TpcaWorkload(topo, **_seeded(p, topo)),
    "ycsb": lambda topo, p: YcsbWorkload(topo, **_seeded(p, topo)),
}


def register_workload(name: str, make: Callable[[Topology, Mapping], Workload]) -> None:
    """Add a workload under ``name`` (tests and extensions)."""
    if name in WORKLOADS:
        raise ConfigError(f"workload {name!r} already registered")
    WORKLOADS[name] = make


def workload_factory(name: str, params: Mapping = ()) -> Callable[[Topology], Workload]:
    """A ``topology -> Workload`` factory for registry key ``name``."""
    try:
        make = WORKLOADS[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; registered: {sorted(WORKLOADS)}"
        ) from None
    params = dict(params) if params else {}
    return lambda topology: make(topology, params)
