"""TPC-A-style micro-benchmark (Fig 7 of the paper).

Each shard holds one *branch*, its tellers, and a block of accounts.  A
transaction applies the classic TPC-A update (account += delta, teller +=
delta, branch += delta, history append) on the client's home shard, and —
with probability ``crt_ratio`` — also moves value to an account on a remote
shard (an independent second piece, no value dependencies, exactly the
"only independent transactions" property §6.1 notes for TPC-A).

Account selection within a shard is zipfian with coefficient ``theta`` —
the conflict-rate knob swept in Fig 7.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List

from repro.config import Topology
from repro.storage.shard import Shard
from repro.storage.table import TableSchema
from repro.txn.model import Piece, Transaction
from repro.workloads.base import ClientBinding, Workload
from repro.workloads.zipf import ZipfGenerator

__all__ = ["TpcaWorkload"]

ACCOUNTS_PER_SHARD = 100
TELLERS_PER_SHARD = 10


def _account_update(account_key, teller_key, branch_key, delta, history_id):
    """The TPC-A update: account += delta, its teller += delta, history row.

    The branch row is read (not written) so the zipf coefficient over
    accounts remains the sole conflict knob, as in the paper's Fig 7 sweep.
    """

    def body(ctx):
        account = ctx.store.get("account", account_key)
        ctx.store.update("account", account_key, {"balance": account["balance"] + delta})
        teller = ctx.store.get("teller", teller_key)
        ctx.store.update("teller", teller_key, {"balance": teller["balance"] + delta})
        ctx.store.get("branch", branch_key)
        ctx.store.insert(
            "history",
            {"h_id": history_id, "a_id": account_key[1], "delta": delta},
        )
        ctx.put(f"balance_{account_key[0]}_{account_key[1]}", account["balance"] + delta)

    return body


class TpcaWorkload(Workload):
    """TPC-A account updates with a zipf conflict knob (Fig 7)."""

    name = "tpca"

    _history_ids = itertools.count(1)

    def __init__(
        self,
        topology: Topology,
        seed: int = 1,
        theta: float = 0.5,
        crt_ratio: float = 0.1,
    ):
        super().__init__(topology, seed)
        self.theta = theta
        self.crt_ratio = crt_ratio
        self._zipfs: Dict[int, ZipfGenerator] = {}

    # -- schema & data ---------------------------------------------------
    def schemas(self) -> List[TableSchema]:
        return [
            TableSchema("branch", ["b_id", "balance"], ["b_id"]),
            TableSchema("teller", ["b_id", "t_id", "balance"], ["b_id", "t_id"]),
            TableSchema("account", ["b_id", "a_id", "balance"], ["b_id", "a_id"]),
            TableSchema("history", ["h_id", "a_id", "delta"], ["h_id"]),
        ]

    def load(self, shard: Shard, shard_index: int) -> None:
        shard.insert("branch", {"b_id": shard_index, "balance": 100000})
        for t in range(TELLERS_PER_SHARD):
            shard.insert("teller", {"b_id": shard_index, "t_id": t, "balance": 10000})
        for a in range(ACCOUNTS_PER_SHARD):
            shard.insert("account", {"b_id": shard_index, "a_id": a, "balance": 1000})

    # -- generation --------------------------------------------------------
    def _pick_account(self, shard_index: int, rng: random.Random,
                      consumer_region: int = -1) -> int:
        # Zipf streams are keyed by (shard, consuming region) so a remote
        # pick never shares a stream with the shard's own region — the
        # partitioned kernel (repro.sim.par) executes regions in window
        # order, and a cross-region shared stream would be drawn in a
        # different order than the serial kernel.  Same-region picks keep
        # the original per-shard stream.
        spr = self.topology.config.shards_per_region
        if consumer_region < 0 or consumer_region == shard_index // spr:
            key = shard_index
            seed = self.seed * 7919 + shard_index
        else:
            key = (shard_index, consumer_region)
            seed = self.seed * 7919 + shard_index \
                + 7_000_003 * (consumer_region + 1)
        zipf = self._zipfs.get(key)
        if zipf is None:
            zipf = ZipfGenerator(ACCOUNTS_PER_SHARD, self.theta,
                                 random.Random(seed))
            self._zipfs[key] = zipf
        return zipf.sample()

    def next_transaction(self, binding: ClientBinding, rng: random.Random) -> Transaction:
        home = binding.home_shard_index
        delta = rng.randint(1, 100)
        account = self._pick_account(home, rng)
        teller = account % TELLERS_PER_SHARD
        pieces = [
            Piece(
                0,
                self.topology.shard_name(home),
                _account_update((home, account), (home, teller),
                                (home,), delta, next(self._history_ids)),
                produces=(f"balance_{home}_{account}",),
                name="home-update",
                lock_keys=(
                    ("account", home, account),
                    ("teller", home, teller),
                ),
            )
        ]
        txn_type = "tpca_local"
        if rng.random() < self.crt_ratio:
            remote = self.remote_shard_index(binding, rng)
            if remote is not None:
                spr = self.topology.config.shards_per_region
                raccount = self._pick_account(remote, rng, home // spr)
                rteller = raccount % TELLERS_PER_SHARD
                pieces.append(
                    Piece(
                        1,
                        self.topology.shard_name(remote),
                        _account_update(
                            (remote, raccount), (remote, rteller),
                            (remote,), -delta, next(self._history_ids),
                        ),
                        produces=(f"balance_{remote}_{raccount}",),
                        name="remote-update",
                        lock_keys=(
                            ("account", remote, raccount),
                            ("teller", remote, rteller),
                        ),
                    )
                )
                txn_type = "tpca_transfer"
        return Transaction(txn_type, pieces, params={"delta": delta})
