"""Workloads: TPC-C (default mix + payment-only), TPC-A, client drivers."""

from repro.workloads.base import ClientBinding, Workload
from repro.workloads.client import ClosedLoopClient, spawn_clients
from repro.workloads.registry import WORKLOADS, register_workload, workload_factory
from repro.workloads.tpca import TpcaWorkload
from repro.workloads.tpcc import PaymentOnlyWorkload, TpccWorkload
from repro.workloads.ycsb import YcsbWorkload
from repro.workloads.zipf import ZipfGenerator

__all__ = [
    "ClientBinding",
    "ClosedLoopClient",
    "PaymentOnlyWorkload",
    "TpcaWorkload",
    "TpccWorkload",
    "WORKLOADS",
    "Workload",
    "YcsbWorkload",
    "ZipfGenerator",
    "register_workload",
    "spawn_clients",
    "workload_factory",
]
