"""Workloads: TPC-C (default mix + payment-only), TPC-A, YCSB, client
drivers (closed-loop coroutines and the aggregate open-loop engine)."""

from repro.workloads.arrivals import ArrivalStream
from repro.workloads.base import ClientBinding, Workload
from repro.workloads.client import ClosedLoopClient, spawn_clients
from repro.workloads.openloop import OpenLoopConfig, OpenLoopEngine
from repro.workloads.registry import WORKLOADS, register_workload, workload_factory
from repro.workloads.tpca import TpcaWorkload
from repro.workloads.tpcc import PaymentOnlyWorkload, TpccWorkload
from repro.workloads.ycsb import YcsbWorkload
from repro.workloads.zipf import ZipfGenerator

__all__ = [
    "ArrivalStream",
    "ClientBinding",
    "ClosedLoopClient",
    "OpenLoopConfig",
    "OpenLoopEngine",
    "PaymentOnlyWorkload",
    "TpcaWorkload",
    "TpccWorkload",
    "WORKLOADS",
    "Workload",
    "YcsbWorkload",
    "ZipfGenerator",
    "register_workload",
    "spawn_clients",
    "workload_factory",
]
