"""Aggregate open-loop workload engine for very large simulated user bases.

Closed-loop drivers (:mod:`repro.workloads.client`) keep one coroutine per
client alive for the whole trial — fine for hundreds of clients, hopeless
for 100k+ simulated users.  This engine replaces the per-client coroutines
with **one arrival process per region** (:class:`~repro.workloads.arrivals.
ArrivalStream`): each region draws a deterministic sequence of arrival
instants for its whole user population, picks the "user" behind each
arrival from a zipf popularity distribution, and materialises the
:class:`~repro.txn.model.Transaction` object only at submit time.  Between
submissions no per-user state exists at all.

Latency is measured **open-loop**: anchored at the *intended* arrival
time, not the submit time.  When ``max_inflight_per_region`` caps
concurrency, arrivals that cannot submit immediately queue in a backlog
and their eventual latency includes the queueing delay — the measurement
is immune to coordinated omission (a stalled server cannot slow the
arrival process down and thereby hide its own tail).

Two submission paths:

* **Express** (DAST, ``replication == 1``, sole-participant IRT, tracing
  detached): bypasses the RPC envelope/coroutine machinery entirely.  The
  engine models the client→node network delay and the node's CPU queueing
  (``timing.service_time`` per submission) itself, calls
  :meth:`DastNode.submit_express`, and gets the outcome back through an
  in-process callback.  Transactions and results are recycled through
  :mod:`repro.txn.pool` on this path; byte/message accounting still flows
  through ``network.stats`` so traffic analyses keep working.
* **Generic**: everything else (CRTs, baselines, replication > 1, tracing
  attached) goes through ``system.submit`` exactly like a closed-loop
  client, one short-lived coroutine per in-flight transaction.

Determinism: all randomness comes from named streams of the system's
:class:`~repro.sim.rng.RngRegistry`, and pooled generation draws the same
RNG/id sequence as fresh generation, so a trial is byte-identical across
processes and with pools on or off (``tests/test_txn_pool.py``).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.errors import ConfigError, NetworkError, RpcTimeout
from repro.sim.rpc import RpcRemoteError
from repro.txn.pool import ResultPool, TransactionPool
from repro.workloads.arrivals import ArrivalStream
from repro.workloads.base import ClientBinding, Workload
from repro.workloads.zipf import ZipfGenerator

__all__ = ["OpenLoopConfig", "OpenLoopEngine"]

# The virtual wire size charged for an express reply (outcome + phase
# stamps); matches the order of magnitude of an encoded resp:submit.
_REPLY_BYTES = 80

# Uncapped express trials generate arrivals in chunks of this many per
# kernel event (see ``_pump_chunk``); per-arrival trials would spend a
# scheduler round-trip on every transaction.
_CHUNK = 32


class OpenLoopConfig:
    """JSON-safe knobs for one open-loop trial (see module docstring)."""

    _FIELDS = (
        "users_per_region", "txn_per_user_s", "model", "burst_mult",
        "dwell_low_ms", "dwell_high_ms", "diurnal_period_ms",
        "diurnal_trough", "flash_at_ms", "flash_duration_ms", "flash_mult",
        "flash_region", "flash_redirect", "user_theta",
        "max_inflight_per_region", "pool", "express", "keep_records",
    )

    def __init__(
        self,
        users_per_region: int = 1000,
        txn_per_user_s: float = 1.0,
        model: str = "poisson",
        burst_mult: float = 8.0,
        dwell_low_ms: float = 400.0,
        dwell_high_ms: float = 60.0,
        diurnal_period_ms: float = 0.0,
        diurnal_trough: float = 0.3,
        flash_at_ms: float = 0.0,
        flash_duration_ms: float = 0.0,
        flash_mult: float = 1.0,
        flash_region: str = "",
        flash_redirect: float = 0.0,
        user_theta: float = 0.9,
        max_inflight_per_region: int = 0,
        pool: bool = True,
        express: bool = True,
        keep_records: bool = False,
    ):
        if users_per_region <= 0:
            raise ConfigError("open loop needs users_per_region > 0")
        if txn_per_user_s <= 0:
            raise ConfigError("open loop needs txn_per_user_s > 0")
        if not 0.0 <= flash_redirect <= 1.0:
            raise ConfigError("flash_redirect must be in [0, 1]")
        if user_theta < 0:
            raise ConfigError("user_theta must be non-negative")
        if max_inflight_per_region < 0:
            raise ConfigError("max_inflight_per_region must be >= 0 (0 = unlimited)")
        self.users_per_region = users_per_region
        self.txn_per_user_s = txn_per_user_s
        self.model = model
        self.burst_mult = burst_mult
        self.dwell_low_ms = dwell_low_ms
        self.dwell_high_ms = dwell_high_ms
        self.diurnal_period_ms = diurnal_period_ms
        self.diurnal_trough = diurnal_trough
        self.flash_at_ms = flash_at_ms
        self.flash_duration_ms = flash_duration_ms
        self.flash_mult = flash_mult
        self.flash_region = flash_region
        self.flash_redirect = flash_redirect
        self.user_theta = user_theta
        self.max_inflight_per_region = max_inflight_per_region
        self.pool = pool
        self.express = express
        self.keep_records = keep_records
        # Validate the arrival knobs eagerly (rate 1.0 is a placeholder).
        self._stream_kwargs_check()

    def _stream_kwargs_check(self) -> None:
        import random

        ArrivalStream(1.0, random.Random(0), **self.stream_kwargs())

    def stream_kwargs(self) -> Dict:
        return dict(
            model=self.model, burst_mult=self.burst_mult,
            dwell_low_ms=self.dwell_low_ms, dwell_high_ms=self.dwell_high_ms,
            diurnal_period_ms=self.diurnal_period_ms,
            diurnal_trough=self.diurnal_trough,
            flash_at_ms=self.flash_at_ms,
            flash_duration_ms=self.flash_duration_ms,
            flash_mult=self.flash_mult,
        )

    def as_dict(self) -> Dict:
        return {name: getattr(self, name) for name in self._FIELDS}

    @classmethod
    def from_dict(cls, data) -> "OpenLoopConfig":
        unknown = sorted(set(data) - set(cls._FIELDS))
        if unknown:
            raise ConfigError(f"unknown open_loop keys: {unknown}")
        return cls(**dict(data))


class _Slot:
    """Per-in-flight-transaction scratch state (recycled)."""

    __slots__ = ("txn", "txn_id", "txn_type", "intended", "submit",
                 "client", "node_host", "node", "rs")


class _RegionState:
    """One region's arrival process, user population, and backlog."""

    __slots__ = ("region", "sim", "stream", "users", "sample_uid", "gen_rng",
                 "route_rng", "bindings", "next_arrival", "inflight",
                 "backlog", "arrivals", "launched", "flash", "sub_bytes",
                 "failed", "migrated")

    def __init__(self, region: str, sim, stream: ArrivalStream,
                 users: ZipfGenerator, gen_rng, route_rng,
                 bindings: List[ClientBinding]):
        self.region = region
        # The kernel this region's arrivals run on: the system's region
        # kernel under partitioned execution, the shared kernel otherwise.
        # Every schedule/now in the per-arrival hot path goes through this,
        # never through engine.sim (the control kernel, which lags inside
        # a partition window).
        self.sim = sim
        self.stream = stream
        self.users = users
        self.sample_uid = users.sampler()
        self.gen_rng = gen_rng
        self.route_rng = route_rng
        self.bindings = bindings
        self.next_arrival = 0.0
        self.inflight = 0
        self.backlog: deque = deque()
        self.arrivals = 0
        self.launched = 0
        # Per-region tallies (single-writer under the threaded backend):
        # wire bytes of express submits, and failed launches.
        self.sub_bytes = 0
        self.failed = 0
        # True only for the flash region of a trial with flash redirect
        # configured — lets the hot path skip the whole check elsewhere.
        self.flash = False
        # repro.topo client mobility: uid -> destination region for users
        # whose device moved.  Empty for every trial without a topology
        # plan, so the hot path pays one falsy check.
        self.migrated: Dict[int, str] = {}


class OpenLoopEngine:
    """Drives one open-loop trial; duck-types a client for the harness
    (``stop()``), so ``TrialResult.drain`` works unchanged."""

    def __init__(self, system, workload: Workload, config: OpenLoopConfig,
                 recorder, request_timeout: Optional[float] = None):
        self.system = system
        self.workload = workload
        self.cfg = config
        self.recorder = recorder
        self.request_timeout = request_timeout
        self.sim = system.sim
        self.network = system.network
        self.timing = system.topology.config.timing
        self._running = False
        self._until = 0.0
        self._tracer = getattr(system, "tracer", None)
        # Express eligibility is a whole-trial property: DAST only, no
        # replication (a sole replica makes every single-shard IRT
        # sole-participant), and no tracer (express has no RPC hops to
        # trace, so traced trials take the fully-instrumented path).
        self.express = bool(
            config.express
            and system.name == "dast"
            and system.topology.config.replication == 1
            and getattr(system, "tracer", None) is None
        )
        self.pool_enabled = bool(
            config.pool and self.express
            and hasattr(workload, "next_transaction_pooled")
        )
        self.txn_pool = TransactionPool()
        self.result_pool = ResultPool()
        self._free_slots: List[_Slot] = []
        self._pending: Dict[str, _Slot] = {}
        # Hot-loop caches (attribute chains hoisted out of per-arrival code).
        self._cap = config.max_inflight_per_region
        self._service = self.timing.service_time
        self._stats = self.network.stats
        # Per-node-host CPU occupancy for the express path: the node's
        # request pipeline is busy until this instant (ms).  ``stall``
        # pushes it forward to model a seized server.
        self._busy: Dict[str, float] = {}
        # Express traffic accounting, batched: the express path's four
        # stats events per transaction (submit send/receive, reply
        # send/receive) are tallied in these local counters and folded into
        # ``network.stats`` on ``stop()`` — final totals are identical to
        # per-call accounting, and nothing samples the stats mid-trial on
        # the express path (obs probes imply a tracer, which disables it).
        # Submit bytes accumulate on the _RegionState (one writer per
        # region); the per-host dicts below are per-key single-writer, as
        # every host belongs to exactly one region.
        self._sub_by_client: Dict[str, int] = {}   # submits sent per client
        self._recv_by_node: Dict[str, int] = {}    # submits received per node
        self._resp_by_node: Dict[str, int] = {}    # replies sent per node
        self._done_by_client: Dict[str, int] = {}  # replies received per client
        # Uncapped express trials batch arrival generation (``_pump_chunk``):
        # nothing gates a launch on completions (no backlog), every launch's
        # timing derives from its *intended* instant, and each region's
        # arrivals touch only that region's nodes — so a chunk of arrivals
        # can be materialised in one kernel event without changing any
        # simulated time, RNG draw order, or busy-queue accounting.
        self._chunked = bool(self.express and self._cap == 0)
        # Large trials cannot afford to retain every submitted txn /
        # executed-log tuple; both ledgers only feed post-hoc audits.
        if not config.keep_records:
            if hasattr(system, "track_submitted"):
                system.track_submitted = False
            for node in getattr(system, "nodes", {}).values():
                if hasattr(node, "keep_executed_log"):
                    node.keep_executed_log = False
        rate = config.users_per_region * config.txn_per_user_s / 1000.0
        flash_region = config.flash_region
        regions = system.topology.regions
        if flash_region and flash_region not in regions:
            raise ConfigError(f"flash_region {flash_region!r} not in topology")
        if not flash_region and regions:
            flash_region = regions[0]
        by_region: Dict[str, List[ClientBinding]] = {}
        for binding in workload.bind_clients():
            by_region.setdefault(binding.region, []).append(binding)
        self.regions: List[_RegionState] = []
        self._rs_by_region: Dict[str, _RegionState] = {}
        self._sys_stats = getattr(system, "stats", None)
        for region in regions:
            bindings = by_region.get(region)
            if not bindings:
                if not system.topology.shards_in_region(region):
                    # Spare region (repro.topo): empty until a region_join
                    # reshards work onto it; it drives no arrivals.
                    continue
                raise ConfigError(f"region {region!r} has no client slots")
            kwargs = config.stream_kwargs()
            if region != flash_region:
                # The flash crowd hits one region; others keep base knobs.
                kwargs["flash_duration_ms"] = 0.0
                kwargs["flash_mult"] = 1.0
            self.regions.append(_RegionState(
                region,
                system.sim_for(region) if hasattr(system, "sim_for") else system.sim,
                ArrivalStream(rate, system.rng.stream(f"openloop.arrivals.{region}"),
                              **kwargs),
                ZipfGenerator(config.users_per_region, config.user_theta,
                              system.rng.stream(f"openloop.users.{region}")),
                system.rng.stream(f"openloop.gen.{region}"),
                system.rng.stream(f"openloop.route.{region}"),
                bindings,
            ))
            self._rs_by_region[region] = self.regions[-1]
        self.flash_region = flash_region
        for rs in self.regions:
            rs.flash = bool(
                rs.region == flash_region and config.flash_redirect
                and config.flash_duration_ms > 0
            )
        # (host, node object) per home shard (express path; replication == 1).
        self._node_of_shard: Dict[str, tuple] = {}
        # Cached client<->node one-way delays, valid while intra-region
        # jitter is off (the delay model is then deterministic per pair).
        self._delay_cache: Dict[tuple, float] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, until: float) -> None:
        """Schedule each region's arrival process up to virtual ``until``."""
        self._running = True
        self._until = until
        self._tracer = getattr(self.system, "tracer", None)
        pump = self._pump_chunk if self._chunked else self._pump
        for rs in self.regions:
            first = rs.stream.next_after(rs.sim.now)
            rs.next_arrival = first
            if first <= until:
                rs.sim.schedule_abs(first, pump, rs)

    def stop(self) -> None:
        self._running = False
        self.flush_stats()

    def flush_stats(self) -> None:
        """Fold the express path's batched traffic tallies into
        ``network.stats``.  Totals are exactly what per-call accounting
        would have produced; the tallies reset, so calling this again (the
        harness flushes before summarising, ``stop`` flushes again after
        the drain) only adds what happened in between."""
        stats = self._stats
        sub_bytes = 0
        for rs in self.regions:
            sub_bytes += rs.sub_bytes
            rs.sub_bytes = 0
        n_sub = sum(self._sub_by_client.values())
        n_resp = sum(self._resp_by_node.values())
        if not n_sub and not n_resp:
            return
        resp_bytes = n_resp * _REPLY_BYTES
        stats.messages_sent += n_sub + n_resp
        stats.bytes_sent += sub_bytes + resp_bytes
        for name, count, nbytes in (("submit", n_sub, sub_bytes),
                                    ("resp:submit", n_resp, resp_bytes)):
            if count:
                stats.per_type_sent[name] = stats.per_type_sent.get(name, 0) + count
                stats.per_type_bytes[name] = stats.per_type_bytes.get(name, 0) + nbytes
        sent = stats.per_host_sent
        recv = stats.per_host_received
        for tally, target in ((self._sub_by_client, sent),
                              (self._resp_by_node, sent),
                              (self._recv_by_node, recv),
                              (self._done_by_client, recv)):
            for host, n in tally.items():
                target[host] = target.get(host, 0) + n
            tally.clear()

    def stall(self, node_host: str, busy_ms: float) -> None:
        """Seize ``node_host``'s request CPU for ``busy_ms`` from now —
        the coordinated-omission fault used by the regression test."""
        now = self.sim.now
        self._busy[node_host] = max(self._busy.get(node_host, now), now) + busy_ms

    # ------------------------------------------------------------------
    # Arrival loop
    # ------------------------------------------------------------------
    def _pump(self, rs: _RegionState) -> None:
        if self._running:
            rs.arrivals += 1
            uid = rs.sample_uid()
            now = rs.sim.now
            cap = self._cap
            if cap and rs.inflight >= cap:
                rs.backlog.append((now, uid))
            else:
                self._launch(rs, now, uid, now)
        nxt = rs.stream.next_after(rs.next_arrival)
        rs.next_arrival = nxt
        if self._running and nxt <= self._until:
            rs.sim.schedule_abs(nxt, self._pump, rs)

    def _pump_chunk(self, rs: _RegionState) -> None:
        """Uncapped express arrival loop: materialise up to ``_CHUNK``
        consecutive arrivals per kernel event.  Every launch computes its
        delivery schedule from the *intended* instant ``t`` (not
        ``sim.now``), so the simulated outcome is instant-for-instant what
        per-arrival pumping would produce — only the number of scheduler
        events changes."""
        if not self._running:
            return
        t = rs.next_arrival  # first iteration: == sim.now
        until = self._until
        sample_uid = rs.sample_uid
        next_after = rs.stream.next_after
        launch = self._launch
        for _ in range(_CHUNK):
            rs.arrivals += 1
            launch(rs, t, sample_uid(), t)
            nxt = next_after(t)
            rs.next_arrival = nxt
            if nxt > until:
                return
            t = nxt
        rs.sim.schedule_abs(t, self._pump_chunk, rs)

    def _drain(self, rs: _RegionState) -> None:
        cap = self._cap
        backlog = rs.backlog
        while backlog and (not cap or rs.inflight < cap):
            intended, uid = backlog.popleft()
            self._launch(rs, intended, uid, rs.sim.now)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _launch(self, rs: _RegionState, intended: float, uid: int,
                submit: float) -> None:
        """Generate and submit one arrival.  ``submit`` is the simulated
        instant the client sends (== ``intended`` except for backlog drains,
        where it is the drain time); under chunked pumping it may lie ahead
        of ``sim.now``, so all timing below derives from it."""
        binding = rs.bindings[uid % len(rs.bindings)]
        if (rs.flash and rs.stream.in_flash(submit)
                and rs.gen_rng.random() < self.cfg.flash_redirect):
            # Flash crowd: the surge concentrates on the region's first
            # shard (whose zipf-hot keys become system-wide hot keys).
            binding = rs.bindings[0]
        if self.pool_enabled:
            txn = self.workload.next_transaction_pooled(
                binding, rs.gen_rng, self.txn_pool)
        else:
            txn = self.workload.next_transaction(binding, rs.gen_rng)
        rs.inflight += 1
        rs.launched += 1
        slot = self._free_slots.pop() if self._free_slots else _Slot()
        slot.txn = txn
        slot.txn_id = txn.txn_id
        slot.txn_type = txn.txn_type
        slot.intended = intended
        slot.submit = submit
        slot.client = binding.client
        slot.rs = rs
        migrated_to = rs.migrated.get(uid) if rs.migrated else None
        tracer = self._tracer
        if tracer is not None:
            if migrated_to is not None:
                tracer.emit(submit, binding.client, "arrival",
                            txn=txn.txn_id, intended=intended,
                            region=rs.region, migrated=migrated_to)
            else:
                tracer.emit(submit, binding.client, "arrival",
                            txn=txn.txn_id, intended=intended, region=rs.region)
        if migrated_to is not None:
            if submit > rs.sim.now:
                rs.sim.schedule_abs(submit, self._launch_handoff, rs, slot,
                                    binding, migrated_to)
            else:
                self._launch_handoff(rs, slot, binding, migrated_to)
            return
        if (self.express and len(txn.pieces) == 1
                and txn.pieces[0].shard_id == binding.home_shard):
            self._launch_express(rs, slot, binding.home_shard)
        elif submit > rs.sim.now:
            # Chunked pumping generated this (rare, e.g. CRT) arrival ahead
            # of simulated time; the RPC path runs through live coroutines,
            # so defer the spawn to the submission instant.
            rs.sim.schedule_abs(submit, self._launch_rpc, rs, slot,
                                binding.home_shard)
        else:
            self._launch_rpc(rs, slot, binding.home_shard)

    # -- express path ----------------------------------------------------
    def _node_for(self, shard: str) -> tuple:
        info = self._node_of_shard.get(shard)
        if info is None:
            host = self.system.catalog.replicas_of(shard)[0]
            info = (host, self.system.nodes[host])
            self._node_of_shard[shard] = info
        return info

    def _delay(self, src: str, dst: str) -> float:
        """One-way delay, cached per pair while the model is deterministic
        (client and home node share a region, so only intra-region jitter
        can make the sample random)."""
        if self.network.intra_jitter:
            return self.network.one_way_delay(src, dst)
        key = (src, dst)
        delay = self._delay_cache.get(key)
        if delay is None:
            delay = self.network.one_way_delay(src, dst)
            self._delay_cache[key] = delay
        return delay

    def _launch_express(self, rs: _RegionState, slot: _Slot, shard: str) -> None:
        node_host, node = self._node_for(shard)
        slot.node_host = node_host
        slot.node = node
        txn = slot.txn
        client = slot.client
        rs.sub_bytes += txn.wire_size()
        try:
            self._sub_by_client[client] += 1
        except KeyError:
            self._sub_by_client[client] = 1
        arrive = slot.submit + self._delay(client, node_host)
        # CPU queueing at the node: one submission costs service_time of
        # the request pipeline; a seized pipeline (``stall``) delays every
        # later submission, which is exactly what the coordinated-omission
        # test measures.
        start = max(arrive, self._busy.get(node_host, 0.0))
        self._busy[node_host] = start + self._service
        self._pending[slot.txn_id] = slot
        rs.sim.schedule_abs(start, self._deliver_express, rs, slot)

    def _deliver_express(self, rs: _RegionState, slot: _Slot) -> None:
        node_host = slot.node_host
        try:
            self._recv_by_node[node_host] += 1
        except KeyError:
            self._recv_by_node[node_host] = 1
        if not slot.node.submit_express(slot.txn, self._exec_done):
            self._pending.pop(slot.txn_id, None)
            self._finish_failure(rs, slot)

    def _exec_done(self, rec, outcome) -> None:
        """Express completion callback, invoked inside ``DastNode._execute``.

        Deliberately minimal: the reply trip back to the client is a
        scheduled event, so backlog draining (which submits new work) never
        re-enters the node's execution stack.
        """
        slot = self._pending.pop(rec.txn_id)
        self.txn_pool.release(slot.txn)
        slot.txn = None
        node_host = slot.node_host
        try:
            self._resp_by_node[node_host] += 1
        except KeyError:
            self._resp_by_node[node_host] = 1
        client = slot.client
        delay = self._delay(node_host, client)
        if not self._cap:
            # Uncapped: nothing is gated on this completion (no backlog to
            # drain), so fold the reply leg in arithmetically instead of
            # paying a kernel event — the recorded finish time is identical,
            # and no TxnResult is materialised at all.
            try:
                self._done_by_client[client] += 1
            except KeyError:
                self._done_by_client[client] = 1
            rs = slot.rs
            self.recorder.record_irt(
                not outcome.aborted, slot.intended, slot.submit,
                rs.sim.now + delay, rs.region)
            rs.inflight -= 1
            self._free_slots.append(slot)
            return
        slot.rs.sim.schedule(delay, self._complete_express, slot,
                             outcome.aborted, outcome.abort_reason)

    def _complete_express(self, slot: _Slot, aborted: bool, reason: str) -> None:
        client = slot.client
        try:
            self._done_by_client[client] += 1
        except KeyError:
            self._done_by_client[client] = 1
        result = self.result_pool.acquire(
            slot.txn_id, slot.txn_type, not aborted, False, abort_reason=reason)
        result.submit_time = slot.submit
        result.finish_time = slot.rs.sim.now
        rs = slot.rs
        self.recorder.record_result(result, slot.intended, rs.region)
        self.result_pool.release(result)
        rs.inflight -= 1
        self._free_slots.append(slot)
        self._drain(rs)

    # -- client mobility (repro.topo) ------------------------------------
    def migrate_users(self, src: str, dst: str, fraction: float) -> int:
        """Re-home ``fraction`` of ``src``'s user population to ``dst``.

        A migrated user keeps its data (and zipf identity) in ``src`` but
        submits through a coordinator in ``dst`` — the coordinator sees a
        foreign home region and runs the full CRT protocol, so mobility
        converts the user's IRTs into CRT bursts with zero protocol
        changes.  Deterministic: the uid sample comes from the named
        stream ``topo.migrate.{src}.{dst}``, which continues across
        repeated migrations of the same pair.

        Users are sampled by *activity weight* (the same zipf law that
        drives arrivals), not uniformly: mobile devices migrate in
        proportion to how often they submit, and a uniform draw over a
        skewed population would mostly pick users who never arrive
        during the trial, making the migration invisible."""
        rs = self._rs_by_region.get(src)
        if rs is None or src == dst or fraction <= 0:
            return 0
        users = self.cfg.users_per_region
        count = min(users, max(1, int(users * fraction)))
        rng = self.system.rng.stream(f"topo.migrate.{src}.{dst}")
        sample = ZipfGenerator(users, self.cfg.user_theta, rng).sampler()
        picked: set = set()
        for _ in range(10 * users):
            if len(picked) >= count:
                break
            picked.add(sample())
        while len(picked) < count:  # zipf tail too thin: top up uniformly
            picked.add(rng.randrange(users))
        moved = 0
        for uid in sorted(picked):
            if rs.migrated.get(uid) != dst:
                moved += 1
            rs.migrated[uid] = dst
        if self._sys_stats is not None:
            self._sys_stats.inc("topo_migrated_users", moved)
        return moved

    def _launch_handoff(self, rs: _RegionState, slot: _Slot,
                        binding: ClientBinding, dst_region: str) -> None:
        """Submit a migrated user's transaction via its *new* region."""
        shards = self.system.catalog.shards_in_region(dst_region)
        if not shards:
            # The destination emptied out (region_leave); coordinate at
            # home again until the next migration event says otherwise.
            self._launch_rpc(rs, slot, binding.home_shard)
            return
        dst_rs = self._rs_by_region.get(dst_region)
        if dst_rs is not None and dst_rs.bindings:
            # The device is physically in the new region now: charge the
            # client<->coordinator legs at that region's delays.
            slot.client = dst_rs.bindings[0].client
        if self._sys_stats is not None:
            self._sys_stats.inc("topo_handoff_txns")
        shard = shards[0] if len(shards) == 1 else rs.route_rng.choice(shards)
        self._launch_rpc(rs, slot, shard)

    # -- generic RPC path ------------------------------------------------
    def _launch_rpc(self, rs: _RegionState, slot: _Slot, shard: str) -> None:
        replicas = [
            r for r in self.system.catalog.replicas_of(shard)
            if not self.network.is_down(r)
        ]
        if not replicas:
            self._finish_failure(rs, slot)
            return
        slot.node_host = rs.route_rng.choice(replicas)
        rs.sim.spawn(self._rpc(rs, slot), name=f"ol.{slot.txn_id}")

    def _rpc(self, rs: _RegionState, slot: _Slot):
        event = self.system.submit(slot.client, slot.node_host, slot.txn,
                                   timeout=self.request_timeout)
        tracer = self._tracer
        if tracer is not None and getattr(tracer, "causal", False):
            # Anchor the causal root at the *intended* arrival: the critical
            # path then covers the client backlog wait too (attributed as
            # client-queue@client), matching the open-loop latency the
            # recorder reports.
            root = tracer.roots.get(slot.txn_id)
            if root is not None and slot.intended < root.t0:
                root.t0 = slot.intended
        try:
            result = yield event
        except (RpcTimeout, RpcRemoteError, NetworkError):
            self._finish_failure(rs, slot)
            return
        result.submit_time = slot.submit
        result.finish_time = rs.sim.now
        self.recorder.record_result(result, slot.intended, rs.region)
        rs.inflight -= 1
        slot.txn = None
        self._free_slots.append(slot)
        self._drain(rs)

    # -- shared ----------------------------------------------------------
    @property
    def failed(self) -> int:
        return sum(rs.failed for rs in self.regions)

    def _finish_failure(self, rs: _RegionState, slot: _Slot) -> None:
        rs.failed += 1
        self.recorder.record_failure(rs.region)
        self.txn_pool.release(slot.txn)
        slot.txn = None
        rs.inflight -= 1
        self._free_slots.append(slot)
        self._drain(rs)
