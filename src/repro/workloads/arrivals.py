"""Seeded open-loop arrival processes: Poisson, MMPP, diurnal, flash crowd.

An :class:`ArrivalStream` produces a deterministic, strictly increasing
sequence of arrival instants (virtual ms) for one region's aggregate user
population.  The base process is Poisson at ``rate_per_ms``; three
modulations compose multiplicatively on the instantaneous rate:

* **MMPP** (``model="mmpp"``): a 2-state Markov-modulated Poisson process.
  The stream alternates between a calm and a burst state with exponential
  dwell times; the burst state multiplies the rate by ``burst_mult``.  The
  state factors are normalized so the *long-run mean* rate stays at the
  configured ``rate_per_ms`` regardless of ``burst_mult``.
* **Diurnal curve** (``diurnal_period_ms > 0``): a raised-cosine day/night
  factor in ``[diurnal_trough, 1.0]`` — the trough at phase 0, the peak at
  half a period.
* **Flash crowd** (``flash_duration_ms > 0``): the rate is multiplied by
  ``flash_mult`` inside ``[flash_at_ms, flash_at_ms + flash_duration_ms)``.

Sampling uses piecewise thinning (Lewis–Shedler): within each constant
upper-bound piece (current MMPP state × flash window) candidate gaps are
exponential at the bound and accepted with probability
``diurnal(t) / diurnal_max``; at a piece boundary the exponential restarts
(memorylessness makes that exact).  Everything draws from the single
``rng`` passed in, so a seed fully determines the stream — across
processes, machines, and Python versions (``random`` is an explicitly
stable PRNG).
"""

from __future__ import annotations

import math
import random

from repro.errors import ConfigError

__all__ = ["ArrivalStream"]

_INF = float("inf")


class ArrivalStream:
    """Deterministic arrival-instant generator for one region."""

    def __init__(
        self,
        rate_per_ms: float,
        rng: random.Random,
        model: str = "poisson",
        burst_mult: float = 8.0,
        dwell_low_ms: float = 400.0,
        dwell_high_ms: float = 60.0,
        diurnal_period_ms: float = 0.0,
        diurnal_trough: float = 0.3,
        flash_at_ms: float = 0.0,
        flash_duration_ms: float = 0.0,
        flash_mult: float = 1.0,
    ):
        if rate_per_ms <= 0:
            raise ConfigError(f"arrival rate must be positive, got {rate_per_ms}")
        if model not in ("poisson", "mmpp"):
            raise ConfigError(f"unknown arrival model {model!r}; choose poisson|mmpp")
        if model == "mmpp" and (burst_mult < 1.0 or dwell_low_ms <= 0 or dwell_high_ms <= 0):
            raise ConfigError("mmpp needs burst_mult >= 1 and positive dwell times")
        if diurnal_period_ms < 0 or not 0.0 < diurnal_trough <= 1.0:
            raise ConfigError("diurnal needs period >= 0 and trough in (0, 1]")
        if flash_duration_ms < 0 or flash_mult < 1.0:
            raise ConfigError("flash crowd needs duration >= 0 and mult >= 1")
        self.rate = rate_per_ms
        self.rng = rng
        self.model = model
        self.diurnal_period = diurnal_period_ms
        self.diurnal_trough = diurnal_trough
        self.flash_at = flash_at_ms
        self.flash_end = flash_at_ms + flash_duration_ms
        self.flash_mult = flash_mult
        self._flash_on = flash_duration_ms > 0 and flash_mult > 1.0
        # MMPP state machine: normalize the two state factors so the
        # time-averaged rate equals the configured rate.
        if model == "mmpp":
            self._dwell = (dwell_low_ms, dwell_high_ms)
            mean = (dwell_low_ms + burst_mult * dwell_high_ms) / (dwell_low_ms + dwell_high_ms)
            self._state_factor = (1.0 / mean, burst_mult / mean)
            self._state = 0
            self._state_until = rng.expovariate(1.0 / dwell_low_ms)
        else:
            self._state_factor = (1.0, 1.0)
            self._state = 0
            self._state_until = _INF
        # Pure homogeneous Poisson (no state machine, no thinning): one
        # expovariate per arrival, the hot-loop common case.
        self._pure = (
            model == "poisson" and diurnal_period_ms <= 0 and not self._flash_on
        )

    # ------------------------------------------------------------------
    def diurnal_factor(self, t: float) -> float:
        """Instantaneous diurnal rate factor in [trough, 1]."""
        if self.diurnal_period <= 0:
            return 1.0
        phase = (1.0 - math.cos(2.0 * math.pi * t / self.diurnal_period)) / 2.0
        return self.diurnal_trough + (1.0 - self.diurnal_trough) * phase

    def in_flash(self, t: float) -> bool:
        return self._flash_on and self.flash_at <= t < self.flash_end

    def _advance_state(self, t: float) -> None:
        while self._state_until <= t:
            self._state = 1 - self._state
            self._state_until += self.rng.expovariate(1.0 / self._dwell[self._state])

    def _boundary(self, t: float) -> float:
        """Next instant at which the piecewise-constant rate bound changes."""
        boundary = self._state_until
        if self._flash_on:
            if t < self.flash_at:
                boundary = min(boundary, self.flash_at)
            elif t < self.flash_end:
                boundary = min(boundary, self.flash_end)
        return boundary

    # ------------------------------------------------------------------
    def next_after(self, t: float) -> float:
        """The first arrival strictly after virtual instant ``t``."""
        rng = self.rng
        if self._pure:
            return t + rng.expovariate(self.rate)
        while True:
            self._advance_state(t)
            bound = self.rate * self._state_factor[self._state]
            if self.in_flash(t):
                bound *= self.flash_mult
            candidate = t + rng.expovariate(bound)
            boundary = self._boundary(t)
            if candidate >= boundary:
                # The bound changes before the candidate fires; restart the
                # (memoryless) exponential clock at the boundary.
                t = boundary
                continue
            if self.diurnal_period <= 0:
                return candidate
            if rng.random() <= self.diurnal_factor(candidate):
                return candidate
            t = candidate  # thinned: rejected candidate, keep scanning
