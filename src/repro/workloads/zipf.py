"""Zipfian key sampling for contention control.

Fig 7 of the paper sweeps TPC-A's zipf coefficient from 0.5 to 1.0 to vary
the conflict rate; this generator reproduces that knob.  Because the key
universes in this reproduction are small (hundreds of keys per shard), we
sample from the *exact* bounded-zipfian CDF via binary search rather than
using YCSB's O(1) approximation — exact, correct for every ``n`` and
``theta``, and plenty fast at this scale.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Optional

from repro.errors import ConfigError

__all__ = ["ZipfGenerator"]


class ZipfGenerator:
    """Samples integers in ``[0, n)`` with P(k) proportional to 1/(k+1)^theta."""

    def __init__(self, n: int, theta: float, rng: Optional[random.Random] = None):
        if n <= 0:
            raise ConfigError("zipf universe must be non-empty")
        if theta < 0:
            raise ConfigError("zipf theta must be non-negative")
        self.n = n
        self.theta = theta
        self._rng = rng or random.Random(0)
        if abs(theta) < 1e-12:
            self._cdf = None  # uniform fast path
            return
        weights = [1.0 / math.pow(k + 1, theta) for k in range(n)]
        total = sum(weights)
        cdf = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cdf.append(acc)
        cdf[-1] = 1.0  # guard against float round-off
        self._cdf = cdf

    def sample(self) -> int:
        if self._cdf is None:
            return self._rng.randrange(self.n)
        return bisect.bisect_left(self._cdf, self._rng.random())

    def sampler(self):
        """A bound fast-path sampler: a zero-argument callable drawing the
        exact same sequence as :meth:`sample`, with the attribute chases
        pre-bound for hot loops (one C-level call per draw)."""
        if self._cdf is None:
            return lambda n=self.n, randrange=self._rng.randrange: randrange(n)
        bl = bisect.bisect_left
        return lambda cdf=self._cdf, random=self._rng.random: bl(cdf, random())

    def probability(self, k: int) -> float:
        """Exact P(sample == k); handy for tests."""
        if not 0 <= k < self.n:
            raise ConfigError(f"key {k} outside universe [0, {self.n})")
        if self._cdf is None:
            return 1.0 / self.n
        lo = self._cdf[k - 1] if k > 0 else 0.0
        return self._cdf[k] - lo
