"""Workload interface shared by TPC-C, TPC-C payment-only, and TPC-A.

A workload owns the schema, the per-shard initial data, and a per-client
transaction generator.  Clients are bound to a home shard inside their
region (the paper binds each TPC-C client to a warehouse), and the
generator decides — per workload semantics — when a transaction crosses
regions.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.config import Topology
from repro.storage.shard import Shard
from repro.storage.table import TableSchema
from repro.txn.model import Transaction

__all__ = ["Workload", "ClientBinding"]


class ClientBinding:
    """A client's placement: its region and home shard."""

    def __init__(self, client: str, region: str, home_shard: str, home_shard_index: int):
        self.client = client
        self.region = region
        self.home_shard = home_shard
        self.home_shard_index = home_shard_index


class Workload:
    """Abstract base; concrete workloads implement the three hooks."""

    name = "abstract"

    def __init__(self, topology: Topology, seed: int = 1):
        self.topology = topology
        self.seed = seed

    # -- schema & data ---------------------------------------------------
    def schemas(self) -> List[TableSchema]:
        raise NotImplementedError

    def load(self, shard: Shard, shard_index: int) -> None:
        raise NotImplementedError

    # -- generation --------------------------------------------------------
    def bind_clients(self) -> List[ClientBinding]:
        """Round-robin clients over their region's shards (paper: client
        per warehouse)."""
        bindings = []
        for region in self.topology.regions:
            shards = sorted(
                self.topology.shards_in_region(region), key=self.topology.shard_index
            )
            if not shards:
                # Spare regions (repro.topo) start empty; they host no
                # clients until a region_join reshards work onto them.
                continue
            for i, client in enumerate(self.topology.clients_in_region(region)):
                shard = shards[i % len(shards)]
                bindings.append(
                    ClientBinding(client, region, shard, self.topology.shard_index(shard))
                )
        return bindings

    def next_transaction(self, binding: ClientBinding, rng: random.Random) -> Transaction:
        raise NotImplementedError

    # -- helpers ------------------------------------------------------------
    def remote_shard_index(self, binding: ClientBinding, rng: random.Random) -> Optional[int]:
        """A uniformly random shard hosted in a *different* region."""
        spr = self.topology.config.shards_per_region
        num_shards = self.topology.num_shards
        if num_shards <= spr:
            return None
        home_region_index = binding.home_shard_index // spr
        while True:
            idx = rng.randrange(num_shards)
            if idx // spr != home_region_index:
                return idx

    def local_other_shard_index(self, binding: ClientBinding, rng: random.Random) -> Optional[int]:
        """Another shard in the client's own region, if any."""
        spr = self.topology.config.shards_per_region
        if spr < 2:
            return None
        base = (binding.home_shard_index // spr) * spr
        while True:
            idx = base + rng.randrange(spr)
            if idx != binding.home_shard_index:
                return idx
