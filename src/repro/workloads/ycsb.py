"""YCSB+T-style transactional key-value workload.

The paper's deferred-update baselines (Tapir, Carousel) were originally
evaluated on YCSB; the paper substitutes TPC-A "as a comparable workload".
We provide both: this module is the YCSB side — fixed-size read/update
transactions over a zipf-skewed key space, with knobs for the read ratio,
operations per transaction, zipf theta, and the cross-region ratio.

Each transaction's operations hit the client's home shard except that, with
probability ``crt_ratio``, one operation is redirected to a remote-region
shard (making the transaction a CRT with independent pieces, like TPC-A's
transfer).
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.config import Topology
from repro.storage.shard import Shard
from repro.storage.table import TableSchema
from repro.txn.model import Piece, Transaction
from repro.workloads.base import ClientBinding, Workload
from repro.workloads.zipf import ZipfGenerator

__all__ = ["YcsbWorkload", "RECORDS_PER_SHARD"]

RECORDS_PER_SHARD = 200


def _ops_body(shard_index: int, ops, result_var: str):
    """One piece running this shard's slice of the transaction's ops."""

    def body(ctx):
        reads = {}
        for kind, key, value in ops:
            if kind == "read":
                reads[key] = ctx.store.get("usertable", (shard_index, key))["value"]
            else:
                ctx.store.update("usertable", (shard_index, key), {"value": value})
        ctx.put(result_var, reads)

    return body


class _PooledOps:
    """Mutable piece body for pool-recycled single-shard transactions.

    Behaviourally identical to :func:`_ops_body`; the op list is swapped in
    per acquisition instead of being captured by a fresh closure.
    """

    __slots__ = ("shard_index", "result_var", "ops")

    def __init__(self, shard_index: int, result_var: str):
        self.shard_index = shard_index
        self.result_var = result_var
        self.ops: List = []

    def __call__(self, ctx):
        shard_index = self.shard_index
        reads = {}
        for kind, key, value in self.ops:
            if kind == "read":
                reads[key] = ctx.store.get("usertable", (shard_index, key))["value"]
            else:
                ctx.store.update("usertable", (shard_index, key), {"value": value})
        ctx.put(self.result_var, reads)


class YcsbWorkload(Workload):
    """Fixed-size read/update transactions over a zipf-skewed key space."""

    name = "ycsb"

    def __init__(
        self,
        topology: Topology,
        seed: int = 1,
        theta: float = 0.7,
        read_ratio: float = 0.5,
        ops_per_txn: int = 4,
        crt_ratio: float = 0.1,
    ):
        super().__init__(topology, seed)
        self.theta = theta
        self.read_ratio = read_ratio
        self.ops_per_txn = ops_per_txn
        self.crt_ratio = crt_ratio
        self._zipfs: Dict[int, ZipfGenerator] = {}
        self._samplers: Dict[int, object] = {}
        self._pool_keys: Dict[int, tuple] = {}

    # -- schema & data ---------------------------------------------------
    def schemas(self) -> List[TableSchema]:
        return [TableSchema("usertable", ["shard", "key", "value"], ["shard", "key"])]

    def load(self, shard: Shard, shard_index: int) -> None:
        for key in range(RECORDS_PER_SHARD):
            shard.insert("usertable", {"shard": shard_index, "key": key, "value": 0})

    # -- generation --------------------------------------------------------
    def _sampler(self, shard_index: int, consumer_region: int = -1):
        """The shard's bound zipf sampler (created with its generator).

        Samplers are keyed by (shard, consuming region): a remote draw —
        a client in region A picking a key on a shard in region B — comes
        from a stream only region A ever touches.  Generation randomness
        is therefore region-local, which the partitioned kernel
        (repro.sim.par) requires: a stream shared across regions would be
        consumed in window order instead of global virtual-time order and
        the parallel run would diverge from the serial one.  Same-region
        draws keep the original per-shard stream, so workloads that never
        cross regions (crt_ratio=0) are byte-identical to earlier builds.
        """
        spr = self.topology.config.shards_per_region
        if consumer_region < 0 or consumer_region == shard_index // spr:
            key = shard_index
            seed = self.seed * 31337 + shard_index
        else:
            key = (shard_index, consumer_region)
            seed = self.seed * 31337 + shard_index \
                + 7_000_003 * (consumer_region + 1)
        sampler = self._samplers.get(key)
        if sampler is None:
            zipf = ZipfGenerator(RECORDS_PER_SHARD, self.theta,
                                 random.Random(seed))
            self._zipfs[key] = zipf
            sampler = self._samplers[key] = zipf.sampler()
        return sampler

    def _pick_key(self, shard_index: int) -> int:
        self._sampler(shard_index)
        return self._zipfs[shard_index].sample()

    def _gen_ops(self, binding: ClientBinding, rng: random.Random):
        """Draw one transaction's op list; the rng draw order here is the
        single source of randomness, so the pooled and fresh build paths
        below produce byte-identical transaction streams."""
        home = binding.home_shard_index
        ops_home: List = []
        per_shard: Dict[int, List] = {home: ops_home}
        random_ = rng.random
        remote = None
        if random_() < self.crt_ratio:
            remote = self.remote_shard_index(binding, rng)
        read_ratio = self.read_ratio
        sample_home = self._sampler(home)
        last = self.ops_per_txn - 1
        for i in range(self.ops_per_txn):
            if remote is None or i != last:
                target = home
                key = sample_home()
            else:
                target = remote
                spr = self.topology.config.shards_per_region
                key = self._sampler(remote, home // spr)()
            if random_() < read_ratio:
                op = ("read", key, None)
            else:
                # Uniform update value drawn from the generation stream (a
                # plain random() scaled — randint's rejection sampling costs
                # ~3x as much per draw on this hot path).
                op = ("update", key, 1 + int(random_() * 1_000_000))
            if target == home:
                ops_home.append(op)
            else:
                per_shard.setdefault(target, []).append(op)
        return per_shard, remote

    def _writes(self, shard_index: int, ops) -> tuple:
        return tuple(
            ("usertable", shard_index, key)
            for kind, key, _v in ops if kind == "update"
        )

    def _fresh_single(self, shard_index: int) -> Transaction:
        """A pool-template single-shard transaction (mutable body, empty ops)."""
        return Transaction("ycsb", [Piece(
            0,
            self.topology.shard_name(shard_index),
            _PooledOps(shard_index, f"reads_{shard_index}"),
            produces=(f"reads_{shard_index}",),
            name=f"ycsb_s{shard_index}",
        )])

    def next_transaction(self, binding: ClientBinding, rng: random.Random) -> Transaction:
        per_shard, remote = self._gen_ops(binding, rng)
        pieces = []
        for index, (shard_index, ops) in enumerate(sorted(per_shard.items())):
            if not ops:
                continue
            pieces.append(Piece(
                index,
                self.topology.shard_name(shard_index),
                _ops_body(shard_index, list(ops), f"reads_{shard_index}"),
                produces=(f"reads_{shard_index}",),
                lock_keys=self._writes(shard_index, ops),
                name=f"ycsb_s{shard_index}",
            ))
        txn_type = "ycsb_crt" if (remote is not None and len(pieces) > 1) else "ycsb"
        return Transaction(txn_type, pieces)

    def next_transaction_pooled(self, binding: ClientBinding, rng: random.Random,
                                pool) -> Transaction:
        """Like :meth:`next_transaction` but recycling single-shard
        transactions through ``pool`` (a :class:`repro.txn.pool.
        TransactionPool`).  Multi-shard (CRT) draws fall back to fresh
        objects — their records outlive the reply, so they cannot be safely
        recycled."""
        per_shard, remote = self._gen_ops(binding, rng)
        if remote is None:
            home = binding.home_shard_index
            ops = per_shard[home]
            template = self._pool_keys.get(home)
            if template is None:
                template = self._pool_keys[home] = (
                    ("ycsb", home), lambda home=home: self._fresh_single(home))
            txn = pool.acquire(template[0], template[1])
            piece = txn.pieces[0]
            piece.body.ops = ops
            piece.lock_keys = self._writes(home, ops)
            return txn
        pieces = []
        for index, (shard_index, ops) in enumerate(sorted(per_shard.items())):
            if not ops:
                continue
            pieces.append(Piece(
                index,
                self.topology.shard_name(shard_index),
                _ops_body(shard_index, list(ops), f"reads_{shard_index}"),
                produces=(f"reads_{shard_index}",),
                lock_keys=self._writes(shard_index, ops),
                name=f"ycsb_s{shard_index}",
            ))
        return Transaction("ycsb_crt" if len(pieces) > 1 else "ycsb", pieces)
