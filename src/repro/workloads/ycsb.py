"""YCSB+T-style transactional key-value workload.

The paper's deferred-update baselines (Tapir, Carousel) were originally
evaluated on YCSB; the paper substitutes TPC-A "as a comparable workload".
We provide both: this module is the YCSB side — fixed-size read/update
transactions over a zipf-skewed key space, with knobs for the read ratio,
operations per transaction, zipf theta, and the cross-region ratio.

Each transaction's operations hit the client's home shard except that, with
probability ``crt_ratio``, one operation is redirected to a remote-region
shard (making the transaction a CRT with independent pieces, like TPC-A's
transfer).
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.config import Topology
from repro.storage.shard import Shard
from repro.storage.table import TableSchema
from repro.txn.model import Piece, Transaction
from repro.workloads.base import ClientBinding, Workload
from repro.workloads.zipf import ZipfGenerator

__all__ = ["YcsbWorkload", "RECORDS_PER_SHARD"]

RECORDS_PER_SHARD = 200


def _ops_body(shard_index: int, ops, result_var: str):
    """One piece running this shard's slice of the transaction's ops."""

    def body(ctx):
        reads = {}
        for kind, key, value in ops:
            if kind == "read":
                reads[key] = ctx.store.get("usertable", (shard_index, key))["value"]
            else:
                ctx.store.update("usertable", (shard_index, key), {"value": value})
        ctx.put(result_var, reads)

    return body


class YcsbWorkload(Workload):
    """Fixed-size read/update transactions over a zipf-skewed key space."""

    name = "ycsb"

    def __init__(
        self,
        topology: Topology,
        seed: int = 1,
        theta: float = 0.7,
        read_ratio: float = 0.5,
        ops_per_txn: int = 4,
        crt_ratio: float = 0.1,
    ):
        super().__init__(topology, seed)
        self.theta = theta
        self.read_ratio = read_ratio
        self.ops_per_txn = ops_per_txn
        self.crt_ratio = crt_ratio
        self._zipfs: Dict[int, ZipfGenerator] = {}

    # -- schema & data ---------------------------------------------------
    def schemas(self) -> List[TableSchema]:
        return [TableSchema("usertable", ["shard", "key", "value"], ["shard", "key"])]

    def load(self, shard: Shard, shard_index: int) -> None:
        for key in range(RECORDS_PER_SHARD):
            shard.insert("usertable", {"shard": shard_index, "key": key, "value": 0})

    # -- generation --------------------------------------------------------
    def _pick_key(self, shard_index: int) -> int:
        zipf = self._zipfs.get(shard_index)
        if zipf is None:
            zipf = ZipfGenerator(RECORDS_PER_SHARD, self.theta,
                                 random.Random(self.seed * 31337 + shard_index))
            self._zipfs[shard_index] = zipf
        return zipf.sample()

    def next_transaction(self, binding: ClientBinding, rng: random.Random) -> Transaction:
        home = binding.home_shard_index
        per_shard: Dict[int, List] = {home: []}
        remote = None
        if rng.random() < self.crt_ratio:
            remote = self.remote_shard_index(binding, rng)
        for i in range(self.ops_per_txn):
            target = home
            if remote is not None and i == self.ops_per_txn - 1:
                target = remote
            key = self._pick_key(target)
            if rng.random() < self.read_ratio:
                per_shard.setdefault(target, []).append(("read", key, None))
            else:
                per_shard.setdefault(target, []).append(
                    ("update", key, rng.randint(1, 1_000_000))
                )
        pieces = []
        for index, (shard_index, ops) in enumerate(sorted(per_shard.items())):
            if not ops:
                continue
            writes = tuple(
                ("usertable", shard_index, key)
                for kind, key, _v in ops if kind == "update"
            )
            pieces.append(Piece(
                index,
                self.topology.shard_name(shard_index),
                _ops_body(shard_index, list(ops), f"reads_{shard_index}"),
                produces=(f"reads_{shard_index}",),
                lock_keys=writes,
                name=f"ycsb_s{shard_index}",
            ))
        txn_type = "ycsb_crt" if (remote is not None and len(pieces) > 1) else "ycsb"
        return Transaction(txn_type, pieces)
