"""Shared fixtures/helpers for protocol-level tests.

Provides a minimal key-value workload so protocol tests can craft precise
transactions (specific shards, value dependencies, conditional aborts)
without TPC-C's complexity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import pytest

from repro.config import TimingConfig, Topology, TopologyConfig
from repro.core.system import DastSystem
from repro.storage.shard import Shard
from repro.storage.table import TableSchema
from repro.txn.model import Piece, Transaction

KV_SCHEMA = [TableSchema("kv", ["k", "v"], ["k"])]


def load_kv(shard: Shard, shard_index: int) -> None:
    for i in range(10):
        shard.insert("kv", {"k": f"s{shard_index}-{i}", "v": 0})


def make_topology(regions=2, spr=1, replication=3, clients=2, seed=1,
                  timing: Optional[TimingConfig] = None) -> Topology:
    return Topology(TopologyConfig(
        num_regions=regions, shards_per_region=spr, replication=replication,
        clients_per_region=clients, seed=seed, timing=timing or TimingConfig(),
    ))


def make_dast(regions=2, spr=1, replication=3, clients=2, seed=1,
              timing: Optional[TimingConfig] = None, **kwargs) -> DastSystem:
    topo = make_topology(regions, spr, replication, clients, seed, timing)
    return DastSystem(topo, KV_SCHEMA, load_kv, seed=seed, **kwargs)


def kv_set(shard_index: int, key_index: int, value, piece_index=0,
           produces=(), needs=()):
    """A piece that writes kv row ``s<shard>-<key>`` on shard ``s<shard>``."""
    key = f"s{shard_index}-{key_index}"

    def body(ctx):
        ctx.store.update("kv", (key,), {"v": value})
        for var in produces:
            ctx.put(var, value)

    return Piece(piece_index, f"s{shard_index}", body,
                 needs=needs, produces=produces,
                 lock_keys=((("kv", key)),))


def kv_read_forward(shard_index: int, key_index: int, var: str, piece_index=0):
    """A piece that reads a kv value and produces it as ``var``."""
    key = f"s{shard_index}-{key_index}"

    def body(ctx):
        ctx.put(var, ctx.store.get("kv", (key,))["v"])

    return Piece(piece_index, f"s{shard_index}", body, produces=(var,),
                 lock_keys=((("kv", key)),))


def kv_apply_input(shard_index: int, key_index: int, var: str, piece_index=1):
    """A piece that writes the value received through ``var`` (value dep)."""
    key = f"s{shard_index}-{key_index}"

    def body(ctx):
        ctx.store.update("kv", (key,), {"v": ctx.inputs[var]})

    return Piece(piece_index, f"s{shard_index}", body, needs=(var,),
                 lock_keys=((("kv", key)),))


def submit_and_run(system, txn, client=None, node=None, until_extra=5000.0):
    """Submit one transaction, run to completion, return the TxnResult."""
    region = system.topology.regions[0]
    client = client or f"{region}.c0"
    node = node or system.topology.nodes_in_region(region)[0]
    results = []
    event = system.submit(client, node, txn, timeout=60000.0)
    event.add_callback(lambda e: results.append(e))
    deadline = system.sim.now + until_extra
    while not results and system.sim.now < deadline:
        system.run(until=system.sim.now + 100.0)
    assert results, "transaction did not complete in time"
    ev = results[0]
    assert ev.ok, f"submit failed: {ev.exception}"
    return ev.value


def inject_faults(system, *events, origin=None):
    """Install a :class:`FaultPlan` built from ``(time, kind, kwargs)`` triples.

    Returns the installed :class:`ChaosRunner`; each event's dispatch result
    (e.g. the promoted manager for ``fail_manager``, the completion event for
    ``readd_replica``) is available on ``runner.applied`` after it fires.
    """
    from repro.chaos import ChaosRunner, FaultPlan

    plan = FaultPlan()
    for time, kind, kwargs in events:
        plan.add(time, kind, **kwargs)
    return ChaosRunner(system, plan, origin=origin).install()


@pytest.fixture
def dast2():
    """Two regions, one shard each, 3x replicated, started."""
    system = make_dast(regions=2, spr=1)
    system.start()
    return system


@pytest.fixture
def dast2x2():
    """Two regions, two shards each."""
    system = make_dast(regions=2, spr=2)
    system.start()
    return system
