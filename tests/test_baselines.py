"""Behavioural tests for the Janus, Tapir, and SLOG baselines."""

import pytest

from repro.baselines.janus import JanusSystem
from repro.baselines.slog import SlogSystem
from repro.baselines.tapir import TapirSystem
from repro.txn.model import Transaction
from repro.wire.messages import JanusCommit, SlogLog
from tests.conftest import (
    KV_SCHEMA,
    kv_apply_input,
    kv_read_forward,
    kv_set,
    load_kv,
    make_topology,
    submit_and_run,
)


def make_system(cls, regions=2, spr=1, clients=2, seed=1):
    topo = make_topology(regions=regions, spr=spr, clients=clients, seed=seed)
    system = cls(topo, KV_SCHEMA, load_kv, seed=seed)
    system.start()
    return system


@pytest.fixture(params=[JanusSystem, TapirSystem, SlogSystem])
def any_baseline(request):
    return make_system(request.param)


class TestCommonBehaviour:
    def test_single_shard_write_commits(self, any_baseline):
        system = any_baseline
        txn = Transaction("w", [kv_set(0, 1, 42)])
        result = submit_and_run(system, txn)
        assert result.committed and not result.is_crt
        for host in system.catalog.replicas_of("s0"):
            assert system.nodes[host].shard.get("kv", ("s0-1",))["v"] == 42

    def test_cross_region_write_commits(self, any_baseline):
        system = any_baseline
        txn = Transaction("w", [kv_set(0, 2, 5), kv_set(1, 2, 6, piece_index=1)])
        result = submit_and_run(system, txn)
        assert result.committed and result.is_crt
        assert system.nodes["r0.n0"].shard.get("kv", ("s0-2",))["v"] == 5
        assert system.nodes["r1.n0"].shard.get("kv", ("s1-2",))["v"] == 6

    def test_value_dependency_flows(self, any_baseline):
        system = any_baseline
        submit_and_run(system, Transaction("seed", [kv_set(0, 0, 88)]))
        txn = Transaction("dep", [
            kv_read_forward(0, 0, "x", piece_index=0),
            kv_apply_input(1, 0, "x", piece_index=1),
        ])
        result = submit_and_run(system, txn)
        assert result.committed
        system.run(until=system.sim.now + 1000.0)
        assert system.nodes["r1.n0"].shard.get("kv", ("s1-0",))["v"] == 88

    def test_replicas_converge(self, any_baseline):
        system = any_baseline
        for i in range(5):
            submit_and_run(system, Transaction("w", [kv_set(0, i % 3, i)]))
        orderer = getattr(system, "orderer", None)
        if orderer:
            orderer.stop()
        system.run(until=system.sim.now + 2000.0)
        assert len(set(system.replicas_digest("s0"))) == 1

    def test_conflicting_writers_serialize(self, any_baseline):
        system = any_baseline
        results = []
        for i in range(6):
            txn = Transaction("w", [kv_set(0, 0, i)])
            ev = system.submit("r0.c0", "r0.n0", txn, timeout=60000.0)
            ev.add_callback(lambda e: results.append(e.value))
        system.run(until=system.sim.now + 10000.0)
        assert len(results) == 6 and all(r.committed for r in results)
        values = {
            system.nodes[h].shard.get("kv", ("s0-0",))["v"]
            for h in system.catalog.replicas_of("s0")
        }
        assert len(values) == 1 and values.pop() in range(6)


class TestTapirSpecifics:
    def test_conflict_causes_retries(self):
        system = make_system(TapirSystem, regions=1, spr=1, clients=4)
        results = []
        for i in range(8):
            txn = Transaction("w", [kv_set(0, 0, i)])
            ev = system.submit("r0.c0", "r0.n0", txn, timeout=60000.0)
            ev.add_callback(lambda e: results.append(e.value))
        system.run(until=system.sim.now + 20000.0)
        assert len(results) == 8
        assert sum(r.retries for r in results) > 0  # OCC aborts happened

    def test_user_abort_not_retried(self):
        from repro.txn.model import Piece

        system = make_system(TapirSystem)

        def aborting(ctx):
            ctx.abort("balance too low")

        txn = Transaction("cond", [Piece(0, "s0", aborting)])
        result = submit_and_run(system, txn)
        assert not result.committed
        assert result.abort_reason == "balance too low"
        assert result.retries == 0

    def test_prepared_entries_cleared_after_decision(self):
        system = make_system(TapirSystem)
        submit_and_run(system, Transaction("w", [kv_set(0, 1, 1)]))
        system.run(until=system.sim.now + 500.0)
        for node in system.nodes.values():
            assert node.prepared == {}

    def test_versions_bump_on_commit(self):
        system = make_system(TapirSystem)
        submit_and_run(system, Transaction("w", [kv_set(0, 1, 1)]))
        system.run(until=system.sim.now + 500.0)
        node = system.nodes["r0.n0"]
        assert node.versions.get(("kv", ("s0-1",))) == 1


class TestSlogSpecifics:
    def test_irt_skips_global_orderer(self):
        system = make_system(SlogSystem)
        submit_and_run(system, Transaction("w", [kv_set(0, 1, 1)]))
        assert system.orderer.stats.get("global_submits") == 0

    def test_crt_goes_through_global_order(self):
        system = make_system(SlogSystem)
        txn = Transaction("w", [kv_set(0, 1, 1), kv_set(1, 1, 2, piece_index=1)])
        submit_and_run(system, txn)
        assert system.orderer.stats.get("global_submits") == 1
        assert system.orderer.stats.get("global_ordered") == 1

    def test_every_region_sees_every_global_entry(self):
        system = make_system(SlogSystem, regions=3)
        # CRT between r0 and r1: r2's sequencer still receives the entry.
        txn = Transaction("w", [kv_set(0, 1, 1), kv_set(1, 1, 2, piece_index=1)])
        submit_and_run(system, txn)
        system.run(until=system.sim.now + 500.0)
        assert system.sequencers["r2"].stats.get("global_entries_seen") == 1
        assert system.sequencers["r2"].stats.get("appended", 0) == 0

    def test_irt_blocked_behind_input_waiting_crt_on_conflict(self):
        """The R1 violation DAST fixes: conflicting IRT waits out the CRT."""
        system = make_system(SlogSystem)
        submit_and_run(system, Transaction("seed", [kv_set(1, 0, 3)]))
        # CRT whose r0 piece waits for a value produced in r1.
        dep = Transaction("dep", [
            kv_read_forward(1, 0, "x", piece_index=0),
            kv_apply_input(0, 0, "x", piece_index=1),
        ])
        system.submit("r0.c0", "r0.n0", dep, timeout=60000.0)
        system.run(until=system.sim.now + 140.0)  # CRT in r0's log, inputs pending
        t0 = system.sim.now
        irt = Transaction("irt", [kv_set(0, 0, 9)])  # conflicts on s0-0
        result = submit_and_run(system, irt)
        # The IRT completed only after the CRT's cross-region input arrived.
        elapsed = system.sim.now - t0
        assert system.nodes["r0.n0"].stats.get("input_waits") > 0

    def test_log_applied_in_order_despite_reordering(self):
        system = make_system(SlogSystem)
        node = system.nodes["r0.n0"]
        # Deliver log entries out of order directly.
        t1 = Transaction("a", [kv_set(0, 1, 1)])
        t2 = Transaction("b", [kv_set(0, 1, 2)])
        node.on_log("r0.seq", SlogLog(index=1, txn=t2, coord="r0.n0"))
        assert node.next_index == 0  # gap: nothing admitted yet
        node.on_log("r0.seq", SlogLog(index=0, txn=t1, coord="r0.n0"))
        system.run(until=system.sim.now + 100.0)
        assert node.shard.get("kv", ("s0-1",))["v"] == 2  # t1 then t2


class TestJanusSpecifics:
    def test_fast_path_without_conflicts(self):
        system = make_system(JanusSystem)
        submit_and_run(system, Transaction("w", [kv_set(0, 1, 1)]))
        coord = system.nodes["r0.n0"]
        assert coord.stats.get("fast_path") == 1
        assert coord.stats.get("slow_path") == 0

    def test_conflicts_create_dependencies_not_aborts(self):
        system = make_system(JanusSystem)
        results = []
        for i in range(5):
            txn = Transaction("w", [kv_set(0, 0, i)])
            ev = system.submit("r0.c0", "r0.n0", txn, timeout=60000.0)
            ev.add_callback(lambda e: results.append(e.value))
        system.run(until=system.sim.now + 10000.0)
        assert len(results) == 5 and all(r.committed for r in results)
        assert all(r.retries == 0 for r in results)  # R2: no aborts ever

    def test_dependent_execution_order(self):
        system = make_system(JanusSystem)
        t1 = Transaction("a", [kv_set(0, 0, 1)])
        t2 = Transaction("b", [kv_set(0, 0, 2)])
        r1 = submit_and_run(system, t1)
        r2 = submit_and_run(system, t2)
        assert system.nodes["r0.n0"].shard.get("kv", ("s0-0",))["v"] == 2

    def test_mutual_dependency_resolved_by_txn_id(self):
        system = make_system(JanusSystem)
        node = system.nodes["r0.n0"]
        ta = Transaction("a", [kv_set(0, 0, 10)], txn_id="za")
        tb = Transaction("b", [kv_set(0, 0, 20)], txn_id="zb")
        # Commit both with mutual deps directly at the replica.
        node.on_commit("x", JanusCommit(txn_id="za", txn=ta, coord="r0.n0",
                                        deps={"zb": (("s0",), ())}))
        node.on_commit("x", JanusCommit(txn_id="zb", txn=tb, coord="r0.n0",
                                        deps={"za": (("s0",), ())}))
        system.run(until=system.sim.now + 100.0)
        assert "za" in node.executed_ids and "zb" in node.executed_ids
        # Deterministic SCC order: za (smaller id) first, zb's write last.
        assert node.shard.get("kv", ("s0-0",))["v"] == 20

    def test_executed_records_garbage_collected(self):
        system = make_system(JanusSystem)
        for i in range(4):
            submit_and_run(system, Transaction("w", [kv_set(0, 1, i)]))
        system.run(until=system.sim.now + 1000.0)
        node = system.nodes["r0.n0"]
        assert len(node.records) == 0
        assert len(node.executed_ids) == 4


class TestYcsbAcrossSystems:
    @pytest.mark.parametrize("cls", [JanusSystem, TapirSystem, SlogSystem])
    def test_ycsb_runs_and_converges(self, cls):
        from repro.bench.metrics import LatencyRecorder
        from repro.workloads.client import spawn_clients
        from repro.workloads.ycsb import YcsbWorkload

        topo = make_topology(regions=2, spr=1, clients=3)
        workload = YcsbWorkload(topo, theta=0.8, crt_ratio=0.15)
        system = cls(topo, workload.schemas(), workload.load, seed=1)
        recorder = LatencyRecorder()
        system.start()
        clients = spawn_clients(system, workload, recorder.record)
        system.run(until=3000.0)
        for client in clients:
            client.stop()
        orderer = getattr(system, "orderer", None)
        if orderer:
            orderer.stop()
        system.run(until=7000.0)
        committed = [r for r in recorder.results if r.committed]
        assert len(committed) > 30
        for shard in topo.all_shards():
            assert len(set(system.replicas_digest(shard))) == 1, cls.name
