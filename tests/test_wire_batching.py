"""Network byte accounting and the endpoint-level message batcher."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.rpc import Endpoint
from repro.wire.messages import CrtExecuted, PctReport, Submit
from repro.wire.schema import encode
from repro.clock.hlc import Timestamp


@pytest.fixture
def setup():
    sim = Simulator()
    network = Network(sim, RngRegistry(1), intra_region_rtt=5.0, cross_region_rtt=100.0)
    return sim, network


def make_ep(sim, network, host, batch_window=0.0):
    return Endpoint(sim, network, host, "r0", batch_window=batch_window)


TS = Timestamp(1.0, 0, 0)


class TestByteAccounting:
    def test_send_records_type_and_bytes(self, setup):
        sim, net = setup
        a = make_ep(sim, net, "r0.a")
        b = make_ep(sim, net, "r0.b")
        b.register("pct_report", lambda src, p: None)
        a.send("r0.b", PctReport(value=TS))
        sim.run()
        assert net.stats.messages_sent == 1
        assert net.stats.per_type_sent["pct_report"] == 1
        assert net.stats.per_type_bytes["pct_report"] > 0
        assert net.stats.bytes_sent == net.stats.per_type_bytes["pct_report"]

    def test_request_and_response_accounted_separately(self, setup):
        sim, net = setup
        a = make_ep(sim, net, "r0.a")
        b = make_ep(sim, net, "r0.b")
        b.register("echo", lambda src, p: p)
        a.call("r0.b", "echo", 41)
        sim.run()
        assert net.stats.per_type_sent["echo"] == 1
        assert net.stats.per_type_sent["resp:echo"] == 1

    def test_top_types_ordering(self, setup):
        sim, net = setup
        a = make_ep(sim, net, "r0.a")
        b = make_ep(sim, net, "r0.b")
        b.register("pct_report", lambda src, p: None)
        b.register("crt_executed", lambda src, p: None)
        for _ in range(3):
            a.send("r0.b", PctReport(value=TS))
        a.send("r0.b", CrtExecuted(txn_id="t1"))
        sim.run()
        top = net.stats.top_types(5)
        assert top[0] == ("pct_report", 3)
        assert ("crt_executed", 1) in top

    def test_typed_frame_sized_by_schema(self, setup):
        sim, net = setup
        a = make_ep(sim, net, "r0.a")
        b = make_ep(sim, net, "r0.b")
        b.register("pct_report", lambda src, p: None)
        a.send("r0.b", PctReport(value=TS))
        sim.run()
        frame_size = encode(PctReport(value=TS)).size
        # Envelope framing adds a constant on top of the encoded frame.
        assert net.stats.per_type_bytes["pct_report"] > frame_size


class TestBatcher:
    def test_window_coalesces_same_destination(self, setup):
        sim, net = setup
        a = make_ep(sim, net, "r0.a", batch_window=1.0)
        b = make_ep(sim, net, "r0.b")
        got = []
        b.register("pct_report", lambda src, p: got.append(p.value))
        for i in range(4):
            a.send("r0.b", PctReport(value=Timestamp(float(i), 0, 0)))
        sim.run()
        # One network message carrying all four frames, delivered in order.
        assert net.stats.per_type_sent.get("batch") == 1
        assert "pct_report" not in net.stats.per_type_sent
        assert [ts.time for ts in got] == [0.0, 1.0, 2.0, 3.0]

    def test_singleton_flushes_as_plain_oneway(self, setup):
        sim, net = setup
        a = make_ep(sim, net, "r0.a", batch_window=1.0)
        b = make_ep(sim, net, "r0.b")
        got = []
        b.register("pct_report", lambda src, p: got.append(p))
        a.send("r0.b", PctReport(value=TS))
        sim.run()
        assert net.stats.per_type_sent.get("pct_report") == 1
        assert "batch" not in net.stats.per_type_sent
        assert len(got) == 1

    def test_non_batchable_bypasses_buffer(self, setup):
        sim, net = setup
        a = make_ep(sim, net, "r0.a", batch_window=1.0)
        b = make_ep(sim, net, "r0.b")
        b.register("submit", lambda src, p: None)
        a.send("r0.b", Submit(txn=None))
        assert net.stats.per_type_sent.get("submit") == 1  # sent immediately

    def test_flush_respects_window_timing(self, setup):
        sim, net = setup
        a = make_ep(sim, net, "r0.a", batch_window=2.0)
        b = make_ep(sim, net, "r0.b")
        arrivals = []
        b.register("pct_report", lambda src, p: arrivals.append(sim.now))
        a.send("r0.b", PctReport(value=TS))
        sim.run(until=1.5)
        assert arrivals == []  # still buffered
        sim.run()
        # window (2.0) + intra-region one-way delay (2.5)
        assert arrivals and arrivals[0] == pytest.approx(4.5)

    def test_messages_after_flush_start_new_window(self, setup):
        sim, net = setup
        a = make_ep(sim, net, "r0.a", batch_window=1.0)
        b = make_ep(sim, net, "r0.b")
        count = []
        b.register("pct_report", lambda src, p: count.append(p))
        a.send("r0.b", PctReport(value=TS))
        sim.run()  # first window flushes
        a.send("r0.b", PctReport(value=TS))
        a.send("r0.b", PctReport(value=TS))
        sim.run()
        assert len(count) == 3
        assert net.stats.per_type_sent.get("pct_report") == 1
        assert net.stats.per_type_sent.get("batch") == 1

    def test_manual_flush_drains_all_destinations(self, setup):
        sim, net = setup
        a = make_ep(sim, net, "r0.a", batch_window=50.0)
        b = make_ep(sim, net, "r0.b")
        c = make_ep(sim, net, "r0.c")
        got = []
        b.register("pct_report", lambda src, p: got.append("b"))
        c.register("pct_report", lambda src, p: got.append("c"))
        a.send("r0.b", PctReport(value=TS))
        a.send("r0.c", PctReport(value=TS))
        a.flush()
        sim.run(until=10.0)
        assert sorted(got) == ["b", "c"]


class TestDeterminism:
    def _totals(self, batch_window):
        import itertools

        from repro.bench.harness import Trial, run_trial
        from repro.txn.model import Transaction
        from repro.workloads.tpca import TpcaWorkload

        # The txn-id and rpc-id streams are process-global; reset them so two
        # in-process runs see identical id strings (and identical byte sizes),
        # as two fresh processes would.
        Transaction._ids = itertools.count(1)
        Endpoint._ids = itertools.count(1)

        trial = Trial(
            "dast",
            lambda topo: TpcaWorkload(topo, crt_ratio=0.2),
            num_regions=2,
            shards_per_region=1,
            clients_per_region=2,
            duration_ms=1500.0,
            warmup_ms=200.0,
            seed=7,
            batch_window=batch_window,
        )
        result = run_trial(trial)
        stats = result.system.network.stats
        return (stats.messages_sent, stats.bytes_sent,
                dict(stats.per_type_sent), result.summary.committed)

    def test_same_seed_same_bytes_batching_off(self):
        assert self._totals(0.0) == self._totals(0.0)

    def test_same_seed_same_bytes_batching_on(self):
        assert self._totals(0.25) == self._totals(0.25)

    def test_batching_reduces_message_count(self):
        off = self._totals(0.0)
        on = self._totals(0.25)
        assert on[0] < off[0]  # fewer network messages
        assert on[3] == off[3]  # same committed transactions

    def test_chaos_trial_deterministic_with_batching(self):
        from repro.chaos import generate_plan
        from repro.chaos.runner import run_chaos_trial

        plan = generate_plan(3, num_regions=2, shards_per_region=1)
        kwargs = dict(duration_ms=2000.0, drain_ms=2000.0, seed=3,
                      batch_window=0.25)
        r1 = run_chaos_trial(plan, **kwargs)
        r2 = run_chaos_trial(plan, **kwargs)
        assert r1.to_text() == r2.to_text()
        assert r1.ok
