"""Handler-level unit tests for Janus's dependency tracking."""

import pytest

from repro.baselines.janus import JanusSystem
from repro.txn.model import Transaction
from repro.wire.messages import JanusCommit, JanusPreaccept
from tests.conftest import KV_SCHEMA, kv_set, load_kv, make_topology


@pytest.fixture
def node():
    topo = make_topology(regions=1, spr=1, clients=1)
    system = JanusSystem(topo, KV_SCHEMA, load_kv, seed=1)
    system.start()
    return system, system.nodes["r0.n0"]


def preaccept(n, txn, coord="r0.n0"):
    return n.on_preaccept(coord, JanusPreaccept(txn=txn, coord=coord))


class TestPreAccept:
    def test_first_txn_has_no_deps(self, node):
        _system, n = node
        reply = preaccept(n, Transaction("a", [kv_set(0, 0, 1)]))
        assert reply["deps"] == {}

    def test_conflicting_txn_depends_on_earlier(self, node):
        _system, n = node
        t1 = Transaction("a", [kv_set(0, 0, 1)])
        t2 = Transaction("b", [kv_set(0, 0, 2)])
        preaccept(n, t1)
        reply = preaccept(n, t2)
        assert t1.txn_id in reply["deps"]
        shards, _deps = reply["deps"][t1.txn_id]
        assert shards == ("s0",)

    def test_disjoint_keys_do_not_conflict(self, node):
        _system, n = node
        preaccept(n, Transaction("a", [kv_set(0, 0, 1)]))
        reply = preaccept(n, Transaction("b", [kv_set(0, 1, 2)]))
        assert reply["deps"] == {}

    def test_replay_returns_original_deps(self, node):
        _system, n = node
        t1 = Transaction("a", [kv_set(0, 0, 1)])
        t2 = Transaction("b", [kv_set(0, 0, 2)])
        preaccept(n, t1)
        first = preaccept(n, t2)
        second = preaccept(n, t2)  # duplicate preaccept (retry)
        assert first["deps"] == second["deps"]

    def test_executed_deps_not_reported(self, node):
        system, n = node
        t1 = Transaction("a", [kv_set(0, 0, 1)])
        preaccept(n, t1)
        n.on_commit("x", JanusCommit(txn_id=t1.txn_id, txn=t1, coord="r0.n0",
                                     deps={}))
        system.run(until=system.sim.now + 50.0)
        assert t1.txn_id in n.executed_ids
        reply = preaccept(n, Transaction("b", [kv_set(0, 0, 2)]))
        assert reply["deps"] == {}


class TestCommitAndExecution:
    def test_commit_without_preaccept_adopts_body(self, node):
        system, n = node
        t1 = Transaction("a", [kv_set(0, 3, 9)])
        n.on_commit("x", JanusCommit(txn_id=t1.txn_id, txn=t1, coord="r0.n0",
                                     deps={}))
        system.run(until=system.sim.now + 50.0)
        assert n.shard.get("kv", ("s0-3",))["v"] == 9

    def test_commit_blocked_until_dep_commits(self, node):
        system, n = node
        t1 = Transaction("a", [kv_set(0, 0, 1)])
        t2 = Transaction("b", [kv_set(0, 0, 2)])
        preaccept(n, t1)
        preaccept(n, t2)
        n.on_commit("x", JanusCommit(txn_id=t2.txn_id, txn=t2, coord="r0.n0",
                                     deps={t1.txn_id: (("s0",), ())}))
        system.run(until=system.sim.now + 50.0)
        assert t2.txn_id not in n.executed_ids  # waits for t1
        n.on_commit("x", JanusCommit(txn_id=t1.txn_id, txn=t1, coord="r0.n0",
                                     deps={}))
        system.run(until=system.sim.now + 50.0)
        assert t1.txn_id in n.executed_ids and t2.txn_id in n.executed_ids
        assert n.shard.get("kv", ("s0-0",))["v"] == 2  # t1 then t2

    def test_irrelevant_shard_deps_ignored(self, node):
        system, n = node
        t2 = Transaction("b", [kv_set(0, 0, 2)])
        # Dep on a transaction that only touches another shard: not relevant
        # at s0, so execution proceeds without it.
        n.on_commit("x", JanusCommit(txn_id=t2.txn_id, txn=t2, coord="r0.n0",
                                     deps={"ghost": (("s9",), ())}))
        system.run(until=system.sim.now + 50.0)
        assert t2.txn_id in n.executed_ids
