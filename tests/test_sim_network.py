"""Tests for the simulated network (delays, anomalies, partitions)."""

import pytest

from repro.errors import ConfigError, NetworkError
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.rng import RngRegistry


@pytest.fixture
def net():
    sim = Simulator()
    network = Network(sim, RngRegistry(7), intra_region_rtt=5.0, cross_region_rtt=100.0)
    inboxes = {}
    for host, region in [("r0.a", "r0"), ("r0.b", "r0"), ("r1.c", "r1"), ("r1.d", "r1")]:
        inboxes[host] = []
        network.register(host, region, lambda src, p, h=host: inboxes[h].append((sim.now, src, p)))
    return sim, network, inboxes


class TestDelays:
    def test_intra_region_half_rtt(self, net):
        sim, network, inboxes = net
        network.send("r0.a", "r0.b", "hi")
        sim.run()
        assert inboxes["r0.b"] == [(2.5, "r0.a", "hi")]

    def test_cross_region_half_rtt(self, net):
        sim, network, inboxes = net
        network.send("r0.a", "r1.c", "hi")
        sim.run()
        assert inboxes["r1.c"][0][0] == 50.0

    def test_loopback_is_nearly_instant(self, net):
        sim, network, inboxes = net
        network.send("r0.a", "r0.a", "self")
        sim.run()
        assert inboxes["r0.a"][0][0] < 0.1

    def test_unknown_destination_raises(self, net):
        _sim, network, _ = net
        with pytest.raises(NetworkError):
            network.send("r0.a", "nowhere", "x")

    def test_duplicate_registration_rejected(self, net):
        _sim, network, _ = net
        with pytest.raises(ConfigError):
            network.register("r0.a", "r0", lambda s, p: None)

    def test_region_of(self, net):
        _sim, network, _ = net
        assert network.region_of("r1.c") == "r1"
        with pytest.raises(NetworkError):
            network.region_of("ghost")


class TestAnomalies:
    def test_jitter_spreads_cross_region_delay(self, net):
        sim, network, inboxes = net
        network.jitter = 20.0
        for _ in range(50):
            network.send("r0.a", "r1.c", "m")
        sim.run()
        times = [t for t, _s, _p in inboxes["r1.c"]]
        assert min(times) < 50.0 < max(times)
        assert all(abs(t - 50.0) <= 10.0 + 1e-9 for t in times)  # +/- jitter/2

    def test_rtt_step_changes_delay(self, net):
        sim, network, inboxes = net
        network.set_cross_region_rtt(200.0)
        network.send("r0.a", "r1.c", "m")
        sim.run()
        assert inboxes["r1.c"][0][0] == 100.0

    def test_per_pair_rtt_override(self, net):
        sim, network, inboxes = net
        network.set_cross_region_rtt(300.0, "r0", "r1")
        network.send("r0.a", "r1.c", "m")
        sim.run()
        assert inboxes["r1.c"][0][0] == 150.0

    def test_asymmetric_forward_fraction(self, net):
        sim, network, inboxes = net
        network.forward_fraction = 0.7
        network.send("r0.a", "r1.c", "fwd")  # r0 < r1: forward direction
        network.send("r1.c", "r0.a", "rev")
        sim.run()
        assert inboxes["r1.c"][0][0] == pytest.approx(70.0)
        assert inboxes["r0.a"][0][0] == pytest.approx(30.0)

    def test_negative_rtt_rejected(self, net):
        _sim, network, _ = net
        with pytest.raises(ConfigError):
            network.set_cross_region_rtt(-5.0)

    def test_random_drops(self):
        sim = Simulator()
        network = Network(sim, RngRegistry(3), drop_probability=0.5)
        received = []
        network.register("r0.a", "r0", lambda s, p: None)
        network.register("r0.b", "r0", lambda s, p: received.append(p))
        for i in range(200):
            network.send("r0.a", "r0.b", i)
        sim.run()
        assert 40 < len(received) < 160
        assert network.stats.messages_dropped == 200 - len(received)


class TestPartitionsAndCrashes:
    def test_host_partition_drops_both_ways(self, net):
        sim, network, inboxes = net
        network.partition_hosts("r0.a", "r0.b")
        network.send("r0.a", "r0.b", "x")
        network.send("r0.b", "r0.a", "y")
        sim.run()
        assert inboxes["r0.b"] == [] and inboxes["r0.a"] == []

    def test_heal_hosts_restores(self, net):
        sim, network, inboxes = net
        network.partition_hosts("r0.a", "r0.b")
        network.heal_hosts("r0.a", "r0.b")
        network.send("r0.a", "r0.b", "x")
        sim.run()
        assert len(inboxes["r0.b"]) == 1

    def test_region_partition(self, net):
        sim, network, inboxes = net
        network.partition_regions("r0", "r1")
        network.send("r0.a", "r1.c", "x")
        network.send("r0.a", "r0.b", "local ok")
        sim.run()
        assert inboxes["r1.c"] == []
        assert len(inboxes["r0.b"]) == 1

    def test_crashed_host_receives_nothing(self, net):
        sim, network, inboxes = net
        network.crash_host("r1.c")
        network.send("r0.a", "r1.c", "x")
        sim.run()
        assert inboxes["r1.c"] == []
        assert network.is_down("r1.c")

    def test_restart_host(self, net):
        sim, network, inboxes = net
        network.crash_host("r1.c")
        network.restart_host("r1.c")
        network.send("r0.a", "r1.c", "x")
        sim.run()
        assert len(inboxes["r1.c"]) == 1

    def test_partition_formed_while_in_flight_drops(self, net):
        sim, network, inboxes = net
        network.send("r0.a", "r1.c", "x")  # arrives at t=50
        sim.schedule(10.0, network.partition_regions, "r0", "r1")
        sim.run()
        assert inboxes["r1.c"] == []

    def test_stats_counters(self, net):
        sim, network, inboxes = net
        network.send("r0.a", "r0.b", "x")
        sim.run()
        assert network.stats.messages_sent == 1
        assert network.stats.per_host_sent["r0.a"] == 1
        assert network.stats.per_host_received["r0.b"] == 1


class TestInFlightGauge:
    def test_in_flight_rises_then_drains(self, net):
        sim, network, inboxes = net
        network.send("r0.a", "r1.c", "x")
        network.send("r0.a", "r0.b", "y")
        assert network.stats.in_flight == 2
        sim.run()
        assert network.stats.in_flight == 0
        assert network.stats.per_host_received["r1.c"] == 1
        assert network.stats.per_host_received["r0.b"] == 1

    def test_dropped_message_leaves_flight(self, net):
        sim, network, inboxes = net
        network.partition_regions("r0", "r1")
        network.send("r0.a", "r1.c", "x")
        sim.run()
        assert network.stats.in_flight == 0


class TestFaultWindows:
    def test_reorder_window_scrambles_order_without_loss(self, net):
        sim, network, inboxes = net
        network.open_reorder_window(spread=80.0)
        for i in range(30):
            network.send("r0.a", "r1.c", i)
        sim.run()
        payloads = [p for _t, _s, p in inboxes["r1.c"]]
        assert payloads != list(range(30))  # some pair arrived out of order
        assert sorted(payloads) == list(range(30))  # nothing lost or duplicated

    def test_close_reorder_window_restores_fifo(self, net):
        sim, network, inboxes = net
        network.open_reorder_window(spread=80.0)
        network.close_reorder_window()
        for i in range(20):
            network.send("r0.a", "r1.c", i)
        sim.run()
        assert [p for _t, _s, p in inboxes["r1.c"]] == list(range(20))

    def test_reorder_window_expires_after_duration(self, net):
        sim, network, inboxes = net
        network.open_reorder_window(spread=80.0, duration=10.0)
        sim.run(until=10.0)
        assert network.reorder_spread == 0.0
        for i in range(20):
            network.send("r0.a", "r1.c", i)
        sim.run()
        assert [p for _t, _s, p in inboxes["r1.c"]] == list(range(20))

    def test_duplicate_window_delivers_twice(self, net):
        sim, network, inboxes = net
        network.open_duplicate_window(probability=1.0)
        for i in range(10):
            network.send("r0.a", "r0.b", i)
        sim.run()
        payloads = sorted(p for _t, _s, p in inboxes["r0.b"])
        assert payloads == sorted(list(range(10)) * 2)
        assert network.stats.messages_duplicated == 10

    def test_duplicate_window_expires_after_duration(self, net):
        sim, network, inboxes = net
        network.open_duplicate_window(probability=1.0, duration=5.0)
        sim.run(until=5.0)
        assert network.duplicate_probability == 0.0
        network.send("r0.a", "r0.b", "x")
        sim.run()
        assert len(inboxes["r0.b"]) == 1

    def test_window_validation(self, net):
        _sim, network, _ = net
        with pytest.raises(ConfigError):
            network.open_reorder_window(spread=-1.0)
        with pytest.raises(ConfigError):
            network.open_reorder_window(spread=5.0, duration=-1.0)
        with pytest.raises(ConfigError):
            network.open_duplicate_window(probability=1.5)
        with pytest.raises(ConfigError):
            network.open_duplicate_window(probability=0.5, duration=-2.0)


class TestCrashRestartSemantics:
    def test_mid_flight_crash_drops_delivery(self, net):
        sim, network, inboxes = net
        network.send("r0.a", "r1.c", "x")  # would arrive at t=50
        sim.schedule(10.0, network.crash_host, "r1.c")
        sim.run()
        assert inboxes["r1.c"] == []
        assert network.stats.messages_dropped == 1

    def test_restart_does_not_deliver_stale_pre_crash_traffic(self, net):
        sim, network, inboxes = net
        network.send("r0.a", "r1.c", "stale")  # would arrive at t=50
        sim.schedule(10.0, network.crash_host, "r1.c")
        sim.schedule(20.0, network.restart_host, "r1.c")
        sim.schedule(30.0, network.send, "r0.a", "r1.c", "fresh")
        sim.run()
        # Only the post-restart message arrives: the crash started a new
        # incarnation and voided everything addressed to the old one.
        assert [p for _t, _s, p in inboxes["r1.c"]] == ["fresh"]

    def test_mid_flight_oneway_host_partition_drops_that_direction(self, net):
        sim, network, inboxes = net
        network.send("r0.a", "r1.c", "ab")   # in flight a -> c
        network.send("r1.c", "r0.a", "ba")   # in flight c -> a
        sim.schedule(10.0, network.partition_hosts_oneway, "r0.a", "r1.c")
        sim.run()
        assert inboxes["r1.c"] == []                     # blocked direction
        assert [p for _t, _s, p in inboxes["r0.a"]] == ["ba"]  # reverse flows

    def test_oneway_region_partition_blocks_single_direction(self, net):
        sim, network, inboxes = net
        network.partition_regions_oneway("r0", "r1")
        network.send("r0.a", "r1.c", "blocked")
        network.send("r1.c", "r0.a", "passes")
        sim.run()
        assert inboxes["r1.c"] == []
        assert [p for _t, _s, p in inboxes["r0.a"]] == ["passes"]
        network.heal_regions_oneway("r0", "r1")
        network.send("r0.a", "r1.c", "after-heal")
        sim.run()
        assert [p for _t, _s, p in inboxes["r1.c"]] == ["after-heal"]

    def test_oneway_host_heal_restores(self, net):
        sim, network, inboxes = net
        network.partition_hosts_oneway("r0.a", "r0.b")
        network.send("r0.a", "r0.b", "lost")
        sim.run()
        network.heal_hosts_oneway("r0.a", "r0.b")
        network.send("r0.a", "r0.b", "ok")
        sim.run()
        assert [p for _t, _s, p in inboxes["r0.b"]] == ["ok"]


class TestNetworkStats:
    def test_top_types_tie_break_deterministic(self):
        from repro.sim.network import NetworkStats

        stats = NetworkStats()
        # Insert in an order that disagrees with the expected output: ties
        # must break by name ascending, higher counts first, regardless of
        # dict insertion order.
        for name, count in (("zeta", 2), ("alpha", 2), ("mid", 3), ("omega", 1)):
            for _ in range(count):
                stats.record_send("h0", name, 10)
        assert stats.top_types(4) == [
            ("mid", 3), ("alpha", 2), ("zeta", 2), ("omega", 1)]
        # And it is stable across a differently-ordered rebuild.
        other = NetworkStats()
        for name, count in (("omega", 1), ("alpha", 2), ("zeta", 2), ("mid", 3)):
            for _ in range(count):
                other.record_send("h0", name, 10)
        assert other.top_types(4) == stats.top_types(4)
