"""Fault-tolerance tests: Algorithm 3 (node removal), Algorithm 4 (replica
re-add), and manager takeover (§4.4).

Fault sequences are expressed as declarative :class:`FaultPlan` schedules
(``tests.conftest.inject_faults``) compiled onto simulator timers; each
event's dispatch result (promoted manager, re-add completion event) is
read back from ``runner.applied``.
"""

import pytest

from repro.core.records import TxnStatus
from repro.txn.model import Transaction
from tests.conftest import inject_faults, kv_set, make_dast, submit_and_run


def applied_result(runner, index=0):
    """The dispatch result of the ``index``-th fired fault event."""
    return runner.applied[index][2]


class TestNodeRemoval:
    def test_availability_with_one_replica_down(self, dast2):
        inject_faults(dast2, (0.0, "crash_node", {"host": "r0.n1"}))
        dast2.run(until=dast2.sim.now + 200.0)
        result = submit_and_run(dast2, Transaction("w", [kv_set(0, 1, 5)]))
        assert result.committed
        live = [h for h in dast2.catalog.replicas_of("s0") if h in dast2.nodes and h != "r0.n1"]
        for host in live:
            assert dast2.nodes[host].shard.get("kv", ("s0-1",))["v"] == 5

    def test_view_change_removes_node_from_membership(self, dast2):
        inject_faults(dast2, (0.0, "crash_node", {"host": "r0.n1"}))
        dast2.run(until=dast2.sim.now + 500.0)
        for host in ("r0.n0", "r0.n2"):
            node = dast2.nodes[host]
            assert "r0.n1" in node.removed
            assert "r0.n1" not in node.members
            assert "r0.n1" not in node.max_ts
        assert "r0.n1" not in dast2.catalog.replicas_of("s0")
        assert dast2.nodes["r0.n0"].vid >= 1

    def test_orphaned_irt_committed_on_failover(self, dast2):
        """An IRT prepared at >=1 node whose coordinator dies must commit."""
        txn = Transaction("w", [kv_set(0, 2, 9)])
        dast2.submit("r0.c0", "r0.n0", txn, timeout=60000.0)
        dast2.run(until=dast2.sim.now + 6.0)  # prepare delivered, commit not yet
        statuses = [
            dast2.nodes[h].records[txn.txn_id].status
            for h in ("r0.n1", "r0.n2")
            if txn.txn_id in dast2.nodes[h].records
        ]
        assert TxnStatus.PREPARED in statuses
        inject_faults(dast2, (0.0, "crash_node", {"host": "r0.n0"}))
        dast2.run(until=dast2.sim.now + 1000.0)
        for host in ("r0.n1", "r0.n2"):
            rec = dast2.nodes[host].records[txn.txn_id]
            assert rec.status == TxnStatus.EXECUTED
            assert dast2.nodes[host].shard.get("kv", ("s0-2",))["v"] == 9

    def test_orphaned_crt_aborted_on_failover(self, dast2):
        """A CRT whose coordinator dies before commit must abort everywhere."""
        txn = Transaction("crt", [kv_set(0, 3, 1), kv_set(1, 3, 1, piece_index=1)])
        dast2.submit("r0.c0", "r0.n0", txn, timeout=60000.0)
        dast2.run(until=dast2.sim.now + 70.0)  # prep-crt landed, commit not sent
        assert txn.txn_id in dast2.nodes["r1.n0"].wait_q
        inject_faults(dast2, (0.0, "crash_node", {"host": "r0.n0"}))
        dast2.run(until=dast2.sim.now + 2000.0)
        for host in ("r0.n1", "r0.n2", "r1.n0", "r1.n1", "r1.n2"):
            node = dast2.nodes[host]
            assert txn.txn_id not in node.wait_q
            rec = node.records.get(txn.txn_id)
            if rec is not None:
                assert rec.status == TxnStatus.ABORTED
        # No writes applied anywhere.
        for host in ("r0.n1", "r1.n0"):
            shard_key = f"{dast2.topology.shard_of_node(host)}-3"
            assert dast2.nodes[host].shard.get("kv", (shard_key,))["v"] == 0

    def test_committed_crt_survives_coordinator_crash(self, dast2):
        """If any node saw the commit decision, the CRT commits, not aborts."""
        txn = Transaction("crt", [kv_set(0, 4, 7), kv_set(1, 4, 7, piece_index=1)])
        results = []
        ev = dast2.submit("r0.c0", "r0.n0", txn, timeout=60000.0)
        ev.add_callback(lambda e: results.append(e))
        # Let the commit decision reach the home-region replicas (the
        # commit-log replication is local and fast), then crash.  The crash
        # is scheduled up front; the crt_log entry is frozen by it, so the
        # skip-check below reads the same answer before or after.
        inject_faults(dast2, (115.0, "crash_node", {"host": "r0.n0"}))
        dast2.run(until=dast2.sim.now + 115.0)
        entry = dast2.nodes["r0.n1"].crt_log.get(txn.txn_id)
        if entry is None or entry["commit_ts"] is None:
            pytest.skip("commit decision did not land before the crash window")
        dast2.run(until=dast2.sim.now + 3000.0)
        for host in ("r0.n1", "r0.n2"):
            rec = dast2.nodes[host].records[txn.txn_id]
            assert rec.status == TxnStatus.EXECUTED

    def test_transactions_continue_after_failover(self, dast2):
        inject_faults(dast2, (0.0, "crash_node", {"host": "r0.n2"}))
        dast2.run(until=dast2.sim.now + 500.0)
        for i in range(3):
            result = submit_and_run(dast2, Transaction("w", [kv_set(0, i, i)]))
            assert result.committed
        crt = Transaction("crt", [kv_set(0, 5, 1), kv_set(1, 5, 2, piece_index=1)])
        assert submit_and_run(dast2, crt).committed


class TestManagerFailover:
    def test_standby_takes_over(self, dast2):
        submit_and_run(dast2, Transaction("w", [kv_set(0, 0, 1)]))
        runner = inject_faults(dast2, (0.0, "fail_manager", {"region": "r1"}))
        dast2.run(until=dast2.sim.now + 500.0)
        new_mgr = applied_result(runner)
        assert new_mgr.active
        assert dast2.manager_directory["r1"] == new_mgr.host
        for host in ("r1.n0", "r1.n1", "r1.n2"):
            assert dast2.nodes[host].manager == new_mgr.host

    def test_crts_work_after_manager_failover(self, dast2):
        inject_faults(dast2, (0.0, "fail_manager", {"region": "r1"}))
        dast2.run(until=dast2.sim.now + 500.0)
        txn = Transaction("crt", [kv_set(0, 6, 3), kv_set(1, 6, 4, piece_index=1)])
        result = submit_and_run(dast2, txn)
        assert result.committed
        assert dast2.nodes["r1.n0"].shard.get("kv", ("s1-6",))["v"] == 4

    def test_new_manager_clock_is_monotonic(self, dast2):
        # Run some traffic so node clocks advance past the standby's.
        for i in range(2):
            submit_and_run(dast2, Transaction("w", [kv_set(1, i, i)],),
                           client="r1.c0", node="r1.n0")
        peak = max(dast2.nodes[h].dclock.peek() for h in ("r1.n0", "r1.n1", "r1.n2"))
        runner = inject_faults(dast2, (0.0, "fail_manager", {"region": "r1"}))
        dast2.run(until=dast2.sim.now + 500.0)
        new_mgr = applied_result(runner)
        assert new_mgr.dclock.peek() >= peak

    def test_smr_backed_takeover(self):
        system = make_dast(regions=2, spr=1, with_smr=True)
        system.start()
        submit_and_run(system, Transaction("w", [kv_set(0, 0, 1)]))
        inject_faults(system, (0.0, "fail_manager", {"region": "r0"}))
        system.run(until=system.sim.now + 1000.0)
        # The view record landed in the region's SMR service.
        leader = system.smr_clusters["r0"].leader
        assert leader.state.get("view", {}).get("manager") == system.managers["r0"].host


class TestReplicaRecovery:
    def test_add_replica_installs_checkpoint(self, dast2):
        for i in range(3):
            submit_and_run(dast2, Transaction("w", [kv_set(0, i, i + 1)]))
        runner = inject_faults(
            dast2, (0.0, "readd_replica", {"region": "r0", "host": "r0.n9", "shard": "s0"})
        )
        dast2.run(until=dast2.sim.now + 2000.0)
        event = applied_result(runner)
        assert event.triggered and event.ok, getattr(event, "exception", None)
        new_node = dast2.nodes["r0.n9"]
        donor = dast2.nodes["r0.n0"]
        assert new_node.shard.digest() == donor.shard.digest()
        assert "r0.n9" in dast2.catalog.replicas_of("s0")

    def test_new_replica_executes_subsequent_txns(self, dast2):
        inject_faults(
            dast2, (0.0, "readd_replica", {"region": "r0", "host": "r0.n9", "shard": "s0"})
        )
        dast2.run(until=dast2.sim.now + 2000.0)
        submit_and_run(dast2, Transaction("w", [kv_set(0, 7, 99)]))
        dast2.run(until=dast2.sim.now + 500.0)
        assert dast2.nodes["r0.n9"].shard.get("kv", ("s0-7",))["v"] == 99

    def test_new_replica_clock_past_install_point(self, dast2):
        runner = inject_faults(
            dast2, (0.0, "readd_replica", {"region": "r0", "host": "r0.n9", "shard": "s0"})
        )
        dast2.run(until=dast2.sim.now + 2000.0)
        event = applied_result(runner)
        ts_ins = event.value["ts_ins"]
        assert dast2.nodes["r0.n9"].dclock.peek() >= ts_ins

    def test_add_replica_under_live_traffic(self):
        """Regression: transactions racing the checkpoint/install window
        must reach the new replica via catch-up redelivery (the paper's
        notifiedTs[n] = ts_ckpt semantics)."""
        from repro.bench.metrics import LatencyRecorder
        from repro.workloads.client import spawn_clients
        from repro.workloads.tpca import TpcaWorkload
        from tests.conftest import make_topology
        from repro.core.system import DastSystem

        topo = make_topology(regions=2, spr=1, clients=4)
        workload = TpcaWorkload(topo, theta=0.7, crt_ratio=0.15)
        system = DastSystem(topo, workload.schemas(), workload.load)
        recorder = LatencyRecorder()
        system.start()
        clients = spawn_clients(system, workload, recorder.record)
        inject_faults(
            system,
            (1500.0, "readd_replica", {"region": "r0", "host": "r0.n9", "shard": "s0"}),
            origin=0.0,
        )
        system.run(until=4000.0)
        for client in clients:
            client.stop()
        system.run(until=8000.0)
        donor = system.nodes["r0.n0"]
        new_node = system.nodes["r0.n9"]
        assert new_node.shard.digest() == donor.shard.digest()
        # The new replica kept executing fresh transactions after install.
        assert len(new_node.executed_log) > 5
        # And its execution order is a suffix of the donor's.
        donor_ids = [t for _, t in donor.executed_log]
        new_ids = [t for _, t in new_node.executed_log]
        assert donor_ids[-len(new_ids):] == new_ids

    def test_crash_then_readd_cycle(self, dast2):
        submit_and_run(dast2, Transaction("w", [kv_set(0, 1, 5)]))
        inject_faults(dast2, (0.0, "crash_node", {"host": "r0.n2"}))
        dast2.run(until=dast2.sim.now + 500.0)
        submit_and_run(dast2, Transaction("w", [kv_set(0, 1, 6)]))
        inject_faults(
            dast2, (0.0, "readd_replica", {"region": "r0", "host": "r0.n2b", "shard": "s0"})
        )
        dast2.run(until=dast2.sim.now + 2000.0)
        submit_and_run(dast2, Transaction("w", [kv_set(0, 1, 7)]))
        dast2.run(until=dast2.sim.now + 500.0)
        assert dast2.nodes["r0.n2b"].shard.get("kv", ("s0-1",))["v"] == 7
        digests = {dast2.nodes[h].shard.digest()
                   for h in dast2.catalog.replicas_of("s0") if h in dast2.nodes}
        assert len(digests) == 1


class TestFailureDetector:
    def test_silent_node_is_detected_and_removed(self):
        from tests.conftest import make_dast
        system = make_dast(regions=2, spr=1, with_failure_detector=True)
        system.start()
        system.run(until=300.0)
        # Crash without reporting: the heartbeat detector must notice.
        inject_faults(system, (0.0, "crash_node", {"host": "r0.n1", "report": False}))
        system.run(until=system.sim.now + 1500.0)
        assert "r0.n1" in system.managers["r0"].removed
        assert "r0.n1" not in system.nodes["r0.n0"].members
        assert system.managers["r0"].stats.get("fd_suspicions") == 1
        # Traffic continues on the surviving quorum.
        from repro.txn.model import Transaction
        from tests.conftest import kv_set, submit_and_run
        result = submit_and_run(system, Transaction("w", [kv_set(0, 1, 5)]))
        assert result.committed

    def test_healthy_nodes_never_suspected(self):
        from tests.conftest import make_dast
        system = make_dast(regions=2, spr=1, with_failure_detector=True)
        system.start()
        system.run(until=3000.0)
        for detector in system.failure_detectors.values():
            assert detector.suspected == set()
        assert all(m.stats.get("fd_suspicions") == 0 for m in system.managers.values())


class TestCascadingFailures:
    def test_two_simultaneous_node_crashes_one_reported(self, dast2):
        """Algorithm 3's line-18 path: if a remaining node times out during
        the removal 2PC, it gets suspected and removed in turn."""
        # Both nodes die silently; only n1 is reported — the manager
        # discovers n2 via its timeout.  Same-instant events fire FIFO.
        inject_faults(
            dast2,
            (0.0, "crash_node", {"host": "r0.n1", "report": False}),
            (0.0, "crash_node", {"host": "r0.n2", "report": False}),
            (0.0, "report_failure", {"region": "r0", "hosts": ["r0.n1"]}),
        )
        dast2.run(until=dast2.sim.now + 2000.0)
        survivor = dast2.nodes["r0.n0"]
        assert "r0.n1" in survivor.removed and "r0.n2" in survivor.removed
        assert survivor.members == ["r0.n0"]
        assert dast2.catalog.replicas_of("s0") == ("r0.n0",)
        # The lone survivor still serves IRTs (quorum of 1).
        result = submit_and_run(dast2, Transaction("w", [kv_set(0, 1, 3)]))
        assert result.committed
        assert survivor.shard.get("kv", ("s0-1",))["v"] == 3

    def test_sequential_crashes_across_regions(self, dast2):
        inject_faults(
            dast2,
            (0.0, "crash_node", {"host": "r0.n2"}),
            (400.0, "crash_node", {"host": "r1.n2"}),
        )
        dast2.run(until=dast2.sim.now + 800.0)
        crt = Transaction("crt", [kv_set(0, 7, 1), kv_set(1, 7, 2, piece_index=1)])
        result = submit_and_run(dast2, crt)
        assert result.committed
        assert dast2.nodes["r0.n0"].vid >= 1
        assert dast2.nodes["r1.n0"].vid >= 1
