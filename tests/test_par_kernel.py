"""Region-partitioned kernel mechanics: windows, lookahead, the channel.

Covers the partition-execution primitive (``Simulator.run_window``), the
conservative lookahead rule, the canonical cross-region drain order, and
the two edge cases the design doc calls out: minimal cross-region RTT
(degenerate lockstep epochs — must stay live and self-deterministic) and
same-instant cross-partition messages (tie order may differ from serial;
the run itself must still be reproducible).
"""

import hashlib

import pytest

from repro.errors import SimulationError
from repro.fleet.spec import TrialSpec, canonical_json
from repro.sim.kernel import Simulator
from repro.sim.par import CrossChannel, lookahead
from repro.sim.par.partition import MIN_LOOKAHEAD


class _Net:
    """Just enough network surface for the lookahead rule."""

    def __init__(self, cross_region_rtt, forward_fraction=0.5, overrides=None):
        self.cross_region_rtt = cross_region_rtt
        self.forward_fraction = forward_fraction
        self._rtt_overrides = overrides or {}


class TestRunWindow:
    def test_exclusive_bound_and_clock_advance(self):
        sim = Simulator()
        fired = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, fired.append, t)
        assert sim.run_window(2.0) == 2.0
        # Strictly-before semantics: the event *at* the bound stays queued
        # for the next window (unlike run(until=...), which is inclusive).
        assert fired == [1.0]
        assert sim.now == 2.0
        assert sim.peek_time() == 2.0
        sim.run_window(3.5)
        assert fired == [1.0, 2.0, 3.0]
        assert sim.now == 3.5

    def test_empty_window_still_advances_clock(self):
        sim = Simulator()
        assert sim.run_window(5.0) == 5.0
        assert sim.now == 5.0

    def test_bound_in_the_past_raises(self):
        sim = Simulator()
        sim.run_window(2.0)
        with pytest.raises(SimulationError):
            sim.run_window(1.0)

    def test_same_instant_cascade_runs_inside_window(self):
        # call_soon chains at one instant must drain before the window ends.
        sim = Simulator()
        order = []
        def first():
            order.append("first")
            sim.call_soon(lambda: order.append("second"))
        sim.schedule(1.0, first)
        sim.run_window(2.0)
        assert order == ["first", "second"]


class TestLookahead:
    def test_half_rtt_when_symmetric(self):
        assert lookahead(_Net(30.0)) == 15.0

    def test_asymmetric_forward_fraction_takes_min_direction(self):
        # 80/20 split: the fast direction (20% of RTT) bounds the horizon.
        assert lookahead(_Net(30.0, forward_fraction=0.8)) == pytest.approx(6.0)

    def test_rtt_override_shrinks_the_horizon(self):
        assert lookahead(_Net(30.0, overrides={("r1", "r2"): 2.0})) == 1.0

    def test_floor_guards_progress_at_tiny_rtt(self):
        assert lookahead(_Net(0.001)) == MIN_LOOKAHEAD


class TestCrossChannel:
    def test_canonical_drain_order(self):
        ch = CrossChannel(2)
        # Pushed out of order and from different partitions; drain must sort
        # by (arrival, send_time, src_partition, seq) only.
        ch.push(1, arrival=5.0, send_time=4.0, src="b", dst="x", payload="B", incarnation=0)
        ch.push(0, arrival=5.0, send_time=3.0, src="a", dst="x", payload="A", incarnation=0)
        ch.push(0, arrival=4.0, send_time=3.5, src="a", dst="y", payload="C", incarnation=0)
        ch.push(1, arrival=5.0, send_time=4.0, src="z", dst="x", payload="D", incarnation=0)
        drained = [e[6] for e in ch.drain()]
        assert drained == ["C", "A", "B", "D"]
        assert ch.pending() == 0
        assert ch.drain() == []

    def test_seq_breaks_same_partition_same_instant_ties(self):
        ch = CrossChannel(1)
        ch.push(0, arrival=2.0, send_time=1.0, src="a", dst="x", payload="first", incarnation=0)
        ch.push(0, arrival=2.0, send_time=1.0, src="a", dst="y", payload="second", incarnation=0)
        assert [e[6] for e in ch.drain()] == ["first", "second"]


def _run(spec: TrialSpec):
    from repro.bench.harness import run_trial

    return run_trial(spec.to_trial())


def _digest(result) -> str:
    blob = canonical_json({
        "row": result.summary.as_row(),
        "committed": result.summary.committed,
        "aborted": result.summary.aborted,
    }).encode()
    return hashlib.sha256(blob).hexdigest()


class TestWindowDecomposition:
    def test_group_runs_in_windows_and_drains_channel(self):
        spec = TrialSpec(system="dast", workload="tpcc",
                         num_regions=3, shards_per_region=1,
                         clients_per_region=3, duration_ms=600.0,
                         warmup_ms=150.0, cooldown_ms=50.0, seed=2,
                         parallel_regions=3)
        result = _run(spec)
        assert result.parallel_mode == "threads"
        group = result.system.par_group
        assert group.windows > 0
        assert group.instants > 0  # the terminal `until` instant at least
        assert group.channel.pending() == 0  # nothing stranded at the end
        assert result.summary.committed > 0


class TestDegenerateRtts:
    """Commensurate/minimal RTTs maximize same-instant cross-partition ties.

    The contract there (docs/PARALLEL.md) is liveness + self-determinism,
    not byte-equality with serial: tie *order* across partitions is the one
    thing the conservative barrier does not reproduce.
    """

    @pytest.mark.parametrize("intra,cross", [(0.001, 0.001), (0.5, 0.5)])
    def test_no_deadlock_and_self_deterministic(self, intra, cross):
        spec = TrialSpec(system="dast", workload="tpca",
                         num_regions=3, shards_per_region=1,
                         clients_per_region=2, duration_ms=400.0,
                         warmup_ms=100.0, cooldown_ms=50.0, seed=3,
                         timing={"intra_region_rtt": intra,
                                 "cross_region_rtt": cross},
                         parallel_regions=3)
        first = _run(spec)
        assert first.parallel_mode == "threads"
        assert first.summary.committed > 0  # made progress: no deadlock
        assert _digest(first) == _digest(_run(spec))
