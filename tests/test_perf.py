"""Tests for the perf subsystem and the kernel hot-path optimizations.

Covers the determinism contract of the same-instant ready deque (FIFO
across ``call_soon`` / ``schedule(0)`` / triggered-event callbacks and
correct interleaving with heap entries), equivalence against a reference
heap-only kernel, and the opt-in profiling layer
(:class:`KernelAccounting`, :func:`profile_spec`).
"""

import heapq
import itertools
import random

import pytest

from repro.perf import KernelAccounting, ProfileReport, profile_spec
from repro.sim.kernel import Simulator


@pytest.fixture
def sim():
    return Simulator()


# ---------------------------------------------------------------------------
# Same-instant FIFO ordering (microbench-shaped: the exact mixes the ready
# deque optimizes must execute in global (time, seq) order).
# ---------------------------------------------------------------------------
class TestSameInstantFifo:
    def test_call_soon_fifo(self, sim):
        seen = []
        for i in range(50):
            sim.call_soon(seen.append, i)
        sim.run()
        assert seen == list(range(50))

    def test_schedule_zero_fifo(self, sim):
        seen = []
        for i in range(50):
            sim.schedule(0.0, seen.append, i)
        sim.run()
        assert seen == list(range(50))

    def test_call_soon_and_schedule_zero_interleave(self, sim):
        seen = []
        for i in range(40):
            if i % 2:
                sim.call_soon(seen.append, i)
            else:
                sim.schedule(0.0, seen.append, i)
        sim.run()
        assert seen == list(range(40))

    def test_triggered_event_callbacks_fifo(self, sim):
        seen = []
        events = [sim.event() for _ in range(10)]
        for i, ev in enumerate(events):
            ev.add_callback(lambda ev, i=i: seen.append(i))
        for ev in events:
            ev.succeed(None)
        sim.run()
        assert seen == list(range(10))

    def test_heap_entry_with_smaller_seq_runs_before_ready(self, sim):
        # A positive-delay entry scheduled *before* zero-delay work lands at
        # the same instant with a smaller seq, so it must run first even
        # though it lives on the heap and the zero-delay work on the deque.
        seen = []
        sim.schedule(5.0, seen.append, "heap-early")

        def at_five():
            seen.append("arrived")
            sim.call_soon(seen.append, "soon")
            sim.schedule(0.0, seen.append, "zero")

        # Scheduled after, so its seq is larger than heap-early's.
        sim.schedule(5.0, at_five)
        sim.run()
        assert seen == ["heap-early", "arrived", "soon", "zero"]

    def test_nested_same_instant_work_runs_before_later_heap(self, sim):
        seen = []

        def spawner(depth):
            seen.append(f"d{depth}")
            if depth < 3:
                sim.call_soon(spawner, depth + 1)

        sim.schedule(1.0, spawner, 0)
        sim.schedule(1.5, seen.append, "later")
        sim.run()
        assert seen == ["d0", "d1", "d2", "d3", "later"]
        assert sim.now == 1.5

    def test_run_until_before_now_skips_zero_delay_work(self, sim):
        # run(until=t) with t < now must not execute anything (pre-deque
        # behavior: the heap head's time exceeded `until`).
        sim.run(until=10.0)
        seen = []
        sim.call_soon(seen.append, "x")
        sim.run(until=5.0)
        assert seen == []
        assert sim.now == 10.0
        sim.run()
        assert seen == ["x"]

    def test_pending_events_counts_ready_deque(self, sim):
        sim.call_soon(lambda: None)
        sim.schedule(1.0, lambda: None)
        assert sim.pending_events == 2


# ---------------------------------------------------------------------------
# Equivalence against a reference heap-only kernel.
# ---------------------------------------------------------------------------
class ReferenceKernel:
    """The pre-optimization kernel semantics: one heap, (time, seq) order."""

    def __init__(self):
        self.now = 0.0
        self._heap = []
        self._seq = itertools.count()

    def schedule(self, delay, fn, *args):
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), fn, args))

    def call_soon(self, fn, *args):
        self.schedule(0.0, fn, *args)

    def run(self):
        while self._heap:
            t, _seq, fn, args = heapq.heappop(self._heap)
            if t > self.now:
                self.now = t
            fn(*args)


class TestReferenceEquivalence:
    def _workload(self, kernel, log, seed):
        rng = random.Random(seed)

        def cb(tag, fanout):
            log.append((round(kernel.now, 6), tag))
            for j in range(fanout):
                choice = rng.random()
                if len(log) > 4000:
                    return
                if choice < 0.4:
                    kernel.call_soon(cb, f"{tag}.s{j}", rng.randint(0, 2))
                elif choice < 0.6:
                    kernel.schedule(0.0, cb, f"{tag}.z{j}", rng.randint(0, 2))
                else:
                    kernel.schedule(round(rng.uniform(0.1, 5.0), 3),
                                    cb, f"{tag}.d{j}", rng.randint(0, 2))

        for i in range(20):
            kernel.schedule(round(rng.uniform(0.0, 3.0), 3), cb, f"root{i}", 3)

    @pytest.mark.parametrize("seed", [1, 7, 1234])
    def test_same_execution_order(self, seed):
        ref_log, opt_log = [], []
        ref = ReferenceKernel()
        self._workload(ref, ref_log, seed)
        ref.run()

        opt = Simulator()
        self._workload(opt, opt_log, seed)
        opt.run()

        assert opt_log == ref_log
        assert opt.now == ref.now


# ---------------------------------------------------------------------------
# Kernel accounting.
# ---------------------------------------------------------------------------
class TestKernelAccounting:
    def test_counts_ready_vs_heap(self, sim):
        acct = KernelAccounting()
        sim.attach_accounting(acct)
        sim.call_soon(lambda: None)
        sim.schedule(0.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        sim.detach_accounting()
        assert acct.events_total == 4
        assert acct.ready_events == 2
        assert acct.heap_events == 2
        # Two ready events at t=0 plus the second heap event at t=2 fire
        # without advancing the clock.
        assert acct.same_instant_events == 3
        assert acct.heap_peak >= 2

    def test_ratios_and_top_callsites(self):
        acct = KernelAccounting()

        def alpha():
            pass

        def beta():
            pass

        acct.record(alpha, from_ready=True, advanced=False)
        acct.record(alpha, from_ready=True, advanced=False)
        acct.record(beta, from_ready=False, advanced=True)
        assert acct.same_instant_ratio == pytest.approx(2 / 3)
        assert acct.heap_churn_ratio == pytest.approx(1 / 3)
        top = acct.top_callsites(5)
        assert top[0][0].endswith("alpha") and top[0][1] == 2

    def test_top_callsites_tie_break_by_name(self):
        acct = KernelAccounting()

        def zeta():
            pass

        def alpha():
            pass

        acct.record(zeta, from_ready=False, advanced=False)
        acct.record(alpha, from_ready=False, advanced=False)
        names = [name for name, _ in acct.top_callsites(5)]
        assert names == sorted(names)

    def test_empty_ratios_are_zero(self):
        acct = KernelAccounting()
        assert acct.same_instant_ratio == 0.0
        assert acct.heap_churn_ratio == 0.0
        assert acct.to_dict()["events_total"] == 0

    def test_accounting_does_not_perturb_results(self, sim):
        # Same workload with and without accounting → identical trace.
        def run_once(with_acct):
            k = Simulator()
            log = []
            if with_acct:
                k.attach_accounting(KernelAccounting())
            for i in range(10):
                k.schedule(float(i % 3), log.append, i)
                k.call_soon(log.append, 100 + i)
            k.run()
            return log, k.now

        assert run_once(True) == run_once(False)


# ---------------------------------------------------------------------------
# Profiler.
# ---------------------------------------------------------------------------
class TestProfiler:
    def test_profile_spec_smoke(self):
        from repro.fleet.spec import TrialSpec

        spec = TrialSpec(
            system="dast", workload="tpca",
            num_regions=2, shards_per_region=1, clients_per_region=2,
            duration_ms=600.0, warmup_ms=100.0, cooldown_ms=100.0, seed=1,
            label="perf-smoke",
        )
        report = profile_spec(spec, top=5, callsites=5)
        assert isinstance(report, ProfileReport)
        assert report.label == "perf-smoke"
        assert report.events_total > 0
        assert report.ready_events + report.heap_events == report.events_total
        assert report.wall_clock_s > 0
        assert report.virtual_ms > 0
        assert report.events_per_s > 0
        assert len(report.callsites) <= 5
        assert len(report.functions) <= 5
        assert report.callsites and report.callsites[0][1] > 0
        text = report.to_text()
        assert "hot callbacks" in text and "hot functions" in text
        payload = report.to_dict()
        assert payload["events_total"] == report.events_total

    def test_profile_spec_rejects_bad_sort(self):
        from repro.fleet.spec import TrialSpec

        spec = TrialSpec(system="dast", workload="tpca", label="x")
        with pytest.raises(ValueError):
            profile_spec(spec, sort="ncalls")
