"""Tests for the RPC endpoint layer."""

import pytest

from repro.errors import ProtocolError, RpcTimeout
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.rpc import Endpoint, RpcRemoteError


@pytest.fixture
def setup():
    sim = Simulator()
    network = Network(sim, RngRegistry(1), intra_region_rtt=5.0, cross_region_rtt=100.0)
    a = Endpoint(sim, network, "r0.a", "r0")
    b = Endpoint(sim, network, "r0.b", "r0")
    return sim, network, a, b


def run_call(sim, event):
    out = {}
    event.add_callback(lambda e: out.update(ok=e.ok, value=e.value, exc=e.exception))
    sim.run()
    return out


class TestRequestResponse:
    def test_plain_handler(self, setup):
        sim, _net, a, b = setup
        b.register("add", lambda src, p: p + 1)
        out = run_call(sim, a.call("r0.b", "add", 41))
        assert out["ok"] and out["value"] == 42
        assert sim.now == pytest.approx(5.0)  # one intra-region RTT

    def test_generator_handler(self, setup):
        sim, _net, a, b = setup

        def handler(src, payload):
            yield sim.timeout(10.0)
            return payload * 2

        b.register("slow", handler)
        out = run_call(sim, a.call("r0.b", "slow", 5))
        assert out["value"] == 10
        assert sim.now == pytest.approx(15.0)

    def test_handler_exception_becomes_remote_error(self, setup):
        sim, _net, a, b = setup

        def handler(src, payload):
            yield sim.timeout(1.0)
            raise ValueError("kaput")

        b.register("bad", handler)
        out = run_call(sim, a.call("r0.b", "bad", None))
        assert not out["ok"]
        assert isinstance(out["exc"], RpcRemoteError)
        assert "kaput" in str(out["exc"])

    def test_timeout_fails_call(self, setup):
        sim, net, a, b = setup
        b.register("echo", lambda src, p: p)
        net.partition_hosts("r0.a", "r0.b")
        out = run_call(sim, a.call("r0.b", "echo", 1, timeout=20.0))
        assert not out["ok"]
        assert isinstance(out["exc"], RpcTimeout)

    def test_late_response_after_timeout_is_dropped(self, setup):
        sim, _net, a, b = setup

        def handler(src, payload):
            yield sim.timeout(50.0)
            return "late"

        b.register("slow", handler)
        out = run_call(sim, a.call("r0.b", "slow", None, timeout=10.0))
        assert isinstance(out["exc"], RpcTimeout)
        sim.run()  # late response arrives and must not blow up

    def test_expired_rpc_never_double_resolves(self, setup):
        sim, _net, a, b = setup

        def handler(src, payload):
            yield sim.timeout(50.0)
            return "late"

        b.register("slow", handler)
        event = a.call("r0.b", "slow", None, timeout=10.0)
        resolutions = []
        event.add_callback(lambda e: resolutions.append(e.exception))
        sim.run()  # timeout fires, then the late response arrives
        # The expiry removed the pending entry: the late response is ignored,
        # the event resolved exactly once, and no stale state remains.
        assert len(resolutions) == 1
        assert isinstance(resolutions[0], RpcTimeout)
        assert a._pending == {}

    def test_duplicated_response_resolves_once(self, setup):
        sim, net, a, b = setup
        b.register("echo", lambda src, p: p)
        net.open_duplicate_window(1.0)  # every message delivered twice
        resolutions = []
        event = a.call("r0.b", "echo", 9)
        event.add_callback(lambda e: resolutions.append(e.value))
        sim.run()
        assert resolutions == [9]
        assert a._pending == {}

    def test_triggered_event_guard_in_handle_response(self, setup):
        # Defensive path: a pending entry whose event already triggered
        # (e.g. an expiry raced a response in the same tick) must not be
        # resolved again.
        sim, _net, a, _b = setup
        event = sim.event()
        event.fail(RpcTimeout("raced"))
        event.add_callback(lambda e: None)  # observe the failure
        a._pending[999] = event
        a._handle_response(999, True, "ghost")  # must be a no-op
        assert not event.ok
        assert a._pending == {}

    def test_unknown_method_raises_at_server(self, setup):
        sim, _net, a, b = setup
        a.call("r0.b", "ghost", None)
        with pytest.raises(ProtocolError):
            sim.run()

    def test_duplicate_handler_rejected(self, setup):
        _sim, _net, _a, b = setup
        b.register("m", lambda s, p: None)
        with pytest.raises(ProtocolError):
            b.register("m", lambda s, p: None)


class TestOneWay:
    def test_send_delivers_without_response(self, setup):
        sim, _net, a, b = setup
        seen = []
        b.register("note", lambda src, p: seen.append((src, p)))
        a.send("r0.b", "note", "hello")
        sim.run()
        assert seen == [("r0.a", "hello")]

    def test_broadcast(self, setup):
        sim, net, a, b = setup
        c = Endpoint(sim, net, "r0.c", "r0")
        seen = []
        b.register("n", lambda s, p: seen.append("b"))
        c.register("n", lambda s, p: seen.append("c"))
        a.broadcast(["r0.b", "r0.c"], "n", None)
        sim.run()
        assert sorted(seen) == ["b", "c"]


class TestCpuModel:
    def test_service_time_serializes_processing(self):
        sim = Simulator()
        network = Network(sim, RngRegistry(1), intra_region_rtt=5.0)
        a = Endpoint(sim, network, "r0.a", "r0")
        b = Endpoint(sim, network, "r0.b", "r0", service_time=1.0)
        stamps = []
        b.register("work", lambda src, p: stamps.append(sim.now))
        for _ in range(5):
            a.send("r0.b", "work", None)
        sim.run()
        # All arrive at 2.5ms; CPU serializes them 1ms apart.
        assert stamps == pytest.approx([3.5, 4.5, 5.5, 6.5, 7.5])

    def test_charge_consumes_cpu(self):
        sim = Simulator()
        network = Network(sim, RngRegistry(1), intra_region_rtt=5.0)
        a = Endpoint(sim, network, "r0.a", "r0")
        b = Endpoint(sim, network, "r0.b", "r0", service_time=0.5)
        stamps = []
        b.register("work", lambda src, p: stamps.append(sim.now))
        b.charge(10.0)
        a.send("r0.b", "work", None)
        sim.run()
        assert stamps[0] == pytest.approx(10.5)  # waits out the charge
