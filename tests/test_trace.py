"""Tests for the structured tracing subsystem."""

import pytest

from repro.sim.trace import TraceEvent, Tracer
from repro.txn.model import Transaction
from tests.conftest import kv_set, make_dast, submit_and_run


class TestTracerUnit:
    def test_emit_and_query(self):
        tracer = Tracer()
        tracer.emit(1.0, "a", "execute", txn="t1")
        tracer.emit(2.0, "b", "commit", txn="t1")
        tracer.emit(3.0, "a", "execute", txn="t2")
        assert len(tracer.query(kind="execute")) == 2
        assert len(tracer.query(host="a")) == 2
        assert len(tracer.query(txn="t1")) == 2
        assert len(tracer.query(since=2.5)) == 1

    def test_kind_filter_drops_unwanted(self):
        tracer = Tracer(kinds={"execute"})
        tracer.emit(1.0, "a", "execute", txn="t1")
        tracer.emit(1.0, "a", "commit", txn="t1")
        assert tracer.counts() == {"execute": 1}

    def test_host_filter(self):
        tracer = Tracer(hosts={"a"})
        tracer.emit(1.0, "a", "x")
        tracer.emit(1.0, "b", "x")
        assert len(tracer.events) == 1

    def test_capacity_bounds_memory(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.emit(float(i), "a", "x")
        assert len(tracer.events) == 3
        assert tracer.dropped == 2

    def test_timeline_sorted_and_readable(self):
        tracer = Tracer()
        tracer.emit(5.0, "b", "execute", txn="t1", ts="5@1")
        tracer.emit(1.0, "a", "prepare", txn="t1")
        text = tracer.timeline("t1")
        lines = text.splitlines()
        assert "prepare" in lines[0] and "execute" in lines[1]
        assert tracer.timeline("ghost").startswith("(no events")

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(1.0, "a", "x")
        tracer.clear()
        assert tracer.events == [] and tracer.dropped == 0


class TestTruncationSignal:
    def make_truncated(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.emit(float(i), "a", "x", txn="t1")
        return tracer

    def test_truncated_flag(self):
        tracer = self.make_truncated()
        assert tracer.truncated and tracer.dropped == 3
        assert not Tracer().truncated

    def test_timeline_carries_notice(self):
        tracer = self.make_truncated()
        with pytest.warns(RuntimeWarning):
            text = tracer.timeline("t1")
        assert "3 trace events dropped at capacity 2" in text.splitlines()[-1]

    def test_untruncated_timeline_has_no_notice(self):
        tracer = Tracer()
        tracer.emit(1.0, "a", "x", txn="t1")
        assert "dropped" not in tracer.timeline("t1")

    def test_query_warns_once(self):
        import warnings as warnings_mod

        tracer = self.make_truncated()
        with pytest.warns(RuntimeWarning, match="3 trace events dropped"):
            tracer.query(kind="x")
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            tracer.query(kind="x")  # second query: already warned, silent

    def test_clear_rearms_warning(self):
        tracer = self.make_truncated()
        with pytest.warns(RuntimeWarning):
            tracer.query()
        tracer.clear()
        for i in range(5):
            tracer.emit(float(i), "a", "x")
        with pytest.warns(RuntimeWarning):
            tracer.query()


class TestTracerIntegration:
    def test_dast_run_traces_transaction_lifecycle(self):
        system = make_dast(regions=2, spr=1)
        tracer = system.attach_tracer()
        system.start()
        crt = Transaction("crt", [kv_set(0, 1, 1), kv_set(1, 1, 2, piece_index=1)])
        submit_and_run(system, crt)
        kinds = tracer.counts()
        assert kinds.get("anticipate", 0) == 2  # one per participating region
        assert kinds.get("crt_prepare", 0) >= 4  # quorum+ of participants
        assert kinds.get("crt_commit", 0) >= 4
        assert kinds.get("execute", 0) == 6  # all six replicas
        timeline = tracer.timeline(crt.txn_id)
        assert "anticipate" in timeline and "execute" in timeline

    def test_tracing_off_by_default(self):
        system = make_dast(regions=1, spr=1)
        system.start()
        submit_and_run(system, Transaction("w", [kv_set(0, 0, 1)]))
        assert system.nodes["r0.n0"].tracer is None

    def test_kind_scoped_system_tracer(self):
        system = make_dast(regions=1, spr=1)
        tracer = system.attach_tracer(kinds={"execute"})
        system.start()
        submit_and_run(system, Transaction("w", [kv_set(0, 0, 1)]))
        assert set(tracer.counts()) == {"execute"}


class TestLemma1ViaTraces:
    def test_execution_order_monotone_per_host(self):
        """Lemma 1's observable consequence, checked from runtime traces:
        every host executes its relevant transactions in strictly
        increasing timestamp order."""
        from repro.bench.metrics import LatencyRecorder
        from repro.workloads.client import spawn_clients
        from repro.workloads.tpca import TpcaWorkload
        from tests.conftest import make_topology
        from repro.core.system import DastSystem

        topo = make_topology(regions=2, spr=1, clients=4)
        workload = TpcaWorkload(topo, theta=0.9, crt_ratio=0.25)
        system = DastSystem(topo, workload.schemas(), workload.load, seed=2)
        tracer = system.attach_tracer(kinds={"execute"})
        recorder = LatencyRecorder()
        system.start()
        clients = spawn_clients(system, workload, recorder.record)
        system.run(until=3000.0)
        for client in clients:
            client.stop()
        system.run(until=6000.0)

        from collections import defaultdict
        per_host = defaultdict(list)
        for ev in tracer.events:
            per_host[ev.host].append(ev.fields["ts"])
        assert per_host  # traffic happened
        for host, stamps in per_host.items():
            # The string rendering is not order-preserving; map back via the
            # node's executed log, which the traces must mirror 1:1.
            node = system.nodes[host]
            assert [str(ts) for ts, _tid in node.executed_log] == stamps
            ordered = [ts for ts, _tid in node.executed_log]
            assert ordered == sorted(ordered)
