"""Tests for the SMR service and quorum tracker."""

import pytest

from repro.errors import ProtocolError
from repro.consensus.quorum import QuorumTracker
from repro.consensus.smr import SmrCluster
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.rpc import Endpoint
from repro.wire.messages import SmrAppend


@pytest.fixture
def cluster():
    sim = Simulator()
    network = Network(sim, RngRegistry(1), intra_region_rtt=5.0)
    smr = SmrCluster(sim, network, "r0")
    client = Endpoint(sim, network, "r0.client", "r0")
    return sim, network, smr, client


def run_proc(sim, gen):
    p = sim.spawn(gen)
    sim.run()
    assert p.ok, p.exception
    return p.value


class TestSmr:
    def test_put_then_get(self, cluster):
        sim, _net, smr, client = cluster
        run_proc(sim, smr.put_from(client, "view", {"vid": 3}))
        value = run_proc(sim, smr.get_from(client, "view"))
        assert value == {"vid": 3}

    def test_get_missing_key_is_none(self, cluster):
        sim, _net, smr, client = cluster
        assert run_proc(sim, smr.get_from(client, "ghost")) is None

    def test_followers_apply_committed_entries(self, cluster):
        sim, _net, smr, client = cluster
        run_proc(sim, smr.put_from(client, "a", 1))
        run_proc(sim, smr.put_from(client, "b", 2))
        sim.run()
        # The second put carries the first's commit index; all replicas that
        # saw both appends have applied entry 0.
        applied = [rep.state.get("a") for rep in smr.replicas]
        assert applied.count(1) >= 2

    def test_overwrite_takes_latest(self, cluster):
        sim, _net, smr, client = cluster
        run_proc(sim, smr.put_from(client, "k", "old"))
        run_proc(sim, smr.put_from(client, "k", "new"))
        assert run_proc(sim, smr.get_from(client, "k")) == "new"

    def test_election_after_leader_crash(self, cluster):
        sim, network, smr, client = cluster
        run_proc(sim, smr.put_from(client, "k", 1))
        old_leader = smr.leader
        network.crash_host(old_leader.host)
        new_leader = smr.elect()
        assert new_leader.host != old_leader.host
        assert new_leader.term > 1
        # Writes continue through the new leader (put_from re-elects on
        # timeout as well, but here we already elected).
        run_proc(sim, smr.put_from(client, "k", 2))
        assert run_proc(sim, smr.get_from(client, "k")) == 2

    def test_put_from_survives_leader_crash_mid_call(self, cluster):
        sim, network, smr, client = cluster
        network.crash_host(smr.leader.host)
        # put_from times out against the dead leader, elects, and retries.
        value = run_proc(sim, smr.put_from(client, "k", 42))
        assert value["ok"]

    def test_no_live_leader_raises(self, cluster):
        _sim, network, smr, _client = cluster
        for rep in smr.replicas:
            network.crash_host(rep.host)
        with pytest.raises(ProtocolError):
            smr.elect()

    def test_stale_term_append_rejected(self, cluster):
        _sim, _net, smr, _client = cluster
        follower = smr.replicas[1]
        follower.term = 10
        reply = follower.on_append(
            "r0.smr0", SmrAppend(term=3, index=0, entry=(3, "k", 1), commit_index=-1)
        )
        assert reply == {"ok": False, "term": 10}


class TestQuorumTracker:
    def test_fires_when_every_group_has_quorum(self):
        sim = Simulator()
        tracker = QuorumTracker(sim, {"s0": 2, "s1": 2})
        tracker.ack("s0", "a")
        tracker.ack("s0", "b")
        assert not tracker.satisfied()
        tracker.ack("s1", "x")
        tracker.ack("s1", "y")
        assert tracker.satisfied()

    def test_duplicate_acks_counted_once(self):
        sim = Simulator()
        tracker = QuorumTracker(sim, {"s0": 2})
        tracker.ack("s0", "a")
        tracker.ack("s0", "a")
        assert not tracker.satisfied()
        assert tracker.progress() == {"s0": 1}

    def test_unknown_group_ignored(self):
        sim = Simulator()
        tracker = QuorumTracker(sim, {"s0": 1})
        tracker.ack("ghost", "a")
        assert not tracker.satisfied()

    def test_acks_after_satisfied_are_noops(self):
        sim = Simulator()
        tracker = QuorumTracker(sim, {"s0": 1})
        tracker.ack("s0", "a")
        assert tracker.satisfied()
        tracker.ack("s0", "b")
        assert tracker.progress() == {"s0": 1}
